"""Ablation: extractor caches on the L0 many-files layout.

The paper observes that L0 "involves opening 18 different files to compute
one set of aligned file chunks, which can slow down the processing".  Two
extractor mechanisms interact with that:

* the segment cache reuses the COORDS chunk across the hundreds of AFCs it
  participates in (one read instead of one per TIME value);
* the file-handle LRU avoids re-opening the 18 files per chunk set —
  unless its capacity is below the interleaved working set, in which case
  every chunk pays an open (the paper's effect, made measurable).
"""

from __future__ import annotations

import pytest

from repro.bench import fig9_ipars_config
from repro.core import Extractor, GeneratedDataset, IOStats, local_mount
from repro.datasets import ipars
from repro.storm import VirtualCluster


@pytest.fixture(scope="module")
def l0_env(tmp_path_factory):
    config = fig9_ipars_config()
    root = tmp_path_factory.mktemp("ablation_l0")
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())
    dataset = GeneratedDataset(text)
    plan = dataset.plan("SELECT * FROM IparsData WHERE TIME <= 20")
    return cluster, plan


def scan(mount, plan, segment_cache, handle_cache):
    stats = IOStats()
    with Extractor(
        mount, segment_cache_bytes=segment_cache, handle_cache=handle_cache
    ) as extractor:
        extractor.execute(plan, stats)
    return stats


def test_ablation_segment_cache_on(benchmark, l0_env):
    cluster, plan = l0_env
    stats = benchmark(
        lambda: scan(cluster.mount(), plan, 32 << 20, 64)
    )
    assert stats.cache_hits > 0


def test_ablation_segment_cache_off(benchmark, l0_env):
    cluster, plan = l0_env
    stats = benchmark(lambda: scan(cluster.mount(), plan, 0, 64))
    assert stats.cache_hits == 0


def test_ablation_handle_thrash(benchmark, l0_env):
    """Handle capacity below the 18-file working set: reopen storms."""
    cluster, plan = l0_env
    stats = benchmark(lambda: scan(cluster.mount(), plan, 0, 4))
    thrashed = stats.files_opened


def test_ablation_effects_quantified(benchmark, l0_env):
    cluster, plan = l0_env
    mount = cluster.mount()
    cached = benchmark.pedantic(
        lambda: scan(mount, plan, 32 << 20, 64), rounds=1, iterations=1
    )
    uncached = scan(mount, plan, 0, 64)
    thrash = scan(mount, plan, 0, 4)

    # Segment cache eliminates the repeated COORDS reads.
    assert cached.bytes_read < uncached.bytes_read
    assert cached.cache_hits > 0

    # A too-small handle cache reopens files per chunk set.
    assert thrash.files_opened > 10 * uncached.files_opened
    # ...but reads the same bytes (correctness is unaffected).
    assert thrash.bytes_read == uncached.bytes_read
