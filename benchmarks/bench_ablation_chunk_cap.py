"""Ablation: aligned-chunk granularity (DESIGN.md decision 4).

The planner's natural chunk size comes from the layout's loop structure;
``chunk_row_cap`` splits chunks further.  Finer chunks bound extraction
buffer sizes and enable finer pruning, at the price of more per-chunk
Python/read-call overhead.  This ablation quantifies the trade-off on the
Titan full scan: identical answers, monotonically more read calls, and the
wall-clock cost of shrinking chunks by 10x and 100x.
"""

from __future__ import annotations

import pytest

from repro.bench import fig6_titan_config
from repro.core import Extractor, GeneratedDataset, IOStats
from repro.datasets import titan
from repro.storm import VirtualCluster

CAPS = [None, 100, 10]


@pytest.fixture(scope="module")
def titan_caps_env(tmp_path_factory):
    config = fig6_titan_config()
    root = tmp_path_factory.mktemp("ablation_cap")
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = titan.generate(config, cluster.mount())
    datasets = {
        cap: GeneratedDataset(text, chunk_row_cap=cap) for cap in CAPS
    }
    sql = "SELECT X, S1 FROM TitanData WHERE S1 < 0.3"
    return config, cluster, datasets, sql


def scan(cluster, dataset, sql):
    stats = IOStats()
    with Extractor(cluster.mount(), segment_cache_bytes=0) as extractor:
        table = extractor.execute(dataset.plan(sql), stats)
    return table.num_rows, stats


@pytest.mark.parametrize("cap", CAPS, ids=lambda c: f"cap={c}")
def test_ablation_chunk_cap(benchmark, titan_caps_env, cap):
    config, cluster, datasets, sql = titan_caps_env
    rows, stats = benchmark.pedantic(
        lambda: scan(cluster, datasets[cap], sql), rounds=2, iterations=1
    )
    assert rows > 0


def test_ablation_chunk_cap_tradeoff(benchmark, titan_caps_env):
    config, cluster, datasets, sql = titan_caps_env
    results = benchmark.pedantic(
        lambda: {cap: scan(cluster, datasets[cap], sql) for cap in CAPS},
        rounds=1,
        iterations=1,
    )
    baseline_rows, baseline_stats = results[None]
    read_calls = [results[cap][1].read_calls for cap in CAPS]
    for cap in CAPS[1:]:
        rows, stats = results[cap]
        # Same answers, same bytes; only the call granularity changes.
        assert rows == baseline_rows
        assert stats.bytes_read == baseline_stats.bytes_read
    assert read_calls[0] < read_calls[1] < read_calls[2]
    # Contiguous sub-chunks scan sequentially: no extra repositioning.
    assert results[10][1].seeks == results[None][1].seeks
