"""Ablation: I/O coalescing + intra-node parallelism on the L0 layout.

The paper's L0 layout interleaves 18 files per aligned chunk set, so a
naive extractor pays a read call (and a head repositioning) per chunk.
Two knobs attack that cost:

* ``ExecOptions.coalesce_gap_bytes`` merges reads against one file that
  land within the gap window into single ``read()`` calls, trading a few
  wasted gap bytes (sequential, cheap) for far fewer calls/seeks;
* ``ExecOptions.intra_node_workers`` extracts a node's chunk sets on a
  thread pool, overlapping I/O with decode while preserving the serial
  output row order exactly.

Both must be pure performance knobs: every assertion here checks the
result tables are bit-identical (values *and* order) across settings.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.bench import fig9_ipars_config
from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import ipars
from repro.storm import QueryService, VirtualCluster

FULL_SCAN = "SELECT * FROM IparsData"

#: Coalescing disabled vs. the ExecOptions default (64 KiB window).
NO_COALESCE = ExecOptions(remote=False, coalesce_gap_bytes=0)
COALESCE = ExecOptions(remote=False)


def _service(tmp_path_factory, name, config):
    root = tmp_path_factory.mktemp(name)
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())
    return QueryService(GeneratedDataset(text), cluster)


@pytest.fixture(scope="module")
def l0_service(tmp_path_factory):
    service = _service(tmp_path_factory, "coalesce_l0", fig9_ipars_config())
    with service:
        yield service


@pytest.fixture(scope="module")
def single_node_service(tmp_path_factory):
    """One node holding the whole dataset: intra-node parallelism is the
    only concurrency left, so its effect is isolated."""
    config = dataclasses.replace(fig9_ipars_config(), num_nodes=1)
    service = _service(tmp_path_factory, "coalesce_1node", config)
    with service:
        yield service


def cold_submit(service, opts):
    service.drop_caches()
    return service.submit(FULL_SCAN, opts)


def assert_identical_tables(got, want):
    assert got.column_names == want.column_names
    assert got.num_rows == want.num_rows
    for name in want.column_names:
        np.testing.assert_array_equal(got.column(name), want.column(name), name)


def test_coalescing_reduces_read_calls(benchmark, l0_service):
    base = cold_submit(l0_service, NO_COALESCE)
    coal = benchmark.pedantic(
        lambda: cold_submit(l0_service, COALESCE), rounds=1, iterations=1
    )

    b, c = base.total_stats, coal.total_stats
    assert c.reads_coalesced > 0
    # The acceptance bar: merged reads cut L0's read calls at least 2x.
    assert c.read_calls * 2 <= b.read_calls, (c.read_calls, b.read_calls)
    assert c.seeks < b.seeks
    # Waste is bounded: coalescing must not balloon bytes actually read.
    assert c.bytes_read < 2 * b.bytes_read
    assert_identical_tables(coal.table, base.table)

    print(
        f"\ncoalescing ablation (L0 full scan): "
        f"read_calls {b.read_calls} -> {c.read_calls} "
        f"({b.read_calls / c.read_calls:.1f}x), "
        f"seeks {b.seeks} -> {c.seeks}, "
        f"waste {c.readahead_waste_bytes / 1e6:.2f} MB, "
        f"sim {base.simulated_seconds:.2f}s -> {coal.simulated_seconds:.2f}s"
    )


def test_intra_node_workers_identical_rows(benchmark, single_node_service):
    serial = cold_submit(single_node_service, NO_COALESCE)
    par = benchmark.pedantic(
        lambda: cold_submit(
            single_node_service, NO_COALESCE.replace(intra_node_workers=4)
        ),
        rounds=1,
        iterations=1,
    )

    # Same rows, same order: the pool merges per-AFC pieces in plan order.
    assert_identical_tables(par.table, serial.table)
    assert par.total_stats.read_calls == serial.total_stats.read_calls
    assert par.total_stats.bytes_read == serial.total_stats.bytes_read

    speedup = serial.wall_seconds / max(par.wall_seconds, 1e-9)
    print(
        f"\nintra-node workers ablation (1 node, full scan): "
        f"wall {serial.wall_seconds:.3f}s -> {par.wall_seconds:.3f}s "
        f"({speedup:.2f}x)"
    )
    # Lenient on shared CI hardware: parallel extraction must at least
    # not regress badly; locally it wins (see printed speedup).
    assert par.wall_seconds <= serial.wall_seconds * 1.5
