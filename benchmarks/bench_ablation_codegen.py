"""Ablation: what does code generation buy over interpreting meta-data?

DESIGN.md decision 3: the compiler runs once per descriptor and bakes the
group tables, loop bounds, and offset arithmetic into Python code; queries
then only execute the generated function.  This benchmark quantifies the
split: descriptor compile time (one-off) versus per-query index-function
time, generated versus interpreted.
"""

from __future__ import annotations

import pytest

from repro.bench import fig9_ipars_config
from repro.core import CompiledDataset, GeneratedDataset
from repro.datasets import ipars
from repro.sql import parse_where
from repro.sql.ranges import extract_ranges


@pytest.fixture(scope="module")
def descriptor_text():
    return ipars.descriptor_text(fig9_ipars_config(), "L0")


@pytest.fixture(scope="module")
def planners(descriptor_text):
    return (
        CompiledDataset(descriptor_text),
        GeneratedDataset(descriptor_text),
    )


RANGES = extract_ranges(parse_where("TIME>10 AND TIME<30 AND REL = 1"))


def test_ablation_compile_interpreted(benchmark, descriptor_text):
    """One-off cost: parse + compile the descriptor (no codegen)."""
    benchmark.pedantic(
        lambda: CompiledDataset(descriptor_text), rounds=3, iterations=1
    )


def test_ablation_compile_generated(benchmark, descriptor_text):
    """One-off cost: parse + compile + generate + exec the index module."""
    benchmark.pedantic(
        lambda: GeneratedDataset(descriptor_text), rounds=3, iterations=1
    )


def test_ablation_index_interpreted(benchmark, planners):
    interpreted, _ = planners
    count = benchmark(lambda: len(interpreted.index(RANGES)))
    assert count > 0


def test_ablation_index_generated(benchmark, planners):
    _, generated = planners
    count = benchmark(lambda: len(generated.index(RANGES)))
    assert count > 0


def test_ablation_equivalence_and_speed(benchmark, planners):
    """The generated index returns the same AFCs, and a full planning
    sweep is not slower than the interpreted walk."""
    import time

    interpreted, generated = planners
    a = benchmark.pedantic(
        lambda: interpreted.index(RANGES), rounds=1, iterations=1
    )
    b = generated.index(RANGES)
    assert len(a) == len(b)

    def timed(fn, repeats=20):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return time.perf_counter() - start

    t_int = timed(lambda: interpreted.index(RANGES))
    t_gen = timed(lambda: generated.index(RANGES))
    # Generated should never be dramatically slower; typically faster.
    assert t_gen < t_int * 1.5
