#!/usr/bin/env python
"""Ablation: compiled vectorized WHERE kernels vs the interpreted walk.

The fig7/fig8 workloads' filter-heavy archetypes — region-of-interest
membership (``IN`` over grid coordinates / selected time steps),
iso-band selection (unions of ``BETWEEN`` windows over a sensor), and
UDF thresholds — are run over finely chunked datasets
(``chunk_row_cap`` models the paper's fine-grained chunk sets, where
per-chunk-set Python overhead dominates once I/O is coalesced).  Each
workload runs twice: ``vectorize="off"`` (the interpreted AST oracle,
one evaluation per chunk set) and ``vectorize="on"`` (the compiled
kernel with cross-AFC block batching), and the benchmark asserts:

* result tables are **bit-identical** between the modes for every
  query (exact dtype + exact values, canonical row order);
* ``off`` never touches ``rows_vectorized``; ``on`` vectorizes every
  extracted row;
* in full mode, the filter-heavy suite shows **>= 5x** aggregate
  wall-clock speedup (the acceptance floor; ~10x is the target on
  IN-dominated shapes).

Plan memoization is enabled (with a zero-byte result cache, so every
query still extracts and filters) in *both* modes: planning cost is
identical per mode and would otherwise dilute the filter comparison.

Usage::

    PYTHONPATH=src python benchmarks/bench_ablation_vectorized.py          # full
    PYTHONPATH=src python benchmarks/bench_ablation_vectorized.py --smoke  # CI

Writes ``BENCH_vectorized.json`` next to the other figure outputs and
exits nonzero on any failed assertion.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import sys
import tempfile
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.bench import fig6_titan_config, fig9_ipars_config
from repro.bench.harness import results_dir
from repro.core import ExecOptions, Virtualizer
from repro.core.stats import IOStats
from repro.datasets import ipars, titan
from repro.storm import VirtualCluster

#: Fine-grained chunk sets: small AFCs are where per-chunk-set Python
#: overhead shows, and what the kernel's block batching amortizes away.
CHUNK_ROW_CAP = 32

SPEEDUP_FLOOR = 5.0

#: Plan memoization on, result caching effectively off (0-byte budget):
#: repeated passes re-extract and re-filter every row in both modes.
BASE = dict(
    remote=False, cache_mode="exact", result_cache_bytes=0,
    plan_cache_entries=64,
)
ON = ExecOptions(vectorize="on", **BASE)
OFF = ExecOptions(vectorize="off", **BASE)


#: Iso-levels per band-union query.  The paper's Titan use case is
#: iso-surface visualization; a few dozen contour levels per rendering
#: pass is the realistic shape, and each level is a BETWEEN window.
NUM_BANDS = 32


def value_bands(attr: str, count: int = NUM_BANDS,
                width: float = 0.015) -> str:
    """An iso-band union: ``attr`` in any of ``count`` narrow bands."""
    return " OR ".join(
        f"({attr} BETWEEN {i / (count + 4):.4f} "
        f"AND {i / (count + 4) + width:.4f})"
        for i in range(count)
    )


def ipars_workload(rng: random.Random, num_times: int) -> List[str]:
    """fig8-flavored filter-heavy queries over the IPARS grid."""
    bands = value_bands("SOIL")
    lo, hi = max(1, num_times // 8), max(3, num_times - num_times // 8)
    return [
        # fig8 Q3 shape: indexed time window plus iso-band selection.
        f"SELECT SOIL FROM IparsData WHERE TIME>{lo} AND TIME<{hi} "
        f"AND ({bands})",
        # Pure iso-band selection over the sensor value (full scan).
        f"SELECT SOIL FROM IparsData WHERE {bands}",
        # fig8 Q4 shape: UDF threshold plus bands.
        "SELECT SOIL FROM IparsData "
        f"WHERE SPEED(OILVX, OILVY, OILVZ) < 45 AND ({bands})",
    ]


def titan_workload(rng: random.Random, num_times: int) -> List[str]:
    """fig7-flavored filter-heavy queries over the Titan point cloud."""
    steps = ", ".join(
        str(t)
        for t in sorted(rng.sample(range(num_times), max(1, num_times // 2)))
    )
    s1_bands = value_bands("S1")
    return [
        # Selected animation frames (membership over the time
        # dimension) rendered with the same iso-band levels.
        f"SELECT TIME, S1 FROM TitanData WHERE TIME IN ({steps}) "
        f"AND ({s1_bands})",
        # Iso-band selection over the S1 sensor.
        f"SELECT S1 FROM TitanData WHERE {s1_bands}",
        # fig7 Q3 shape: distance-from-origin threshold plus bands.
        "SELECT S1 FROM TitanData "
        f"WHERE DISTANCE(X, Y, Z) < 5000 AND ({s1_bands})",
    ]


def run_mode(
    virt: Virtualizer,
    opts: ExecOptions,
    queries: List[str],
    repeats: int,
) -> Tuple[Dict[Tuple[str, int], np.ndarray], IOStats, float, List[float]]:
    """Run the workload; canonicalisation happens off the clock."""
    tables = {}
    totals = IOStats()
    per_query = [0.0] * len(queries)
    start = time.perf_counter()
    for round_no in range(repeats):
        for qi, sql in enumerate(queries):
            q0 = time.perf_counter()
            run = IOStats()
            tables[(sql, round_no)] = virt.query(sql, stats=run, options=opts)
            per_query[qi] += time.perf_counter() - q0
            totals.merge(run)
    wall = time.perf_counter() - start
    results = {
        key: table.canonical().to_structured()
        for key, table in tables.items()
    }
    return results, totals, wall, [t / repeats for t in per_query]


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def bench_dataset(name, text, mount, queries, repeats, smoke):
    """off-vs-on comparison for one dataset; returns the report dict."""
    with Virtualizer(text, mount, chunk_row_cap=CHUNK_ROW_CAP) as virt:
        # Warm both paths off the clock: handle/segment caches, plan
        # memoization, and the kernel compile + first selectivity pass.
        for sql in queries:
            virt.query(sql, options=OFF)
            virt.query(sql, options=ON)
        off_results, off_totals, off_wall, off_each = run_mode(
            virt, OFF, queries, repeats
        )
        on_results, on_totals, on_wall, on_each = run_mode(
            virt, ON, queries, repeats
        )

    for key, want in off_results.items():
        got = on_results[key]
        if not len(want):
            # An empty result costs 0 bytes and would slip under the
            # 0-byte result-cache budget, so later passes would measure
            # cache hits instead of filtering.  The workload must not
            # produce one.
            fail(f"{name}: workload query returned no rows: {key[0][:70]!r}")
        if got.dtype != want.dtype or not np.array_equal(got, want):
            fail(f"{name}: results differ for {key[0][:70]!r}...")
    if off_totals.result_cache_hits or on_totals.result_cache_hits:
        fail(f"{name}: timed passes must never hit the result cache")
    if off_totals.rows_vectorized:
        fail(f"{name}: vectorize='off' must not count rows_vectorized")
    if on_totals.rows_vectorized != on_totals.rows_extracted:
        fail(
            f"{name}: vectorize='on' must vectorize every extracted row "
            f"({on_totals.rows_vectorized} vs {on_totals.rows_extracted})"
        )

    speedup = off_wall / on_wall
    print(f"\n{name}: {len(queries)} queries x {repeats} passes")
    for sql, off_t, on_t in zip(queries, off_each, on_each):
        print(
            f"  {off_t * 1000:8.1f} ms -> {on_t * 1000:7.1f} ms "
            f"({off_t / on_t:5.2f}x)  {sql[:64]}..."
        )
    print(
        f"  total {off_wall:.3f}s -> {on_wall:.3f}s ({speedup:.2f}x); "
        f"vectorized {on_totals.rows_vectorized:,} rows"
    )
    return {
        "dataset": name,
        "queries": queries,
        "off_seconds": off_wall,
        "on_seconds": on_wall,
        "speedup": speedup,
        "per_query": [
            {"sql": sql, "off_seconds": o, "on_seconds": n, "speedup": o / n}
            for sql, o, n in zip(queries, off_each, on_each)
        ],
        "rows_vectorized": on_totals.rows_vectorized,
        "rows_extracted": on_totals.rows_extracted,
        "identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small datasets, equivalence assertions only (no wall-clock "
        "bar); used by the CI vectorized-smoke job",
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="workload passes per mode (default 3)")
    args = parser.parse_args(argv)

    ipars_config = dataclasses.replace(
        fig9_ipars_config(), num_times=30, cells_per_node=2000
    )
    titan_config = dataclasses.replace(
        fig6_titan_config(), chunks_t=2, elems_per_chunk=500
    )
    if args.smoke:
        ipars_config = dataclasses.replace(
            ipars_config, num_times=8, cells_per_node=400
        )
        titan_config = dataclasses.replace(
            titan_config, chunks_x=4, chunks_y=4, chunks_z=2,
            elems_per_chunk=50,
        )

    rng = random.Random(20260808)
    reports = []
    with tempfile.TemporaryDirectory(prefix="vectorized_") as root:
        ipars_cluster = VirtualCluster.create(
            os.path.join(root, "ipars"), ipars_config.num_nodes
        )
        ipars_text, _ = ipars.generate(
            ipars_config, "L0", ipars_cluster.mount()
        )
        reports.append(
            bench_dataset(
                "fig8-ipars",
                ipars_text,
                ipars_cluster.mount(),
                ipars_workload(rng, ipars_config.num_times),
                args.repeats,
                args.smoke,
            )
        )

        titan_cluster = VirtualCluster.create(
            os.path.join(root, "titan"), titan_config.num_nodes
        )
        titan_text, _ = titan.generate(titan_config, titan_cluster.mount())
        reports.append(
            bench_dataset(
                "fig7-titan",
                titan_text,
                titan_cluster.mount(),
                titan_workload(rng, titan_config.chunks_t * 10),
                args.repeats,
                args.smoke,
            )
        )

    off_total = sum(r["off_seconds"] for r in reports)
    on_total = sum(r["on_seconds"] for r in reports)
    overall = off_total / on_total
    print(
        f"\noverall: {off_total:.3f}s -> {on_total:.3f}s "
        f"({overall:.2f}x, floor {SPEEDUP_FLOOR}x"
        f"{', smoke: floor not enforced' if args.smoke else ''})"
    )

    payload = {
        "figure": "BENCH_vectorized",
        "mode": "smoke" if args.smoke else "full",
        "chunk_row_cap": CHUNK_ROW_CAP,
        "repeats": args.repeats,
        "speedup_floor": SPEEDUP_FLOOR,
        "overall_speedup": overall,
        "workloads": reports,
    }
    out_path = os.path.join(results_dir(), "BENCH_vectorized.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {out_path}")

    if not args.smoke and overall < SPEEDUP_FLOOR:
        fail(
            f"expected >= {SPEEDUP_FLOOR}x aggregate speedup on the "
            f"filter-heavy suite, got {overall:.2f}x"
        )
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
