"""Aggregate pushdown ablation: wire bytes moved, per-node vs client-side.

A full-scan ``COUNT(*)``/``SUM`` over a terabyte-class virtual table is
the paper's motivating case for shipping computation to the data: the
answer is a handful of numbers, so moving base rows to the coordinator is
pure waste.  This benchmark measures that waste directly — each query
runs twice over a **real 2-process cluster** (one ``repro serve`` OS
process per node, coordinator over TCP):

* **pushdown** (default): nodes fold their rows into partial state
  frames; only those frames cross the wire;
* **client-side** (``agg_pushdown=False``): nodes ship every filtered
  base row and the coordinator aggregates them.

The acceptance bar is a >= 100x reduction in bytes sent on the full-scan
COUNT/SUM query, with bit-identical answers in both modes.  Predicate-
free COUNT/MIN/MAX is asserted separately: the metadata fast path must
answer it without contacting the data nodes at all.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Series, fig9_ipars_config, measure_storm, print_figure, ratio
from repro.datasets import ipars
from repro.net import ProcessCluster
from repro.storm import VirtualCluster

#: (figure row label, SQL).  The first row is the acceptance-bar query.
QUERIES = [
    (
        "full-scan COUNT+SUM",
        "SELECT COUNT(*), SUM(SOIL) FROM IparsData",
    ),
    (
        "GROUP BY REL",
        "SELECT REL, COUNT(*), SUM(SOIL), AVG(SOIL) FROM IparsData GROUP BY REL",
    ),
    (
        "time-window MIN/MAX",
        "SELECT REL, MIN(SOIL), MAX(SOIL) FROM IparsData "
        "WHERE TIME > 15 AND TIME <= 45 GROUP BY REL",
    ),
]


def assert_identical_tables(got, want):
    assert got.column_names == want.column_names
    assert got.num_rows == want.num_rows
    for name in want.column_names:
        a, b = got[name], want[name]
        assert a.dtype == b.dtype, name
        np.testing.assert_array_equal(a, b, name)


def run_ablation(tmp_path_factory):
    """Returns (pushdown series, client-side series, summary result)."""
    config = fig9_ipars_config()  # 2 nodes -> a 2-process cluster
    root = tmp_path_factory.mktemp("agg_pushdown")
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())

    pushdown = Series("pushdown")
    client_side = Series("client-side")
    with ProcessCluster(text, str(root)) as procs:
        with procs.connect() as db:
            for label, sql in QUERIES:
                client_side.add(
                    measure_storm(
                        db.service, sql, f"client:{label}", agg_pushdown=False
                    )
                )
                ship = db.query(sql)
                db.drop_caches()
                pushdown.add(measure_storm(db.service, sql, f"push:{label}"))
                fold = db.query(sql)
                # A pure performance knob: both modes agree to the bit.
                assert_identical_tables(fold, ship)
            # Predicate-free COUNT(*): answered from plan metadata on
            # the coordinator, no node I/O, no node traffic.
            db.drop_caches()
            summary = db.submit("SELECT COUNT(*) FROM IparsData")
    return pushdown, client_side, summary, config


def test_agg_pushdown_wire_bytes(benchmark, tmp_path_factory):
    pushdown, client_side, summary, config = benchmark.pedantic(
        run_ablation, args=(tmp_path_factory,), rounds=1, iterations=1
    )

    reductions = [
        ratio(c.bytes_sent, p.bytes_sent)
        for p, c in zip(pushdown.measurements, client_side.measurements)
    ]
    print_figure(
        "BENCH_agg",
        "Aggregate pushdown ablation: wire bytes, 2-process cluster",
        [label for label, _ in QUERIES],
        [pushdown, client_side],
        notes=[
            "bytes_sent is real socket traffic from `repro serve` nodes "
            "to the coordinator",
            "bytes moved, client-side / pushdown: "
            + ", ".join(f"{r:.0f}x" for r in reductions),
            "predicate-free COUNT(*) is answered from metadata alone: "
            "zero node reads, zero node bytes",
        ],
    )

    for (label, _), p, c in zip(
        QUERIES, pushdown.measurements, client_side.measurements
    ):
        # State frames are a few rows per node; base rows are not.
        assert 0 < p.bytes_sent < c.bytes_sent, label
    # The acceptance bar: the full-scan COUNT/SUM answer crosses the
    # wire >= 100x smaller as partial state than as base rows.
    assert reductions[0] >= 100, reductions[0]

    # The metadata fast path never contacted the data nodes.
    total_rows = (
        config.num_rels * config.num_times
        * config.cells_per_node * config.num_nodes
    )
    assert summary.table["COUNT(*)"][0] == total_rows
    real_nodes = [k for k in summary.per_node_stats if not k.startswith("_")]
    assert real_nodes == []
    assert summary.total_stats.bytes_read == 0

    print(
        "\naggregate pushdown (2-process cluster): "
        + ", ".join(
            f"{label}: {c.bytes_sent / 1e6:.2f} MB -> {p.bytes_sent / 1e3:.1f} KB"
            f" ({r:.0f}x)"
            for (label, _), p, c, r in zip(
                QUERIES, pushdown.measurements, client_side.measurements,
                reductions,
            )
        )
    )
