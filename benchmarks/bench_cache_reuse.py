#!/usr/bin/env python
"""Ablation: semantic result caching on a repeated/overlapping workload.

The ROADMAP's "heavy traffic from millions of users" north star implies
the same shape over and over: one broad scan, then many narrower
range queries inside it, with popular queries repeating verbatim.  This
benchmark runs exactly that workload twice — ``cache_mode="off"`` (every
query hits the disk) and ``cache_mode="subsume"`` (repeats are exact
hits, narrower queries are served by re-filtering the cached broad
result) — and asserts:

* canonical results are bit-identical between the two modes, for every
  occurrence of every query;
* ``off`` mode touches none of the cache counters (today's behavior,
  exactly);
* ``subsume`` mode does at least 10x fewer ``read_calls`` (and, in full
  mode, measurably less wall-clock time) and scores subsumption hits.

Both modes run with the chunk-payload segment cache disabled so the
baseline isn't silently served from cached payload bytes — the point is
the I/O the *result* cache avoids, and the two caches would otherwise
overlap on any dataset small enough to benchmark quickly.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache_reuse.py          # full
    PYTHONPATH=src python benchmarks/bench_cache_reuse.py --smoke  # CI

Exits nonzero on any failed assertion.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import tempfile
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.bench import fig9_ipars_config
from repro.core import ExecOptions, GeneratedDataset
from repro.core.stats import IOStats
from repro.core.table import VirtualTable
from repro.datasets import ipars
from repro.storm import QueryService, VirtualCluster

SELECT = "SELECT X, Y, SOIL, SGAS FROM IparsData"

#: Chunk-payload caching off: repeated queries in the baseline must
#: actually re-read the disk, so read_calls measures real avoided I/O.
SEGMENT_CACHE_BYTES = 0

OFF = ExecOptions(remote=False, cache_mode="off")
SUBSUME = ExecOptions(remote=False, cache_mode="subsume")


def build_workload(num_times: int, windows: int) -> List[str]:
    """One broad range scan, then overlapping narrower windows inside it."""
    lo = max(2, num_times // 10)
    queries = [f"{SELECT} WHERE TIME >= {lo}"]
    span = max(3, (num_times - lo) // 3)
    for i in range(windows):
        start = lo + 1 + (i % max(1, num_times - lo - span - 1))
        queries.append(
            f"{SELECT} WHERE TIME >= {start} AND TIME <= {start + span}"
        )
    return queries


def run_mode(
    service: QueryService,
    opts: ExecOptions,
    queries: List[str],
    repeats: int,
) -> Tuple[Dict[Tuple[str, int], "np.ndarray"], IOStats, float]:
    """Run the workload; returns (structured results, totals, wall secs).

    Canonicalisation happens after the clock stops — it costs the same
    in both modes and would otherwise dilute the wall-clock comparison.
    """
    tables: Dict[Tuple[str, int], "VirtualTable"] = {}
    totals = IOStats()
    start = time.perf_counter()
    for round_no in range(repeats):
        for sql in queries:
            res = service.submit(sql, opts)
            totals.merge(res.total_stats)
            tables[(sql, round_no)] = res.table
    wall = time.perf_counter() - start
    results = {
        key: table.canonical().to_structured() for key, table in tables.items()
    }
    return results, totals, wall


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset, counter assertions only (no wall-clock bar); "
        "used by the CI cache-reuse job",
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="workload passes per mode (default 3)")
    parser.add_argument("--windows", type=int, default=12,
                        help="narrow overlapping queries per pass (default 12)")
    args = parser.parse_args(argv)

    config = fig9_ipars_config()
    if args.smoke:
        config = dataclasses.replace(
            config, num_times=12, cells_per_node=400
        )

    with tempfile.TemporaryDirectory(prefix="cache_reuse_") as root:
        cluster = VirtualCluster.create(root, config.num_nodes)
        text, _ = ipars.generate(config, "L0", cluster.mount())
        dataset = GeneratedDataset(text)
        queries = build_workload(config.num_times, args.windows)
        print(
            f"workload: {len(queries)} queries x {args.repeats} passes over "
            f"{config.num_nodes} nodes ({'smoke' if args.smoke else 'full'})"
        )

        with QueryService(
            dataset, cluster, segment_cache_bytes=SEGMENT_CACHE_BYTES
        ) as off_service:
            off_results, off_totals, off_wall = run_mode(
                off_service, OFF, queries, args.repeats
            )
            if off_service.cache_stats() is not None:
                fail("cache_mode='off' must never construct the caches")

        for name in (
            "result_cache_hits",
            "subsumption_hits",
            "cache_saved_bytes",
            "rows_refiltered",
        ):
            if getattr(off_totals, name):
                fail(f"cache_mode='off' must leave {name} at 0")

        with QueryService(
            dataset, cluster, segment_cache_bytes=SEGMENT_CACHE_BYTES
        ) as sub_service:
            sub_results, sub_totals, sub_wall = run_mode(
                sub_service, SUBSUME, queries, args.repeats
            )
            cache_stats = sub_service.cache_stats()

        for key, want in off_results.items():
            got = sub_results[key]
            if got.dtype != want.dtype or not np.array_equal(got, want):
                fail(f"results differ for {key[0]!r} (pass {key[1] + 1})")

        sub_hits = cache_stats["result"]["subsumption_hits"]
        exact_hits = cache_stats["result"]["hits"]
        ratio = off_totals.read_calls / max(1, sub_totals.read_calls)
        print(
            f"read_calls {off_totals.read_calls} -> {sub_totals.read_calls} "
            f"({ratio:.1f}x); bytes_read {off_totals.bytes_read:,} -> "
            f"{sub_totals.bytes_read:,}; saved {sub_totals.cache_saved_bytes:,} B"
        )
        print(
            f"hits: {exact_hits} exact + {sub_hits} subsumption; "
            f"refiltered {sub_totals.rows_refiltered:,} rows; "
            f"plan cache hits {cache_stats['plan']['hits']}"
        )
        print(f"wall: off {off_wall:.3f}s, subsume {sub_wall:.3f}s")

        if sub_hits == 0:
            fail("expected nonzero subsumption hits on the overlap workload")
        if sub_totals.read_calls * 10 > off_totals.read_calls:
            fail(
                f"expected >= 10x fewer read_calls, got {ratio:.1f}x "
                f"({off_totals.read_calls} vs {sub_totals.read_calls})"
            )
        if not args.smoke and sub_wall >= off_wall:
            fail(
                f"warm mode must beat cold wall clock "
                f"({sub_wall:.3f}s vs {off_wall:.3f}s)"
            )
        print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
