"""Figure 10: scalability with the number of data-source nodes.

Paper result: with a fixed total dataset (~1.3 GB IPARS) redistributed
over 1..16 nodes, execution time of both hand-written and compiler-
generated versions scales down almost linearly; the generated code stays
within 5-34% (average 16%) of hand-written.

We redistribute a fixed total grid over 1, 2, 4, 8, and 16 virtual nodes;
the cost-model makespan (max over per-node work) is what exposes the
near-linear scaling on one physical machine.

``test_fig10_cluster_mode`` reruns the experiment out-of-process: each
data-source node is a real ``repro serve`` OS process and the coordinator
talks to it over TCP (BENCH_cluster.json).  The claim under test is that
the wire changes *where* the work runs, not *how much* work runs — the
cost-model numbers must match the in-process run at every node count.
"""

from __future__ import annotations

import pytest

import repro
from repro.baselines import HandwrittenIparsL0
from repro.bench import (
    Series,
    fig10_ipars_config,
    measure_storm,
    print_figure,
    ratio,
)
from repro.core import GeneratedDataset
from repro.datasets import IparsConfig, ipars
from repro.net import ProcessCluster
from repro.storm import QueryService, VirtualCluster

NODE_COUNTS = [1, 2, 4, 8, 16]

#: The fixed query of the scalability experiment: a time-window subset
#: processing a fixed share of the data regardless of node count.
def scalability_query(config):
    lo = config.num_times // 4
    hi = lo + config.num_times // 2
    return f"SELECT * FROM IparsData WHERE TIME>{lo} AND TIME<={hi}"


def run_figure10(tmp_path_factory):
    hand = Series("hand-written")
    generated = Series("generated")
    for nodes in NODE_COUNTS:
        config = fig10_ipars_config(nodes)
        root = tmp_path_factory.mktemp(f"fig10_{nodes}")
        cluster = VirtualCluster.create(str(root), nodes)
        text, _ = ipars.generate(config, "L0", cluster.mount())
        sql = scalability_query(config)

        gen_service = QueryService(GeneratedDataset(text), cluster)
        generated.add(
            measure_storm(gen_service, sql, f"gen@{nodes}", remote=False)
        )
        gen_service.close()

        hand_service = QueryService(HandwrittenIparsL0(config), cluster)
        hand.add(
            measure_storm(hand_service, sql, f"hand@{nodes}", remote=False)
        )
        hand_service.close()
        cluster.wipe()
    return hand, generated


def test_fig10_scalability(benchmark, tmp_path_factory):
    hand, generated = benchmark.pedantic(
        run_figure10, args=(tmp_path_factory,), rounds=1, iterations=1
    )
    rows = [f"{n} nodes" for n in NODE_COUNTS]
    print_figure(
        "fig10",
        "Scalability with increasing data sources (fixed total data)",
        rows,
        [hand, generated],
        notes=[
            "paper: near-linear scaling, generated within 5-34% of "
            "hand-written (avg 16%)",
        ],
    )

    # Same answers at every node count.
    row_counts = {m.rows for m in generated.measurements}
    assert len(row_counts) == 1
    assert {m.rows for m in hand.measurements} == row_counts

    for series in (hand, generated):
        times = series.simulated
        # Monotone decreasing in node count...
        for a, b in zip(times, times[1:]):
            assert b < a
        # ...and near-linear: doubling nodes cuts time by at least 1.6x
        # until fixed overheads start to show at 16 nodes.
        for i in range(len(NODE_COUNTS) - 2):
            assert ratio(times[i], times[i + 1]) > 1.5, (series.label, i)

    # Generated within the paper's band of hand-written at every scale.
    for g, h in zip(generated.simulated, hand.simulated):
        assert 0.8 < ratio(g, h) < 1.4


# ---------------------------------------------------------------------------
# Out-of-process cluster mode
# ---------------------------------------------------------------------------

CLUSTER_NODE_COUNTS = [1, 2, 4]


def cluster_ipars_config(num_nodes: int) -> IparsConfig:
    """A scaled-down fig10 grid: real processes pay real startup costs."""
    total = 2000
    return IparsConfig(
        num_rels=2, num_times=20, cells_per_node=total // num_nodes,
        num_nodes=num_nodes, seed=7,
    )


def run_cluster_figure(tmp_path_factory):
    in_process = Series("in-process")
    out_of_process = Series("out-of-process")
    for nodes in CLUSTER_NODE_COUNTS:
        config = cluster_ipars_config(nodes)
        root = tmp_path_factory.mktemp(f"fig10_cluster_{nodes}")
        cluster = VirtualCluster.create(str(root), nodes)
        text, _ = ipars.generate(config, "L0", cluster.mount())
        sql = scalability_query(config)

        with repro.connect(f"local://{root}", descriptor=text) as db:
            in_process.add(
                measure_storm(db.service, sql, f"local@{nodes}", remote=False)
            )
        with ProcessCluster(text, str(root)) as procs:
            with procs.connect() as db:
                out_of_process.add(
                    measure_storm(db.service, sql, f"tcp@{nodes}", remote=False)
                )
        cluster.wipe()
    return in_process, out_of_process


def test_fig10_cluster_mode(benchmark, tmp_path_factory):
    in_process, out_of_process = benchmark.pedantic(
        run_cluster_figure, args=(tmp_path_factory,), rounds=1, iterations=1
    )
    rows = [f"{n} nodes" for n in CLUSTER_NODE_COUNTS]
    print_figure(
        "BENCH_cluster",
        "Fig10 workload with data-source nodes as real OS processes",
        rows,
        [in_process, out_of_process],
        notes=[
            "out-of-process: one `repro serve` subprocess per node, "
            "coordinator over TCP",
            "cost-model (simulated) time must match in-process: the wire "
            "moves work, it does not add work",
        ],
    )

    for local_m, tcp_m in zip(
        in_process.measurements, out_of_process.measurements
    ):
        # Bit-identical answers and identical cost-model work.
        assert tcp_m.rows == local_m.rows
        assert tcp_m.bytes_read == local_m.bytes_read
        assert 0.99 < ratio(tcp_m.simulated_seconds,
                            local_m.simulated_seconds) < 1.01
        assert tcp_m.wall_seconds > 0

    # The makespan still scales down with node count over the wire.
    times = out_of_process.simulated
    for a, b in zip(times, times[1:]):
        assert b < a
