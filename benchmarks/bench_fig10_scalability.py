"""Figure 10: scalability with the number of data-source nodes.

Paper result: with a fixed total dataset (~1.3 GB IPARS) redistributed
over 1..16 nodes, execution time of both hand-written and compiler-
generated versions scales down almost linearly; the generated code stays
within 5-34% (average 16%) of hand-written.

We redistribute a fixed total grid over 1, 2, 4, 8, and 16 virtual nodes;
the cost-model makespan (max over per-node work) is what exposes the
near-linear scaling on one physical machine.
"""

from __future__ import annotations

import pytest

from repro.baselines import HandwrittenIparsL0
from repro.bench import (
    Series,
    fig10_ipars_config,
    measure_storm,
    print_figure,
    ratio,
)
from repro.core import GeneratedDataset
from repro.datasets import ipars
from repro.storm import QueryService, VirtualCluster

NODE_COUNTS = [1, 2, 4, 8, 16]

#: The fixed query of the scalability experiment: a time-window subset
#: processing a fixed share of the data regardless of node count.
def scalability_query(config):
    lo = config.num_times // 4
    hi = lo + config.num_times // 2
    return f"SELECT * FROM IparsData WHERE TIME>{lo} AND TIME<={hi}"


def run_figure10(tmp_path_factory):
    hand = Series("hand-written")
    generated = Series("generated")
    for nodes in NODE_COUNTS:
        config = fig10_ipars_config(nodes)
        root = tmp_path_factory.mktemp(f"fig10_{nodes}")
        cluster = VirtualCluster.create(str(root), nodes)
        text, _ = ipars.generate(config, "L0", cluster.mount())
        sql = scalability_query(config)

        gen_service = QueryService(GeneratedDataset(text), cluster)
        generated.add(
            measure_storm(gen_service, sql, f"gen@{nodes}", remote=False)
        )
        gen_service.close()

        hand_service = QueryService(HandwrittenIparsL0(config), cluster)
        hand.add(
            measure_storm(hand_service, sql, f"hand@{nodes}", remote=False)
        )
        hand_service.close()
        cluster.wipe()
    return hand, generated


def test_fig10_scalability(benchmark, tmp_path_factory):
    hand, generated = benchmark.pedantic(
        run_figure10, args=(tmp_path_factory,), rounds=1, iterations=1
    )
    rows = [f"{n} nodes" for n in NODE_COUNTS]
    print_figure(
        "fig10",
        "Scalability with increasing data sources (fixed total data)",
        rows,
        [hand, generated],
        notes=[
            "paper: near-linear scaling, generated within 5-34% of "
            "hand-written (avg 16%)",
        ],
    )

    # Same answers at every node count.
    row_counts = {m.rows for m in generated.measurements}
    assert len(row_counts) == 1
    assert {m.rows for m in hand.measurements} == row_counts

    for series in (hand, generated):
        times = series.simulated
        # Monotone decreasing in node count...
        for a, b in zip(times, times[1:]):
            assert b < a
        # ...and near-linear: doubling nodes cuts time by at least 1.6x
        # until fixed overheads start to show at 16 nodes.
        for i in range(len(NODE_COUNTS) - 2):
            assert ratio(times[i], times[i + 1]) > 1.5, (series.label, i)

    # Generated within the paper's band of hand-written at every scale.
    for g, h in zip(generated.simulated, hand.simulated):
        assert 0.8 < ratio(g, h) < 1.4
