"""Figure 11: execution time with varying query sizes.

Paper result: processing time stays proportional to the amount of data a
query retrieves, for both applications; the generated code stays within
17% (IPARS, average 14%) / 4% (Titan) of hand-written at every size.

Figure 11(a) sweeps the IPARS TIME-window width; Figure 11(b) sweeps the
Titan spatial box extent.
"""

from __future__ import annotations

import pytest

from repro.baselines import HandwrittenIparsL0, HandwrittenTitan
from repro.bench import (
    Series,
    fig11_box_fractions,
    fig11_time_windows,
    measure_storm,
    print_figure,
    ratio,
)
from repro.storm import QueryService


def ipars_window_query(config, frac):
    width = max(2, int(config.num_times * frac))
    lo = 0
    return f"SELECT * FROM IparsData WHERE TIME>{lo} AND TIME<={width}"


def titan_box_query(config, frac):
    x = config.extent[0] * frac
    y = config.extent[1] * frac
    return (
        f"SELECT * FROM TitanData WHERE X>=0 AND X<={x:.0f} "
        f"AND Y>=0 AND Y<={y:.0f}"
    )


def run_fig11a(config, cluster, gen_service):
    hand_service = QueryService(HandwrittenIparsL0(config), cluster)
    hand = Series("hand-written")
    generated = Series("generated")
    for frac in fig11_time_windows(config):
        sql = ipars_window_query(config, frac)
        generated.add(measure_storm(gen_service, sql, "gen", remote=False))
        hand.add(measure_storm(hand_service, sql, "hand", remote=False))
    hand_service.close()
    return hand, generated


def run_fig11b(config, cluster, gen_service, summaries):
    hand_service = QueryService(HandwrittenTitan(config, summaries), cluster)
    hand = Series("hand-written")
    generated = Series("generated")
    for frac in fig11_box_fractions():
        sql = titan_box_query(config, frac)
        generated.add(measure_storm(gen_service, sql, "gen", remote=False))
        hand.add(measure_storm(hand_service, sql, "hand", remote=False))
    hand_service.close()
    return hand, generated


def _assert_fig11_shape(hand, generated, tolerance):
    # Identical answers.
    for h, g in zip(hand.measurements, generated.measurements):
        assert h.rows == g.rows
    for series in (hand, generated):
        times = series.simulated
        rows = [m.rows for m in series.measurements]
        # Time grows with query size...
        for a, b in zip(times, times[1:]):
            assert b > a, series.label
        # ...proportionally to the data retrieved: time per retrieved row
        # stays within a 2x band across the sweep.
        per_row = [t / max(r, 1) for t, r in zip(times, rows)]
        assert max(per_row) < 2 * min(per_row), series.label
    # Generated close to hand-written at every size.
    for g, h in zip(generated.simulated, hand.simulated):
        assert 1 - tolerance < ratio(g, h) < 1 + tolerance


def test_fig11a_ipars_query_size(benchmark, ipars_l0_env):
    config, cluster, dataset, service = ipars_l0_env
    hand, generated = benchmark.pedantic(
        run_fig11a, args=(config, cluster, service), rounds=1, iterations=1
    )
    labels = [f"{int(f * 100)}% of run" for f in fig11_time_windows(config)]
    print_figure(
        "fig11a",
        "IPARS: execution time vs query window size",
        labels,
        [hand, generated],
        notes=["paper: proportional to data retrieved; gen within 17%"],
    )
    _assert_fig11_shape(hand, generated, tolerance=0.20)


def test_fig11b_titan_query_size(benchmark, titan_env):
    config, cluster, dataset, summaries, service, _, _ = titan_env
    hand, generated = benchmark.pedantic(
        run_fig11b,
        args=(config, cluster, service, summaries),
        rounds=1,
        iterations=1,
    )
    labels = [f"{int(f * 100)}% box" for f in fig11_box_fractions()]
    print_figure(
        "fig11b",
        "Titan: execution time vs spatial box size",
        labels,
        [hand, generated],
        notes=["paper: proportional to data retrieved; gen within 4%"],
    )
    _assert_fig11_shape(hand, generated, tolerance=0.10)


def test_fig11_planning_wall_generated(benchmark, ipars_l0_env):
    """Wall-clock of the generated index function alone (plan building)."""
    config, _, dataset, _ = ipars_l0_env
    sql = ipars_window_query(config, 0.4)
    result = benchmark(lambda: len(dataset.plan(sql).afcs))
    assert result > 0


def test_fig11_planning_wall_handwritten(benchmark, ipars_l0_env):
    """Wall-clock of the hand-written index function (the paper's rival)."""
    config, _, _, _ = ipars_l0_env
    hand = HandwrittenIparsL0(config)
    sql = ipars_window_query(config, 0.4)
    result = benchmark(lambda: len(hand.plan(sql).afcs))
    assert result > 0
