"""Figure 6: PostgreSQL vs STORM on the five Titan queries (Figure 7).

Paper result: STORM wins Q1, Q2, Q3, Q5 (e.g. Q1: 9300 s PostgreSQL vs
2600 s STORM); PostgreSQL wins only Q4, where its selective B-tree index
on S1 touches a tiny fraction of the pages.  The mechanisms are the ~3x
storage blow-up of the loaded database plus higher per-tuple CPU on one
side, and the index-assisted point lookup on the other — both reproduced
here and asserted at the end.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    Series,
    TITAN_QUERY_NAMES,
    measure_rowstore,
    measure_storm,
    print_figure,
    ratio,
)
from repro.core import ExecOptions
from repro.datasets import figure7_queries


def run_figure6(titan_env):
    config, _, dataset, _, service, store, info = titan_env
    queries = figure7_queries(config)
    storm = Series("STORM")
    postgres = Series("PostgreSQL")
    for sql in queries:
        storm.add(measure_storm(service, sql, "storm"))
        postgres.add(measure_rowstore(store, sql.replace("TitanData", "TitanData")))
    # One traced run of the full scan: where STORM's wall time goes.
    # The measured series above runs untraced so its timings stay pure.
    traced = measure_storm(service, queries[0], "storm traced", trace=True)
    stage_note = "Q1 stage breakdown (traced): " + ", ".join(
        f"{stage}={seconds * 1e3:.1f}ms"
        for stage, seconds in sorted(
            traced.stages.items(), key=lambda kv: -kv[1]
        )
        if stage in ("plan", "index", "extract", "filter", "partition", "mover")
    )
    raw_bytes = dataset.total_data_bytes
    notes = [
        stage_note,
        f"raw dataset {raw_bytes / 1e6:.0f} MB -> loaded database "
        f"{info.total_bytes / 1e6:.0f} MB "
        f"(factor {info.total_bytes / raw_bytes:.2f}; paper: 6 GB -> 18 GB)",
        "database load took "
        f"{getattr(info, 'load_wall_seconds', 0.0):.2f}s wall — an overhead "
        "the virtualization approach avoids entirely (paper §5)",
        f"row-store plans: " + "; ".join(
            f"Q{i + 1}={store.explain(q)}" for i, q in enumerate(queries)
        ),
    ]
    return storm, postgres, notes


def test_fig6_postgres_vs_storm(benchmark, titan_env):
    storm, postgres, notes = benchmark.pedantic(
        run_figure6, args=(titan_env,), rounds=1, iterations=1
    )
    print_figure(
        "fig6",
        "PostgreSQL vs STORM, Titan queries (simulated seconds)",
        TITAN_QUERY_NAMES,
        [postgres, storm],
        notes,
    )

    pg = postgres.simulated
    st = storm.simulated
    # Paper shape: STORM wins everywhere except the indexed Q4.
    for qi in (0, 1, 2, 4):
        assert st[qi] < pg[qi], f"STORM should win Q{qi + 1}"
    assert pg[3] < st[3], "PostgreSQL should win Q4 via the S1 index"
    # Full scan is the worst case for both systems.
    assert max(st) == st[0]
    assert max(pg) == pg[0]
    # The full-scan gap is driven by the storage factor (~3x in the paper).
    assert 1.5 < ratio(pg[0], st[0]) < 8.0


def test_fig6_storm_full_scan_wall(benchmark, titan_env):
    """Wall-clock microbenchmark: STORM full scan of the Titan dataset."""
    _, _, _, _, service, _, _ = titan_env

    def scan():
        service.drop_caches()
        return service.submit("SELECT * FROM TitanData", ExecOptions(remote=False)).num_rows

    rows = benchmark(scan)
    assert rows > 0


def test_fig6_rowstore_full_scan_wall(benchmark, titan_env):
    """Wall-clock microbenchmark: row-store full scan (the Q1 baseline)."""
    _, _, _, _, _, store, _ = titan_env
    result = benchmark(lambda: store.query("SELECT * FROM TitanData").num_rows)
    assert result > 0
