"""Figures 7 & 8: the evaluation query workloads (paper tables).

These two figures are tables of query text; "regenerating" them means
printing the workload our generators produce at the benchmark scale and
checking that every query parses, plans, and classifies into the paper's
archetypes (scan / indexed subset / subset+filter / subset+UDF / remote).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import fig6_titan_config, fig9_ipars_config
from repro.bench.harness import results_dir
from repro.datasets import figure7_queries, figure8_queries
from repro.sql import FunctionCall, parse_query
from repro.sql.ranges import extract_ranges


def classify(query):
    """Which archetype a query is (mirrors the paper's Type column)."""
    if query.where is None:
        return "full scan"

    def has_udf(node):
        if isinstance(node, FunctionCall):
            return True
        for attr in ("terms", "term", "left", "right", "operand"):
            child = getattr(node, attr, None)
            if child is None:
                continue
            children = child if isinstance(child, tuple) else (child,)
            if any(has_udf(c) for c in children if hasattr(c, "evaluate")):
                return True
        return False

    ranges = extract_ranges(query.where)
    udf = has_udf(query.where)
    if udf:
        return "subset + user-defined function" if ranges else "user-defined function"
    return "subsetting by range"


def print_workload(figure, title, queries):
    lines = [f"=== {figure}: {title} ==="]
    parsed = [parse_query(q) for q in queries]
    for i, (text, query) in enumerate(zip(queries, parsed), 1):
        lines.append(f"  Q{i} [{classify(query)}]")
        lines.append(f"     {text}")
    print("\n" + "\n".join(lines))
    payload = {
        "figure": figure,
        "title": title,
        "queries": queries,
        "types": [classify(q) for q in parsed],
    }
    with open(os.path.join(results_dir(), f"{figure}.json"), "w") as handle:
        json.dump(payload, handle, indent=2)
    return parsed


def test_fig7_titan_workload(benchmark):
    config = fig6_titan_config()
    queries = figure7_queries(config)
    parsed = benchmark.pedantic(
        lambda: print_workload("fig7", "Titan queries", queries),
        rounds=1, iterations=1,
    )
    assert len(parsed) == 5
    assert classify(parsed[0]) == "full scan"
    assert classify(parsed[1]) == "subsetting by range"
    assert "function" in classify(parsed[2])  # DISTANCE()
    assert classify(parsed[3]) == "subsetting by range"  # S1 < 0.01
    assert all(q.table == "TitanData" for q in parsed)


def test_fig8_ipars_workload(benchmark):
    config = fig9_ipars_config()
    queries = figure8_queries(config)
    parsed = benchmark.pedantic(
        lambda: print_workload("fig8", "IPARS queries", queries),
        rounds=1, iterations=1,
    )
    assert len(parsed) == 5
    assert classify(parsed[0]) == "full scan"
    assert classify(parsed[1]) == "subsetting by range"
    assert classify(parsed[2]) == "subsetting by range"  # + SOIL filter
    assert "function" in classify(parsed[3])  # Speed()
    assert classify(parsed[4]) == "subsetting by range"  # remote client
    # The TIME windows match the paper's pattern: Q5 is half of Q2's.
    r2 = extract_ranges(parsed[1].where)["TIME"]
    r5 = extract_ranges(parsed[4].where)["TIME"]
    assert r5.bounds[1] <= r2.bounds[1]
