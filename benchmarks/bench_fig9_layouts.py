"""Figure 9: query execution across the seven IPARS file layouts.

Paper result: the generated code handles every layout correctly; execution
time varies with layout (L0 opens 18 files per aligned chunk set); the
compiler-generated code is within ~10% of the hand-written code on L0
(within 4% for the UDF query).  Figure 9(a) is the full scan (an order of
magnitude slower than the rest), Figure 9(b) the four subsetting queries.
"""

from __future__ import annotations

import pytest

from repro.baselines import HandwrittenIparsL0
from repro.bench import (
    IPARS_QUERY_NAMES,
    Series,
    fig9_ipars_config,
    measure_storm,
    print_figure,
    ratio,
)
from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import ALL_LAYOUTS, figure8_queries, ipars
from repro.storm import QueryService, VirtualCluster


@pytest.fixture(scope="module")
def layout_envs(tmp_path_factory):
    """One generated dataset + service per layout, same virtual table."""
    config = fig9_ipars_config()
    envs = {}
    for layout in ALL_LAYOUTS:
        root = tmp_path_factory.mktemp(f"fig9_{layout}")
        cluster = VirtualCluster.create(str(root), config.num_nodes)
        text, _ = ipars.generate(config, layout, cluster.mount())
        dataset = GeneratedDataset(text)
        envs[layout] = (cluster, QueryService(dataset, cluster))
    yield config, envs
    for _, service in envs.values():
        service.close()


def run_figure9(config, envs):
    queries = figure8_queries(config)
    # The hand-written planner runs through the SAME service pipeline
    # (per-node extraction, makespan cost), so the comparison isolates the
    # index-function / plan-construction difference — as in the paper.
    hand_cluster, _ = envs["L0"]
    hand_service = QueryService(HandwrittenIparsL0(config), hand_cluster)

    series = [Series("hand L0")]
    for i, sql in enumerate(queries):
        series[0].add(
            measure_storm(hand_service, sql, "hand L0", remote=(i == 4))
        )
    for layout in ALL_LAYOUTS:
        _, service = envs[layout]
        s = Series(f"gen {layout}")
        for i, sql in enumerate(queries):
            s.add(measure_storm(service, sql, s.label, remote=(i == 4)))
        series.append(s)
    hand_service.close()
    return series


def test_fig9_layouts(benchmark, layout_envs):
    config, envs = layout_envs
    series = benchmark.pedantic(
        run_figure9, args=(config, envs), rounds=1, iterations=1
    )
    hand, gen = series[0], series[1]  # hand L0, gen L0

    print_figure(
        "fig9a",
        "Query 1 (full scan) across layouts",
        [IPARS_QUERY_NAMES[0]],
        [Series(s.label, s.measurements[:1]) for s in series],
    )
    print_figure(
        "fig9b",
        "Queries 2-5 across layouts",
        IPARS_QUERY_NAMES[1:],
        [Series(s.label, s.measurements[1:]) for s in series],
    )

    # Every layout returns the same row counts (correctness across layouts).
    for s in series[1:]:
        for qi, m in enumerate(s.measurements):
            assert m.rows == gen.measurements[qi].rows, (s.label, qi)
        assert s.measurements[0].rows == config.total_rows

    # Generated L0 within ~15% of hand-written L0 (paper: up to 10%).
    for qi in range(5):
        r = ratio(gen.simulated[qi], hand.simulated[qi])
        assert 0.85 < r < 1.25, (qi, r)

    # Full scan dominates the subsetting queries on every layout.
    for s in series:
        assert s.simulated[0] > 3 * max(s.simulated[1:4])

    # L0 pays for opening 18 files per AFC set: more opens than layout I.
    l0 = next(s for s in series if s.label == "gen L0")
    li = next(s for s in series if s.label == "gen I")
    assert l0.measurements[0].files_opened > li.measurements[0].files_opened


def test_fig9_gen_l0_subset_wall(benchmark, layout_envs):
    """Wall-clock: the indexed TIME-subset query on the L0 layout."""
    config, envs = layout_envs
    _, service = envs["L0"]
    sql = figure8_queries(config)[1]

    def run():
        service.drop_caches()
        return service.submit(sql, ExecOptions(remote=False)).num_rows

    assert benchmark(run) > 0
