"""Micro-benchmarks of individual components (throughput tracking).

Not a paper figure — these pin the per-component costs that the figure
benchmarks aggregate, so a regression in one layer is visible in
isolation: SQL parsing, descriptor parsing, chunk enumeration, R-tree
search, and raw extraction throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import fig6_titan_config
from repro.bench.harness import measure_storm
from repro.core import CompiledDataset, Extractor, GeneratedDataset, IOStats
from repro.storm import QueryService
from repro.datasets import titan
from repro.index import build_summaries
from repro.index.rtree import RTree
from repro.metadata import parse_descriptor
from repro.sql import parse_query
from repro.storm import VirtualCluster
from repro.datasets.paper_example import PAPER_DESCRIPTOR

FIGURE1_QUERY = (
    "SELECT * FROM IparsData WHERE RID in (0,6,26,27) AND TIME >= 1000 "
    "AND TIME <= 1100 AND SOIL >= 0.7 AND SPEED(OILVX, OILVY, OILVZ) <= 30.0"
)


def test_micro_sql_parse(benchmark):
    query = benchmark(parse_query, FIGURE1_QUERY)
    assert query.table == "IparsData"


def test_micro_descriptor_parse(benchmark):
    descriptor = benchmark(parse_descriptor, PAPER_DESCRIPTOR)
    assert descriptor.name == "IparsData"


def test_micro_afc_enumeration(benchmark):
    dataset = GeneratedDataset(PAPER_DESCRIPTOR)
    count = benchmark(lambda: len(dataset.index({})))
    assert count == 320


def test_micro_rtree_search(benchmark):
    rng = np.random.default_rng(1)
    boxes = rng.random((5000, 2))
    entries = [
        (((x, x + 0.01), (y, y + 0.01)), i)
        for i, (x, y) in enumerate(boxes)
    ]
    tree = RTree.bulk_load(entries, fanout=16)
    hits = benchmark(lambda: sum(1 for _ in tree.search(((0.4, 0.6), (0.4, 0.6)))))
    assert hits > 0


@pytest.fixture(scope="module")
def titan_scan_env(tmp_path_factory):
    config = fig6_titan_config()
    root = tmp_path_factory.mktemp("micro_titan")
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = titan.generate(config, cluster.mount())
    dataset = GeneratedDataset(text)
    return config, cluster, dataset


def test_micro_extraction_throughput(benchmark, titan_scan_env):
    """MB/s of raw chunk extraction into table columns."""
    config, cluster, dataset = titan_scan_env
    plan = dataset.plan("SELECT * FROM TitanData")

    def scan():
        stats = IOStats()
        with Extractor(cluster.mount(), segment_cache_bytes=0) as extractor:
            extractor.execute(plan, stats)
        return stats.bytes_read

    nbytes = benchmark(scan)
    assert nbytes == dataset.total_data_bytes


def test_micro_summary_build(benchmark, titan_scan_env):
    config, cluster, dataset = titan_scan_env
    summaries = benchmark.pedantic(
        lambda: build_summaries(dataset, cluster.mount()),
        rounds=2,
        iterations=1,
    )
    assert len(summaries) == config.total_chunks


def test_micro_traced_stage_breakdown(benchmark, titan_scan_env):
    """Full service pipeline with tracing on: where does the time go?

    Pins that tracing stays usable at benchmark scale and that every
    pipeline stage shows up in the span breakdown.
    """
    config, cluster, dataset = titan_scan_env
    sql = (
        f"SELECT X, Y, Z, S1 FROM TitanData WHERE X <= {config.extent[0] / 2:.0f}"
    )
    with QueryService(dataset, cluster) as service:
        def traced():
            service.drop_caches()
            return measure_storm(
                service, sql, "traced",
                num_clients=2, remote=True, trace=True,
            )

        measurement = benchmark.pedantic(traced, rounds=2, iterations=1)
    assert {"plan", "index", "extract", "filter"} <= set(measurement.stages)
    assert {"partition", "mover"} <= set(measurement.stages)
    assert all(seconds >= 0 for seconds in measurement.stages.values())
