"""Throughput under a mixed workload (beyond the paper's 5-query sets).

A repository serves a stream of differently-shaped queries; this
benchmark runs deterministic mixed workloads (repro.bench.workloads)
through the STORM service and reports aggregate throughput.  The
assertions pin the workload's determinism — the same (config, seed)
always selects the same rows — so throughput regressions are not masked
by workload drift.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import ipars_workload, mri_workload, titan_workload
from repro.core import ExecOptions
from repro.datasets import figure7_queries


def run_workload(service, queries):
    total_rows = 0
    total_bytes = 0
    sim = 0.0
    for sql in queries:
        result = service.submit(sql, ExecOptions(remote=False))
        total_rows += result.num_rows
        stats = result.total_stats
        total_bytes += stats.bytes_read
        sim += result.simulated_seconds
    return total_rows, total_bytes, sim


def test_mixed_workload_ipars(benchmark, ipars_l0_env):
    config, _, _, service = ipars_l0_env
    queries = ipars_workload(config, 25, seed=42)
    rows, nbytes, sim = benchmark.pedantic(
        run_workload, args=(service, queries), rounds=1, iterations=1
    )
    assert rows > 0
    # Determinism: the same seed re-selects exactly the same rows.
    rows2, _, _ = run_workload(service, ipars_workload(config, 25, seed=42))
    assert rows2 == rows
    # Different seed -> different workload.
    assert ipars_workload(config, 25, seed=7) != queries


def test_mixed_workload_titan(benchmark, titan_env):
    config, _, _, _, service, _, _ = titan_env
    queries = titan_workload(config, 25, seed=42)
    rows, nbytes, sim = benchmark.pedantic(
        run_workload, args=(service, queries), rounds=1, iterations=1
    )
    assert rows > 0
    rows2, _, _ = run_workload(service, titan_workload(config, 25, seed=42))
    assert rows2 == rows


def test_mixed_workload_mri(benchmark, tmp_path_factory):
    from repro.core import GeneratedDataset
    from repro.datasets import MriConfig, mri
    from repro.storm import QueryService, VirtualCluster

    config = MriConfig(num_studies=8, slices=8, rows=32, cols=32,
                       num_nodes=2)
    root = tmp_path_factory.mktemp("bench_mri")
    cluster = VirtualCluster.create(str(root), config.num_nodes,
                                    prefix="node")
    text, _ = mri.generate(config, cluster.mount())
    service = QueryService(GeneratedDataset(text), cluster)
    queries = mri_workload(config, 20, seed=42)
    rows, nbytes, sim = benchmark.pedantic(
        run_workload, args=(service, queries), rounds=1, iterations=1
    )
    assert rows > 0
    rows2, _, _ = run_workload(service, mri_workload(config, 20, seed=42))
    assert rows2 == rows
    service.close()


def test_workload_queries_all_parse(ipars_l0_env, titan_env, benchmark):
    from repro.sql import parse_query

    config, _, _, _ = ipars_l0_env
    tconfig = titan_env[0]
    queries = benchmark.pedantic(
        lambda: ipars_workload(config, 200, seed=3)
        + titan_workload(tconfig, 200, seed=3),
        rounds=1,
        iterations=1,
    )
    for sql in queries:
        parse_query(sql)
    # The mix leans subsetting-heavy, as intended.
    scans = sum(1 for q in queries if "WHERE" not in q)
    assert scans < len(queries) * 0.15
