"""Sustained-load latency: fair-share scheduling vs unscheduled chaos.

A 2-tenant mix — an interactive tenant issuing small, high-priority
window queries and a bulk tenant hammering full scans — runs under
closed-loop concurrency (repro.bench.load), sweeping the bulk client
count over the deterministic IPARS mix (plus Titan/MRI points in full
mode).  Each sweep point reports p50/p99 latency, throughput, queue
waits, and starvation ratio per tenant; the final point re-runs with
``ExecOptions(scheduler="off")`` — the ablation where every client
thread executes inline with no lanes, no priority, no shared-pool
ordering.

Acceptance criteria asserted here (full mode):

* the interactive tenant's p99 under the fair scheduler is >= 3x lower
  than under ``scheduler="off"`` at the same concurrency;
* thread count does not grow across the run (shared node pool + bounded
  scheduler workers, no per-submit pool churn).

Smoke mode (CI) shrinks the dataset and asserts the priority lane's p99
beats the bulk lane's within the scheduled run.

Results land in ``bench_results/BENCH_sched.json`` (see
docs/architecture.md, "Scheduling & admission", for the field glossary).

    PYTHONPATH=src python benchmarks/bench_sched_load.py           # full
    PYTHONPATH=src python benchmarks/bench_sched_load.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading

from repro.bench.load import LoadReport, TenantSpec, run_closed_loop, write_bench_json
from repro.bench.workloads import ipars_workload, mri_workload, titan_workload
from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import IparsConfig, MriConfig, TitanConfig, ipars, mri, titan
from repro.sched import Scheduler
from repro.storm import QueryService, VirtualCluster

#: Dispatch lanes for the scheduled runs: two reserved for the priority
#: lane (one per interactive client, so neither ever waits behind the
#: other), one serving the fair-share queues.
WORKERS = 3
RESERVED = 2

# scheduler_workers sizes the shared node pool: generous enough that a
# scheduled run's two in-flight queries never contend for pool slots —
# under "off" the same pool takes every inline client's fan-out at once.
LOCAL = ExecOptions(remote=False, scheduler_workers=8)
ABLATION = ExecOptions(remote=False, scheduler="off", scheduler_workers=8)


def build_service(root: str, config: IparsConfig) -> QueryService:
    cluster = VirtualCluster.create(root, config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())
    return QueryService(GeneratedDataset(text), cluster)


def interactive_queries(config: IparsConfig):
    times = range(1, config.num_times + 1)
    return [
        f"SELECT X, SOIL FROM IparsData WHERE TIME = {t} AND REL = 0"
        for t in times
    ]


def run_point(
    service,
    bulk_queries,
    inter_queries,
    bulk_clients: int,
    queries_per_client: int,
    inter_per_client: int,
    base: ExecOptions,
) -> LoadReport:
    tenants = [
        TenantSpec(
            "interactive",
            inter_queries,
            clients=2,
            queries_per_client=inter_per_client,
            priority=1,
        ),
        TenantSpec(
            "bulk",
            bulk_queries,
            clients=bulk_clients,
            queries_per_client=queries_per_client,
        ),
    ]
    with Scheduler(
        service, workers=WORKERS, reserve_priority=RESERVED
    ) as sched:
        # Warm up the shared node pool, file handles, and page cache so
        # cold-start costs don't land in the first few measured tails.
        warm = base.replace(tenant="warmup")
        for sql in (bulk_queries[0], *inter_queries[:2]):
            sched.run(sql, warm)
        return run_closed_loop(sched, tenants, base_options=base)


def describe(label: str, report: LoadReport) -> None:
    print(f"--- {label} ({report.duration_seconds:.2f}s wall) ---")
    for name, tenant in sorted(report.tenants.items()):
        row = tenant.as_dict(report.duration_seconds)
        print(
            f"  {name:>12}: {row['completed']:>4} ok  "
            f"p50 {row['p50_ms']:8.1f} ms  p99 {row['p99_ms']:8.1f} ms  "
            f"{row['throughput_qps']:6.2f} q/s  "
            f"starvation {row['starvation_ratio']:5.2f}"
        )
    threads = report.threads_before, report.threads_peak, report.threads_after
    print(f"  threads before/peak/after: {threads[0]}/{threads[1]}/{threads[2]}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset, weaker assertion (priority p99 beats bulk p99)",
    )
    args = parser.parse_args(argv)

    # Both modes run identically under a 1 ms GIL switch interval; the
    # default 5 ms quantum adds ~(runnable threads x 5 ms) of scheduler-
    # independent jitter to every latency tail, drowning the queueing
    # signal this benchmark exists to measure.
    sys.setswitchinterval(0.001)

    if args.smoke:
        config = IparsConfig(
            num_rels=2, num_times=8, cells_per_node=24, num_nodes=3
        )
        sweep_clients = [2, 4]
        queries_per_client = 3
        inter_per_client = 10
    else:
        config = IparsConfig(
            num_rels=2, num_times=16, cells_per_node=192, num_nodes=3
        )
        sweep_clients = [2, 4, 8]
        queries_per_client = 4
        inter_per_client = 50

    payload = {
        "config": {
            "dataset": "ipars",
            "mode": "smoke" if args.smoke else "full",
            "workers": WORKERS,
            "num_nodes": config.num_nodes,
            "num_times": config.num_times,
            "cells_per_node": config.cells_per_node,
        },
        "sweep": [],
    }
    failures = []
    threads_start = threading.active_count()

    with tempfile.TemporaryDirectory(prefix="bench_sched_") as root:
        service = build_service(root, config)
        bulk = ipars_workload(config, 16, seed=42)
        # Lean the bulk mix on scans: the starvation story needs heavy
        # queries, and the deterministic mix is subsetting-heavy.
        bulk = ["SELECT * FROM IparsData"] * 6 + bulk[:6]
        inter = interactive_queries(config)

        for bulk_clients in sweep_clients[:-1]:
            report = run_point(
                service, bulk, inter, bulk_clients,
                queries_per_client, inter_per_client, LOCAL,
            )
            describe(f"fair, {bulk_clients} bulk clients", report)
            entry = report.as_dict()
            entry.update(mode="fair", bulk_clients=bulk_clients)
            payload["sweep"].append(entry)

        # The headline fair-vs-off comparison at peak concurrency runs
        # both modes repeatedly, alternating, and scores the median-p99
        # run of each: a single p99 sample per mode is machine-noise.
        repeats = 1 if args.smoke else 3
        fair_runs, off_runs = [], []
        for rep in range(repeats):
            for mode_base, runs in ((LOCAL, fair_runs), (ABLATION, off_runs)):
                report = run_point(
                    service, bulk, inter, sweep_clients[-1],
                    queries_per_client, inter_per_client, mode_base,
                )
                runs.append(report)
                label = "fair" if mode_base is LOCAL else "scheduler=off"
                describe(
                    f"{label}, {sweep_clients[-1]} bulk clients "
                    f"(rep {rep + 1}/{repeats})",
                    report,
                )

        def median_run(runs):
            ordered = sorted(runs, key=lambda r: r.tenants["interactive"].p99)
            return ordered[len(ordered) // 2]

        fair_at_max = median_run(fair_runs)
        off = median_run(off_runs)
        for mode, runs in (("fair", fair_runs), ("off", off_runs)):
            for rep, report in enumerate(runs):
                entry = report.as_dict()
                entry.update(
                    mode=mode, bulk_clients=sweep_clients[-1], rep=rep
                )
                payload["sweep"].append(entry)

        if not args.smoke:
            # Titan and MRI points: the same 2-tenant shape over the
            # other deterministic mixes, one concurrency level each.
            tconfig = TitanConfig(
                chunks_x=4, chunks_y=4, chunks_z=2, chunks_t=4,
                elems_per_chunk=200, num_nodes=2,
            )
            troot = tempfile.mkdtemp(prefix="bench_sched_titan_", dir=root)
            tcluster = VirtualCluster.create(troot, tconfig.num_nodes)
            ttext, _ = titan.generate(tconfig, tcluster.mount())
            mconfig = MriConfig(
                num_studies=8, slices=8, rows=32, cols=32, num_nodes=2
            )
            mroot = tempfile.mkdtemp(prefix="bench_sched_mri_", dir=root)
            mcluster = VirtualCluster.create(
                mroot, mconfig.num_nodes, prefix="node"
            )
            mtext, _ = mri.generate(mconfig, mcluster.mount())
            for name, text, cluster, queries in (
                ("titan", ttext, tcluster, titan_workload(tconfig, 12, seed=42)),
                ("mri", mtext, mcluster, mri_workload(mconfig, 12, seed=42)),
            ):
                with QueryService(GeneratedDataset(text), cluster) as svc:
                    cheap = [q for q in queries if "WHERE" in q] or queries
                    report = run_point(
                        svc, queries, cheap[:8], 4, 3, 10, LOCAL
                    )
                    describe(f"fair, {name} mix, 4 bulk clients", report)
                    entry = report.as_dict()
                    entry.update(mode="fair", dataset=name, bulk_clients=4)
                    payload["sweep"].append(entry)

        service.close()

    fair_inter = fair_at_max.tenants["interactive"]
    fair_bulk = fair_at_max.tenants["bulk"]
    off_inter = off.tenants["interactive"]
    improvement = (
        off_inter.p99 / fair_inter.p99 if fair_inter.p99 > 0 else 0.0
    )
    threads_end = threading.active_count()
    payload["criteria"] = {
        "interactive_p99_ms_fair": round(fair_inter.p99 * 1000, 3),
        "interactive_p99_ms_off": round(off_inter.p99 * 1000, 3),
        "p99_improvement": round(improvement, 2),
        "threads_start": threads_start,
        "threads_end": threads_end,
    }

    print(
        f"\ninteractive p99: fair {fair_inter.p99 * 1000:.1f} ms vs "
        f"off {off_inter.p99 * 1000:.1f} ms -> {improvement:.1f}x better"
    )

    if fair_inter.completed == 0 or fair_bulk.completed == 0:
        failures.append("a tenant completed zero queries under fair")
    if fair_inter.p99 >= fair_bulk.p99:
        failures.append(
            f"priority lane p99 ({fair_inter.p99 * 1000:.1f} ms) does not "
            f"beat bulk lane p99 ({fair_bulk.p99 * 1000:.1f} ms)"
        )
    # Thread growth: the run may stand up the shared pool and scheduler
    # workers once, but sustained load must not accumulate threads.
    if threads_end > threads_start + 8:
        failures.append(
            f"thread count grew {threads_start} -> {threads_end}"
        )
    if not args.smoke and improvement < 3.0:
        failures.append(
            f"interactive p99 improved only {improvement:.1f}x "
            "(acceptance floor is 3x)"
        )

    path = write_bench_json("BENCH_sched", payload)
    print(f"wrote {path}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
