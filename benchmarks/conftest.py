"""Shared benchmark fixtures: datasets are built once per session.

Benchmark datasets are larger than test datasets (the figures need enough
bytes for I/O terms to dominate Python overheads) but still laptop-scale;
see EXPERIMENTS.md for the scaling relative to the paper's testbed.
"""

from __future__ import annotations

import pytest

from repro.baselines.rowstore import MiniRowStore
from repro.bench import fig6_titan_config, fig9_ipars_config
from repro.core import CompiledDataset, ExecOptions, GeneratedDataset
from repro.datasets import ipars, titan
from repro.index import build_summaries
from repro.storm import QueryService, VirtualCluster


@pytest.fixture(scope="session")
def titan_env(tmp_path_factory):
    """Titan dataset + STORM service + loaded row store (fig6, fig11b)."""
    config = fig6_titan_config()
    root = tmp_path_factory.mktemp("bench_titan")
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = titan.generate(config, cluster.mount())
    dataset = GeneratedDataset(text)
    summaries = build_summaries(dataset, cluster.mount())
    dataset.summaries = summaries
    service = QueryService(dataset, cluster)

    # Load the same virtual table into the row store, indexing the spatial
    # coordinates and S1 like the paper's PostgreSQL setup.  Load time is
    # measured because the paper calls it out as PostgreSQL's overhead
    # ("significant overhead for loading the data and managing the
    # database") that the virtualization approach avoids entirely.
    import time

    full = service.submit("SELECT * FROM TitanData", ExecOptions(remote=False)).table
    store = MiniRowStore(str(root / "pg"))
    load_start = time.perf_counter()
    info = store.create_table("TitanData", full, indexes=["X", "S1"])
    info.load_wall_seconds = time.perf_counter() - load_start

    yield config, cluster, dataset, summaries, service, store, info
    service.close()


@pytest.fixture(scope="session")
def ipars_l0_env(tmp_path_factory):
    """IPARS L0 dataset + STORM service (fig9, fig11a)."""
    config = fig9_ipars_config()
    root = tmp_path_factory.mktemp("bench_ipars")
    cluster = VirtualCluster.create(str(root), config.num_nodes)
    text, _ = ipars.generate(config, "L0", cluster.mount())
    dataset = GeneratedDataset(text)
    service = QueryService(dataset, cluster)
    yield config, cluster, dataset, service
    service.close()
