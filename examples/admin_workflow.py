#!/usr/bin/env python
"""The repository administrator's workflow, end to end.

The paper frames data virtualization as a meeting ground between the
scientist (knows the data) and the database developer (knows the tools).
This example walks the administrator's side using the programmatic
builder, the XML embedding, the inventory checker, and the CLI — the
pieces a site would script when standing up data services for a new
dataset.

Run:  python examples/admin_workflow.py
"""

import io
import os
import tempfile
from contextlib import redirect_stdout

import numpy as np

from repro.cli import main as repro_cli
from repro.core import CompiledDataset, Virtualizer, local_mount
from repro.datasets.writers import hash01, write_dataset
from repro.metadata import descriptor_to_xml, parse_descriptor
from repro.metadata.builder import DescriptorBuilder

root = tempfile.mkdtemp(prefix="repro-admin-")

# ---------------------------------------------------------------------------
# 1. Build the descriptor programmatically (no hand-written text).
# ---------------------------------------------------------------------------
print("1. Building the descriptor with DescriptorBuilder...")
b = DescriptorBuilder("SensorNet", schema_name="SENSORS")
b.attributes(DAY="int", STATION="int", RAIN="float", WIND="float")
b.directories("site{i}/sensornet", count=2)
b.index_on("DAY")

leaf = b.leaf("SensorNet")
with leaf.loop("DAY", 1, 30):
    with leaf.loop("STATION", "$DIRID*8", "($DIRID+1)*8-1"):
        leaf.record("RAIN", "WIND")
leaf.files("DIR[$DIRID]/readings.bin", DIRID=(0, 1))

descriptor = b.build()
text = b.to_text()
print(f"   built + validated: {descriptor.name}, "
      f"{len(descriptor.schema)} columns, "
      f"{len(CompiledDataset(descriptor).files)} files expected")

# ---------------------------------------------------------------------------
# 2. Materialise the dataset (here synthetic; in production it already
#    exists) and verify the descriptor against the actual files.
# ---------------------------------------------------------------------------
print("\n2. Writing data and checking the inventory...")
mount = local_mount(root)


def value_fn(attr, env, coords):
    key = coords["DAY"] * 1000 + coords["STATION"]
    if attr == "RAIN":
        return 50.0 * hash01(key, 1)
    return 30.0 * hash01(key, 2)


write_dataset(CompiledDataset(descriptor), mount, value_fn)

desc_path = os.path.join(root, "sensornet.desc")
with open(desc_path, "w") as fh:
    fh.write(text)

buffer = io.StringIO()
with redirect_stdout(buffer):
    status = repro_cli(["inventory", desc_path, "--root", root, "--check"])
print("   $ repro inventory sensornet.desc --root ... --check")
for line in buffer.getvalue().strip().splitlines():
    print("   " + line)
assert status == 0

# ---------------------------------------------------------------------------
# 3. Publish the descriptor as XML for the site's metadata catalogue.
# ---------------------------------------------------------------------------
print("\n3. Publishing the XML embedding...")
xml_path = os.path.join(root, "sensornet.xml")
with open(xml_path, "w") as fh:
    fh.write(descriptor_to_xml(descriptor))
print(f"   wrote {os.path.getsize(xml_path)} bytes of XML; "
      "CLI commands accept it directly:")

buffer = io.StringIO()
with redirect_stdout(buffer):
    repro_cli([
        "query", xml_path,
        "SELECT DAY, STATION, RAIN FROM SensorNet "
        "WHERE DAY BETWEEN 10 AND 12 AND RAIN > 45",
        "--root", root, "--format", "csv",
    ])
lines = buffer.getvalue().strip().splitlines()
print(f"   $ repro query sensornet.xml 'SELECT ... RAIN > 45' -> "
      f"{len(lines) - 1} rows")
for line in lines[:4]:
    print("   " + line)

# ---------------------------------------------------------------------------
# 4. Inspect what the compiler generated for the support ticket archive.
# ---------------------------------------------------------------------------
print("\n4. Archiving the generated index function...")
with Virtualizer(descriptor, mount, codegen_path=os.path.join(root, "gen.py")) as v:
    plan = v.plan("SELECT RAIN FROM SensorNet WHERE DAY = 7")
    print(f"   DAY=7 plans {len(plan.afcs)} aligned chunk sets, "
          f"{plan.planned_bytes} bytes to read "
          f"of {CompiledDataset(descriptor).total_data_bytes} total")
print(f"   generated module saved to {os.path.join(root, 'gen.py')}")
