#!/usr/bin/env python
"""Onboarding a new data layout: the workflow the paper automates.

The paper's pitch: "handling a new dataset layout or virtual view only
involves writing a new meta-data descriptor" — no hand-written extractor,
no database load.  This example plays the data-repository administrator:

1. A climate model wrote its output in an idiosyncratic layout: one file
   per month per station-group, humidity and pressure stored as separate
   arrays within each file (variable-as-array), elevations in a shared
   side file.
2. We write the descriptor, letting validation catch a typical mistake.
3. We query across the month files, compare against reading the binary
   files by hand, and inspect the code the tool generated.

Run:  python examples/custom_layout.py
"""

import os
import tempfile

import numpy as np

from repro import MetadataValidationError, Virtualizer, local_mount

# ---------------------------------------------------------------------------
# 1. The climate model's own output format (written with plain numpy).
# ---------------------------------------------------------------------------
root = tempfile.mkdtemp(prefix="repro-custom-")
NUM_STATIONS, NUM_MONTHS, SAMPLES = 6, 12, 30

rng = np.random.default_rng(7)
elevation = (rng.random(NUM_STATIONS) * 3000).astype("<f4")
humidity = rng.random((NUM_MONTHS, SAMPLES, NUM_STATIONS)).astype("<f4")
pressure = (900 + 200 * rng.random((NUM_MONTHS, SAMPLES, NUM_STATIONS))).astype("<f4")

site = os.path.join(root, "archive", "climate")
os.makedirs(site)
elevation.tofile(os.path.join(site, "elevations.bin"))
for month in range(1, NUM_MONTHS + 1):
    # Within a month file: all humidity samples, then all pressure samples
    # (each variable stored as an array — the tricky part of this layout).
    with open(os.path.join(site, f"month{month:02d}.bin"), "wb") as fh:
        humidity[month - 1].tofile(fh)
        pressure[month - 1].tofile(fh)

# ---------------------------------------------------------------------------
# 2. First descriptor attempt — with a classic mistake.
# ---------------------------------------------------------------------------
SCHEMA_AND_STORAGE = f"""
[CLIMATE]
MONTH = int
SAMPLE = int
ELEV = float
HUM = float
PRES = float

[Climate]
DatasetDescription = CLIMATE
DIR[0] = archive/climate
"""

BROKEN_LAYOUT = f"""
DATASET "Climate" {{
  DATATYPE {{ CLIMATE }}
  DATAINDEX {{ MONTH }}
  DATA {{ DATASET elev DATASET months }}
  DATASET "elev" {{
    DATASPACE {{ LOOP STATION 0:{NUM_STATIONS - 1}:1 {{ ELEV }} }}
    DATA {{ DIR[0]/elevations.bin }}
  }}
  DATASET "months" {{
    DATASPACE {{
      LOOP SAMPLE 0:{SAMPLES - 1}:1 {{
        LOOP STATION 0:{NUM_STATIONS - 1}:1 {{ HUM PRES }}   // WRONG: interleaved
      }}
    }}
    DATA {{ DIR[0]/month$MONTH.bin MONTH = 1:{NUM_MONTHS}:1 }}
  }}
}}
"""
# The mistake above would decode garbage (HUM/PRES are NOT interleaved
# records) — but a second mistake is easier to show: referencing an
# attribute that is not in the schema gets caught at validation time.
try:
    Virtualizer(
        SCHEMA_AND_STORAGE + BROKEN_LAYOUT.replace("HUM PRES", "HUM PRES WIND"),
        local_mount(root),
    )
except MetadataValidationError as exc:
    print("Validation caught the bad descriptor:")
    print("  ", exc)

# Note the file-name template month$MONTH.bin: it needs zero padding
# (month01), which the template language spells as a literal prefix.
CORRECT_LAYOUT = f"""
DATASET "Climate" {{
  DATATYPE {{ CLIMATE }}
  DATAINDEX {{ MONTH }}
  DATA {{ DATASET elev DATASET months }}
  DATASET "elev" {{
    DATASPACE {{ LOOP STATION 0:{NUM_STATIONS - 1}:1 {{ ELEV }} }}
    DATA {{ DIR[0]/elevations.bin }}
  }}
  DATASET "months" {{
    DATASPACE {{
      LOOP SAMPLE 0:{SAMPLES - 1}:1 {{
        LOOP STATION 0:{NUM_STATIONS - 1}:1 {{ HUM }}
      }}
      LOOP SAMPLE 0:{SAMPLES - 1}:1 {{
        LOOP STATION 0:{NUM_STATIONS - 1}:1 {{ PRES }}
      }}
    }}
    DATA {{ DIR[0]/month$MONTH.bin MONTH = 1:{NUM_MONTHS}:1 }}
  }}
}}
"""

# Wait — month$MONTH.bin expands to month1.bin, but the model wrote
# month01.bin.  Validation cannot catch naming conventions, but the first
# query fails loudly with the missing path, so we fix the data side by
# also accepting the unpadded names:
for month in range(1, NUM_MONTHS + 1):
    padded = os.path.join(site, f"month{month:02d}.bin")
    plain = os.path.join(site, f"month{month}.bin")
    if not os.path.exists(plain):
        os.link(padded, plain)

# ---------------------------------------------------------------------------
# 3. Query, and check against decoding the binary files by hand.
# ---------------------------------------------------------------------------
with Virtualizer(SCHEMA_AND_STORAGE + CORRECT_LAYOUT, local_mount(root)) as v:
    sql = (
        "SELECT MONTH, SAMPLE, ELEV, HUM, PRES FROM Climate "
        "WHERE MONTH BETWEEN 6 AND 8 AND HUM > 0.9"
    )
    table = v.query(sql)
    print(f"\n{sql}")
    print(f"  -> {table.num_rows} rows; first three:")
    for row in table.head(3):
        print("    ", row)

    # Hand-decoded oracle straight from the arrays we generated.
    mask = humidity[5:8] > 0.9
    assert table.num_rows == int(mask.sum()), "row count mismatch!"
    got = np.sort(table["PRES"])
    expected = np.sort(pressure[5:8][mask])
    assert np.allclose(got, expected), "values mismatch!"
    print("  hand-decoded oracle agrees:", table.num_rows, "rows, values equal")

    print("\nGenerated index function size:",
          len(v.generated_source.splitlines()), "lines for",
          NUM_MONTHS, "month files — none of it written by hand")
