#!/usr/bin/env python
"""Cancer-study MRI archive: lesion search across patient studies.

One of the paper's motivating applications (§2.2) is "cancer studies
using Magnetic Resonance Imaging".  An imaging archive stores raw 16-bit
volume files — one per modality per study — spread across archive nodes.
Virtualizing the archive turns "find hyper-intense lesion candidates in
every study" from a per-format script into one SQL query.

Run:  python examples/mri_lesion_search.py
"""

import tempfile
from collections import defaultdict

import numpy as np

from repro.core import ExecOptions, GeneratedDataset, Virtualizer, local_mount
from repro.datasets import mri
from repro.datasets.mri import MriConfig
from repro.storm import Catalog, VirtualCluster

# ---------------------------------------------------------------------------
# Generate the archive: 6 studies on 2 nodes, 3 modalities each.
# ---------------------------------------------------------------------------
config = MriConfig(num_studies=6, slices=10, rows=48, cols=48, num_nodes=2)
root = tempfile.mkdtemp(prefix="repro-mri-")
cluster = VirtualCluster.create(root, config.num_nodes, prefix="node")
print(f"Generating {config.num_studies} studies "
      f"({config.total_rows:,} voxels, {len(mri.MODALITIES)} modalities) "
      f"on {len(cluster)} archive nodes...")
descriptor, nbytes = mri.generate(config, cluster.mount())
print(f"  {nbytes / 1e6:.1f} MB of raw volume files "
      f"(e.g. node0/mri/study0/T1.vol)\n")

catalog = Catalog(cluster)
catalog.register(descriptor)

# A radiologist-facing view: only the fluid-sensitive modalities.
catalog.create_view(
    "Flair",
    "SELECT STUDY, SLICE, ROW, COL, T2, FLAIR FROM MriArchive",
)

# ---------------------------------------------------------------------------
# Archive-wide lesion screen.
# ---------------------------------------------------------------------------
threshold = 2000
screen = (
    f"SELECT STUDY, SLICE, ROW, COL, FLAIR FROM Flair "
    f"WHERE T2 > {threshold} AND FLAIR > {threshold}"
)
result = catalog.query(screen, ExecOptions(remote=False))
print(f"Screen: {screen}")
print("  ->", result.summary())

by_study = defaultdict(int)
for study in result.table["STUDY"]:
    by_study[int(study)] += 1
print("\nLesion-candidate voxels per study:")
for study in range(config.num_studies):
    count = by_study.get(study, 0)
    marker = "  <-- lesion" if config.has_lesion(study) else ""
    print(f"  study {study}: {count:5d} candidate voxels{marker}")

# ---------------------------------------------------------------------------
# Zoom into one study: per-slice lesion area (the tumour's extent).
# ---------------------------------------------------------------------------
study = next(s for s in range(config.num_studies) if config.has_lesion(s))
detail = catalog.query(mri.lesion_query(config, study), ExecOptions(remote=False)).table
print(f"\nStudy {study} lesion extent by slice:")
slices = defaultdict(int)
for s in detail["SLICE"]:
    slices[int(s)] += 1
for s in sorted(slices):
    bar = "#" * (slices[s] // 4 + 1)
    print(f"  slice {s:2d}: {slices[s]:4d} voxels {bar}")

center = config.lesion_center(study)
if detail.num_rows:
    centroid = (
        float(detail["SLICE"].mean()),
        float(detail["ROW"].mean()),
        float(detail["COL"].mean()),
    )
    print(f"\n  planted lesion centre : "
          f"({center[0]:.1f}, {center[1]:.1f}, {center[2]:.1f})")
    print(f"  recovered centroid    : "
          f"({centroid[0]:.1f}, {centroid[1]:.1f}, {centroid[2]:.1f})")

catalog.close()
