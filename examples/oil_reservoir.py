#!/usr/bin/env python
"""Oil reservoir management study over a virtual cluster (paper §2.2).

A study of several IPARS realizations, declustered over 4 nodes in the
application's original L0 layout (coordinates + one file per variable per
realization).  We reproduce the analysis scenarios the paper motivates:

* the Figure 1 example query (realization subset + time window +
  saturation threshold + Speed() filter);
* a "bypassed oil" search — cells with high oil saturation but almost
  stagnant flow between two time steps ("Find the largest bypassed oil
  regions between T1 and T2 in realization A");
* distributing the result tuples to 4 analysis clients, co-locating all
  time steps of each grid cell with hash partitioning.

Run:  python examples/oil_reservoir.py
"""

import tempfile
from collections import Counter

import numpy as np

from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import IparsConfig, ipars
from repro.storm import HashPartitioner, QueryService, VirtualCluster

# ---------------------------------------------------------------------------
# Generate the study: 4 realizations x 60 time steps on a 4-node cluster.
# ---------------------------------------------------------------------------
config = IparsConfig(num_rels=4, num_times=60, cells_per_node=800, num_nodes=4)
root = tempfile.mkdtemp(prefix="repro-oil-")
cluster = VirtualCluster.create(root, config.num_nodes)
print(f"Generating {config.total_rows:,} cell-states on {len(cluster)} nodes...")
descriptor, nbytes = ipars.generate(config, "L0", cluster.mount())
print(f"  {nbytes / 1e6:.1f} MB across {sum(1 for _ in cluster.nodes)} nodes, "
      f"layout L0 (1 coords file + 17 variable files per realization)\n")

dataset = GeneratedDataset(descriptor)
service = QueryService(dataset, cluster)

# ---------------------------------------------------------------------------
# The paper's Figure 1 query (adapted to this study's extents).
# ---------------------------------------------------------------------------
figure1 = (
    "SELECT * FROM IparsData WHERE REL in (0, 2) AND TIME >= 20 AND "
    "TIME <= 30 AND SOIL >= 0.7 AND SPEED(OILVX, OILVY, OILVZ) <= 10.0"
)
result = service.submit(figure1, ExecOptions(remote=False))
print("Figure 1 query:", figure1)
print("  ->", result.summary())

# ---------------------------------------------------------------------------
# Bypassed oil: high saturation, stagnant oil flow, late in the run.
# ---------------------------------------------------------------------------
bypassed_sql = (
    "SELECT X, Y, Z, TIME, SOIL FROM IparsData WHERE REL = 1 "
    "AND TIME >= 40 AND TIME <= 50 AND SOIL > 0.85 "
    "AND SPEED(OILVX, OILVY, OILVZ) < 2.0"
)
result = service.submit(bypassed_sql, ExecOptions(remote=False))
table = result.table
print("\nBypassed-oil candidates in realization 1, T in [40, 50]:")
print("  ->", result.summary())

if table.num_rows:
    # Group candidates into spatial regions (coarse 40-unit buckets) and
    # report the largest ones — the paper's example analysis question.
    buckets = Counter(
        (int(x) // 40, int(y) // 40, int(z) // 40)
        for x, y, z in zip(table["X"], table["Y"], table["Z"])
    )
    print("  largest candidate regions (40^3 buckets, candidate count):")
    for (bx, by, bz), count in buckets.most_common(5):
        print(f"    region ({bx}, {by}, {bz}): {count} cell-states")

# ---------------------------------------------------------------------------
# Ship per-cell time series to 4 analysis clients (hash on coordinates).
# ---------------------------------------------------------------------------
result = service.submit(
    "SELECT X, Y, Z, TIME, SOIL, PWAT FROM IparsData WHERE REL = 1 AND TIME <= 20",
    ExecOptions(
        num_clients=4,
        partitioner=HashPartitioner(["X", "Y", "Z"]),
        remote=True,
    ),
)
print("\nDistribution to 4 clients (hash on X, Y, Z):")
for delivery in result.deliveries:
    print(
        f"  client {delivery.client}: {delivery.table.num_rows:6d} rows, "
        f"{delivery.bytes_sent / 1e3:8.1f} KB, {delivery.messages} messages"
    )
print(f"  simulated end-to-end time: {result.simulated_seconds:.2f}s "
      f"(wall {result.wall_seconds:.3f}s)")

# Co-location check: every (X, Y, Z) cell's whole time series lands on
# exactly one client, so clients can analyse cells independently.
owner = {}
clash = 0
for delivery in result.deliveries:
    t = delivery.table
    for x, y, z in zip(t["X"], t["Y"], t["Z"]):
        key = (float(x), float(y), float(z))
        if owner.setdefault(key, delivery.client) != delivery.client:
            clash += 1
print(f"  cells split across clients: {clash} (hash partitioning keeps "
      "each cell's time series together)")

service.close()
