#!/usr/bin/env python
"""Quickstart: SQL over flat files you already have, in ~40 lines.

Scenario: a simulation wrote plain binary files — a coordinates file and
one per-timestep record file — and you want to query them as a table
WITHOUT loading them into a database or converting them to a new format.

1. Write the binary files exactly the way the "simulation" produced them
   (plain numpy, no repro involvement).
2. Describe the layout with a meta-data descriptor (the paper's three
   components: schema, storage, layout).
3. Ask SQL questions; the tool generates the index/extraction code.

Run:  python examples/quickstart.py
"""

import os
import tempfile

import numpy as np

from repro import Virtualizer, local_mount

# ---------------------------------------------------------------------------
# 1. The pre-existing flat files (simulating some instrument's output).
# ---------------------------------------------------------------------------
root = tempfile.mkdtemp(prefix="repro-quickstart-")
data_dir = os.path.join(root, "lab0", "run42")
os.makedirs(data_dir)

num_sensors, num_steps = 8, 50
positions = np.arange(num_sensors, dtype="<f4") * 2.5  # sensor positions
rng = np.random.default_rng(42)
readings = rng.normal(20.0, 5.0, (num_steps, num_sensors)).astype("<f4")

positions.tofile(os.path.join(data_dir, "positions.bin"))
readings.tofile(os.path.join(data_dir, "readings.bin"))  # step-major

# ---------------------------------------------------------------------------
# 2. The meta-data descriptor.
# ---------------------------------------------------------------------------
DESCRIPTOR = f"""
[EXPERIMENT]                  // the virtual table schema
STEP = int
POS = float
TEMP = float

[RunData]                     // where the dataset lives
DatasetDescription = EXPERIMENT
DIR[0] = lab0/run42

DATASET "RunData" {{
  DATATYPE {{ EXPERIMENT }}
  DATAINDEX {{ STEP }}        // STEP is implicit and prunable
  DATA {{ DATASET positions DATASET readings }}

  DATASET "positions" {{      // POS stored once, indexed by sensor id
    DATASPACE {{ LOOP SENSOR 0:{num_sensors - 1}:1 {{ POS }} }}
    DATA {{ DIR[0]/positions.bin }}
  }}

  DATASET "readings" {{       // TEMP per (step, sensor), step-major
    DATASPACE {{
      LOOP STEP 1:{num_steps}:1 {{
        LOOP SENSOR 0:{num_sensors - 1}:1 {{ TEMP }}
      }}
    }}
    DATA {{ DIR[0]/readings.bin }}
  }}
}}
"""

# ---------------------------------------------------------------------------
# 3. Query it.
# ---------------------------------------------------------------------------
with Virtualizer(DESCRIPTOR, local_mount(root)) as v:
    print("Schema:", ", ".join(v.schema.names))

    table = v.query(
        "SELECT STEP, POS, TEMP FROM RunData "
        "WHERE STEP BETWEEN 10 AND 12 AND TEMP > 22.0"
    )
    print(f"\nHot readings in steps 10-12 ({table.num_rows} rows):")
    for step, pos, temp in table.head(8):
        print(f"  step {step:3d}  pos {pos:5.1f}  temp {temp:6.2f}")

    print("\nQuery plan:")
    print(v.explain("SELECT TEMP FROM RunData WHERE STEP = 25"))

    print("\nFirst lines of the generated index function:")
    for line in v.generated_source.splitlines()[:12]:
        print("  " + line)
