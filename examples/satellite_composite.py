#!/usr/bin/env python
"""Satellite data processing: composite images from chunked sensor data.

Reproduces the Titan analysis scenario of paper §2.2: readings are stored
as space-time chunks with a spatial index; a query selects a rectangular
region and a time period; the analysis projects the selected readings onto
a 2-D grid and keeps the "best" (maximum) sensor value per grid cell — a
composite image.

The example shows the chunk-summary index at work (how many chunks a
spatial query touches versus the whole dataset) and splits the composite
computation across clients by X bands with range partitioning.

Run:  python examples/satellite_composite.py
"""

import tempfile

import numpy as np

from repro.core import ExecOptions, GeneratedDataset
from repro.datasets import TitanConfig, titan
from repro.index import build_summaries
from repro.storm import QueryService, RangePartitioner, VirtualCluster

# ---------------------------------------------------------------------------
# Generate a chunked satellite dataset and its spatial index.
# ---------------------------------------------------------------------------
config = TitanConfig(
    chunks_x=8, chunks_y=8, chunks_z=2, chunks_t=4,
    elems_per_chunk=400, num_nodes=2,
)
root = tempfile.mkdtemp(prefix="repro-titan-")
cluster = VirtualCluster.create(root, config.num_nodes)
print(f"Generating {config.total_rows:,} readings in "
      f"{config.total_chunks} space-time chunks on {len(cluster)} nodes...")
descriptor, nbytes = titan.generate(config, cluster.mount())

dataset = GeneratedDataset(descriptor)
print("Building the spatial chunk index (one-off scan)...")
summaries = build_summaries(dataset, cluster.mount())
dataset.summaries = summaries
service = QueryService(dataset, cluster)

# ---------------------------------------------------------------------------
# A region + time-period query (the canonical Titan workload).
# ---------------------------------------------------------------------------
x_hi, y_hi = config.extent[0] / 2, config.extent[1] / 2
t_hi = config.time_extent // 2
sql = (
    f"SELECT X, Y, S1, S2 FROM TitanData WHERE X >= 0 AND X <= {x_hi:.0f} "
    f"AND Y >= 0 AND Y <= {y_hi:.0f} AND TIME <= {t_hi}"
)
plan = dataset.plan(sql)
print(f"\nQuery: {sql}")
print(f"  spatial index: {len(plan.afcs)} of {config.total_chunks} chunks "
      "need to be read")

result = service.submit(sql, ExecOptions(remote=False))
table = result.table
print("  ->", result.summary())

# ---------------------------------------------------------------------------
# Composite image: best S1 per 16x16 grid cell over the study period.
# ---------------------------------------------------------------------------
GRID = 16
gx = np.clip((table["X"] / x_hi * GRID).astype(int), 0, GRID - 1)
gy = np.clip((table["Y"] / y_hi * GRID).astype(int), 0, GRID - 1)
composite = np.zeros((GRID, GRID), dtype=np.float32)
np.maximum.at(composite, (gy, gx), table["S1"])

print(f"\nComposite image ({GRID}x{GRID}, best S1 per cell; '#' = high):")
levels = " .:-=+*#"
for row in composite[::-1]:
    line = "".join(
        levels[min(int(v * len(levels)), len(levels) - 1)] for v in row
    )
    print("  " + line)

# ---------------------------------------------------------------------------
# Parallel composite: range-partition by X bands across 4 clients.
# ---------------------------------------------------------------------------
boundaries = [x_hi * f for f in (0.25, 0.5, 0.75)]
result = service.submit(
    sql,
    ExecOptions(
        num_clients=4,
        partitioner=RangePartitioner("X", boundaries),
        remote=True,
    ),
)
print("\nRange partitioning by X band for 4 composite workers:")
for delivery in result.deliveries:
    x = delivery.table["X"]
    band = f"[{x.min():8.1f}, {x.max():8.1f}]" if len(x) else "(empty)"
    print(f"  client {delivery.client}: {delivery.table.num_rows:6d} rows, "
          f"X in {band}")
print(f"  transfer: {result.total_stats.bytes_sent / 1e3:.1f} KB, "
      f"simulated {result.simulated_seconds:.2f}s")

service.close()
