"""repro — automatic data virtualization for flat-file scientific datasets.

A faithful, self-contained reproduction of "An Approach for Automatic Data
Virtualization" (HPDC 2004): a meta-data description language for
multi-dimensional datasets stored as flat files across cluster nodes, a
compiler that generates index/extraction functions from descriptors, and a
STORM-style service runtime that answers SQL (SELECT/WHERE) queries with
virtual relational tables.

Quickstart::

    import repro

    with repro.connect("local:///data", descriptor=descriptor_text) as db:
        table = db.query("SELECT X, Y, SOIL FROM IparsData WHERE TIME > 100")

The same ``connect`` reaches a real multi-process cluster through
``tcp://host:port,...`` URLs (see ``repro serve`` / ``repro cluster``).
See README.md for the architecture and DESIGN.md for the paper mapping.
"""

from .client import Client, connect
from .core import (
    AlignedFileChunkSet,
    ChunkRef,
    CompiledDataset,
    ExecOptions,
    ExtractionPlan,
    Extractor,
    GeneratedDataset,
    IOStats,
    VirtualTable,
    Virtualizer,
    local_mount,
    open_dataset,
)
from .core.extractor import Mount
from .diag import (
    Collector,
    Diagnostic,
    Severity,
    Span,
    analyze_options,
    analyze_query,
    lint_descriptor,
    lint_text,
)
from .errors import (
    AdmissionError,
    CodegenError,
    ExtractionError,
    FaultSpecError,
    InjectedFault,
    MetadataError,
    MetadataSyntaxError,
    MetadataValidationError,
    NodeFailureError,
    NodeTimeoutError,
    PlanningError,
    QueryCancelledError,
    QueryError,
    QuerySyntaxError,
    QueryValidationError,
    QuotaExceededError,
    ReproError,
    RowStoreError,
    SchedulerError,
    SchemaError,
    StormError,
)
from .faults import FaultInjector, FaultRule
from .metadata import Descriptor, Schema, parse_descriptor
from .obs import (
    MetricsRegistry,
    Tracer,
    tree_summary,
    write_chrome_trace,
)
from .sched import QueryHandle, Scheduler
from .sql import FunctionRegistry, Query, filter_function, parse_query
from .storm import (
    CostModel,
    QueryResult,
    QueryService,
    VirtualCluster,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "AlignedFileChunkSet",
    "ChunkRef",
    "Client",
    "CodegenError",
    "Collector",
    "CompiledDataset",
    "CostModel",
    "Descriptor",
    "Diagnostic",
    "ExecOptions",
    "ExtractionError",
    "ExtractionPlan",
    "Extractor",
    "FaultInjector",
    "FaultRule",
    "FaultSpecError",
    "FunctionRegistry",
    "GeneratedDataset",
    "IOStats",
    "InjectedFault",
    "MetadataError",
    "MetadataSyntaxError",
    "MetadataValidationError",
    "MetricsRegistry",
    "Mount",
    "NodeFailureError",
    "NodeTimeoutError",
    "PlanningError",
    "Query",
    "QueryCancelledError",
    "QueryError",
    "QueryHandle",
    "QueryResult",
    "QueryService",
    "QuerySyntaxError",
    "QueryValidationError",
    "QuotaExceededError",
    "ReproError",
    "RowStoreError",
    "Scheduler",
    "SchedulerError",
    "Schema",
    "SchemaError",
    "Severity",
    "Span",
    "StormError",
    "Tracer",
    "VirtualCluster",
    "VirtualTable",
    "Virtualizer",
    "analyze_options",
    "analyze_query",
    "connect",
    "filter_function",
    "lint_descriptor",
    "lint_text",
    "local_mount",
    "open_dataset",
    "parse_descriptor",
    "parse_query",
    "tree_summary",
    "write_chrome_trace",
]
