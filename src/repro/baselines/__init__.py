"""Baselines the paper compares against: a PostgreSQL-like row store and
hand-written index/extractor functions for the two applications."""

from .btree import BTreeIndex
from .handwritten_ipars import HandwrittenIparsL0
from .handwritten_titan import HandwrittenTitan
from .pages import PAGE_SIZE, HeapLayout, encode_pages
from .rowstore import INDEX_SCAN_THRESHOLD, MiniRowStore, ScanChoice, TableInfo

__all__ = [
    "BTreeIndex",
    "HandwrittenIparsL0",
    "HandwrittenTitan",
    "HeapLayout",
    "INDEX_SCAN_THRESHOLD",
    "MiniRowStore",
    "PAGE_SIZE",
    "ScanChoice",
    "TableInfo",
    "encode_pages",
]
