"""Secondary index of the baseline row store.

A read-only B-tree equivalent: the (key, tid) pairs are kept fully sorted
and queried with binary search.  For a bulk-loaded, never-updated index
this is exactly what a B-tree's leaf level looks like, and the page-count
arithmetic (how many 8 KiB index pages a range scan touches) matches a
real B-tree with the same fanout — which is all the cost model needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.stats import IOStats
from ..errors import RowStoreError
from ..sql.ranges import Interval, IntervalSet
from .pages import PAGE_SIZE

#: (key f8 + tid u8) = 16 bytes; ~8 KiB pages minus header.
_ENTRIES_PER_PAGE = (PAGE_SIZE - 24) // 16


@dataclass
class BTreeIndex:
    """Sorted (key, tid) arrays standing in for a bulk-loaded B-tree."""

    column: str
    keys: np.ndarray  # float64, ascending
    tids: np.ndarray  # uint64, aligned with keys

    @classmethod
    def build(cls, column: str, values: np.ndarray, tids: np.ndarray) -> "BTreeIndex":
        values = np.asarray(values, dtype=np.float64)
        tids = np.asarray(tids, dtype=np.uint64)
        if values.shape != tids.shape:
            raise RowStoreError("index keys and tids must align")
        order = np.argsort(values, kind="stable")
        return cls(column, values[order], tids[order])

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def height(self) -> int:
        """Levels of the equivalent B-tree (for seek accounting)."""
        n = max(len(self.keys), 1)
        leaves = max(1, -(-n // _ENTRIES_PER_PAGE))
        return max(1, 1 + math.ceil(math.log(leaves, max(_ENTRIES_PER_PAGE, 2))))

    @property
    def size_bytes(self) -> int:
        leaves = -(-max(len(self.keys), 1) // _ENTRIES_PER_PAGE)
        internal = max(1, leaves // _ENTRIES_PER_PAGE)
        return (leaves + internal) * PAGE_SIZE

    # -- queries -------------------------------------------------------------

    def _interval_slice(self, interval: Interval) -> Tuple[int, int]:
        lo_side = "right" if interval.lo_open else "left"
        hi_side = "left" if interval.hi_open else "right"
        start = (
            0
            if interval.lo == -math.inf
            else int(np.searchsorted(self.keys, interval.lo, side=lo_side))
        )
        stop = (
            len(self.keys)
            if interval.hi == math.inf
            else int(np.searchsorted(self.keys, interval.hi, side=hi_side))
        )
        return start, max(start, stop)

    def estimate_selectivity(self, allowed: IntervalSet) -> float:
        """Fraction of entries inside the interval set (exact, since we
        hold the sorted keys — a real planner's histogram estimates this)."""
        if not len(self.keys):
            return 0.0
        total = 0
        for interval in allowed.intervals:
            start, stop = self._interval_slice(interval)
            total += stop - start
        return min(1.0, total / len(self.keys))

    def search(
        self, allowed: IntervalSet, stats: Optional[IOStats] = None
    ) -> np.ndarray:
        """Tids of entries within the interval set, sorted by tid.

        Sorting by tid converts the random fetch list into an ascending
        page walk (PostgreSQL's bitmap heap scan does the same).
        """
        hits: List[np.ndarray] = []
        pages_touched = 0
        for interval in allowed.intervals:
            start, stop = self._interval_slice(interval)
            if stop > start:
                hits.append(self.tids[start:stop])
                pages_touched += -(-(stop - start) // _ENTRIES_PER_PAGE)
        if stats is not None:
            descents = max(1, len(allowed.intervals))
            stats.seeks += self.height * descents
            stats.read_calls += pages_touched + self.height
            stats.bytes_read += (pages_touched + self.height) * PAGE_SIZE
        if not hits:
            return np.empty(0, dtype=np.uint64)
        out = np.concatenate(hits)
        out.sort()
        return out
