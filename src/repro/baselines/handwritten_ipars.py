"""Hand-written index/extraction functions for the IPARS L0 layout.

The paper compares its generated code against index and extractor
functions written by hand for STORM (Figures 9-11).  This module is that
baseline: it is coded directly against the concrete L0 byte layout —
coordinates in ``COORDS``, one file per (state variable, realization) —
with no meta-data, no descriptor parsing, and no generality.  Every
constant below was "worked out on paper" the way an application developer
would, which is exactly the labour the paper's tool eliminates.

The produced aligned file chunks feed the same extraction executor as the
generated code, so benchmark differences measure the index-function and
plan-construction overhead of the automatic approach.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..core.afc import AlignedFileChunkSet, ChunkRef, ExtractionPlan, InnerVar
from ..core.strips import LoopDim, Strip
from ..datasets.ipars import STATE_VARS, IparsConfig
from ..errors import QueryValidationError
from ..sql.ast import Query
from ..sql.parser import parse_query
from ..sql.ranges import RangeMap, extract_ranges, query_is_unsatisfiable

_FLOAT = "<f4"


class HandwrittenIparsL0:
    """Hand-coded planner for the original (L0) IPARS layout."""

    #: Virtual table column order, fixed by the application's schema.
    COLUMNS = ("REL", "TIME", "X", "Y", "Z") + STATE_VARS

    def __init__(self, config: IparsConfig):
        self.config = config
        cells = config.cells_per_node
        # One coords strip and one per-variable strip per node, built by
        # hand: X/Y/Z tuples of 12 bytes; each variable file is TIME-major
        # with one 4-byte value per cell.
        self._coords_strips: List[Strip] = []
        self._var_strips: List[Dict[str, Strip]] = []
        for dirid in range(config.num_nodes):
            grid_lo = dirid * cells + 1
            grid_hi = (dirid + 1) * cells
            self._coords_strips.append(
                Strip(
                    leaf_name="hand_coords",
                    strip_index=0,
                    attrs=("X", "Y", "Z"),
                    attr_offsets=(0, 4, 8),
                    attr_formats=(_FLOAT, _FLOAT, _FLOAT),
                    record_size=12,
                    base_offset=0,
                    dims=(LoopDim("GRID", grid_lo, grid_hi, 1, 12),),
                )
            )
            per_var = {}
            for name in STATE_VARS:
                per_var[name] = Strip(
                    leaf_name=f"hand_{name}",
                    strip_index=0,
                    attrs=(name,),
                    attr_offsets=(0,),
                    attr_formats=(_FLOAT,),
                    record_size=4,
                    base_offset=0,
                    dims=(
                        LoopDim("TIME", 1, config.num_times, 1, cells * 4),
                        LoopDim("GRID", grid_lo, grid_hi, 1, 4),
                    ),
                )
            self._var_strips.append(per_var)

    # -- the hand-written index function -----------------------------------------

    def index(self, ranges: RangeMap) -> List[AlignedFileChunkSet]:
        config = self.config
        cells = config.cells_per_node
        rel_allowed = ranges.get("REL")
        time_allowed = ranges.get("TIME")
        afcs: List[AlignedFileChunkSet] = []
        for dirid in range(config.num_nodes):
            node = f"osu{dirid}"
            grid_lo = dirid * cells + 1
            grid_allowed = ranges.get("GRID")
            if grid_allowed is not None and not grid_allowed.overlaps_range(
                grid_lo, grid_lo + cells - 1
            ):
                continue
            coords_strip = self._coords_strips[dirid]
            inner = (InnerVar("GRID", grid_lo, 1, cells, 1),)
            for rel in range(config.num_rels):
                if rel_allowed is not None and not rel_allowed.contains(rel):
                    continue
                for time in range(1, config.num_times + 1):
                    if time_allowed is not None and not time_allowed.contains(
                        time
                    ):
                        continue
                    offset = (time - 1) * cells * 4
                    chunks = [
                        ChunkRef(
                            node,
                            f"{config.dirname}/COORDS",
                            0,
                            12,
                            coords_strip,
                        )
                    ]
                    for name in STATE_VARS:
                        chunks.append(
                            ChunkRef(
                                node,
                                f"{config.dirname}/{name}{rel}",
                                offset,
                                4,
                                self._var_strips[dirid][name],
                            )
                        )
                    afcs.append(
                        AlignedFileChunkSet(
                            num_rows=cells,
                            chunks=tuple(chunks),
                            constants=(
                                ("DIRID", dirid),
                                ("REL", rel),
                                ("TIME", time),
                            ),
                            inner_vars=inner,
                        )
                    )
        return afcs

    # -- planning (same contract as CompiledDataset) ---------------------------------

    def plan(self, sql: Union[Query, str]) -> ExtractionPlan:
        query = parse_query(sql) if isinstance(sql, str) else sql
        output = query.projected_names(self.COLUMNS)
        needed = list(output)
        for name in query.referenced_columns():
            if name not in self.COLUMNS:
                raise QueryValidationError(f"unknown attribute {name!r}")
            if name not in needed:
                needed.append(name)
        ranges = extract_ranges(query.where)
        dtypes = self._dtypes()
        if query_is_unsatisfiable(ranges):
            return ExtractionPlan([], needed, output, query.where, dtypes)
        return ExtractionPlan(
            self.index(ranges), needed, output, query.where, dtypes
        )

    @staticmethod
    def _dtypes() -> Dict[str, np.dtype]:
        dtypes: Dict[str, np.dtype] = {
            "REL": np.dtype("<i2"),
            "TIME": np.dtype("<i4"),
        }
        for name in ("X", "Y", "Z") + STATE_VARS:
            dtypes[name] = np.dtype(_FLOAT)
        return dtypes
