"""Hand-written index/extraction functions for the chunked Titan layout.

The counterpart of :mod:`.handwritten_ipars` for the satellite dataset:
a chunk-per-AFC planner coded directly against the concrete byte layout
(36-byte records, ``elems_per_chunk`` records per chunk, chunks
consecutive in one file per node), consulting the persisted chunk
summaries the way the original application consulted its spatial index.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..core.afc import AlignedFileChunkSet, ChunkRef, ExtractionPlan, InnerVar
from ..core.strips import LoopDim, Strip
from ..datasets.titan import SENSORS, TitanConfig
from ..errors import QueryValidationError
from ..index.summaries import MinMaxSummaries
from ..sql.ast import Query
from ..sql.parser import parse_query
from ..sql.ranges import Interval, RangeMap, extract_ranges, query_is_unsatisfiable

_RECORD = 4 + 4 * (3 + len(SENSORS))  # TIME + X/Y/Z + sensors, packed


class HandwrittenTitan:
    """Hand-coded planner for the chunked Titan layout."""

    COLUMNS = ("TIME", "X", "Y", "Z") + SENSORS
    INDEXED = ("X", "Y", "Z", "TIME")

    def __init__(
        self, config: TitanConfig, summaries: Optional[MinMaxSummaries] = None
    ):
        self.config = config
        self.summaries = summaries
        k = config.elems_per_chunk
        attrs = self.COLUMNS
        offsets = tuple(4 * i for i in range(len(attrs)))
        formats = ("<i4",) + ("<f4",) * (len(attrs) - 1)
        self._strips: List[Strip] = []
        per_node = config.chunks_per_node
        for dirid in range(config.num_nodes):
            first = dirid * per_node
            self._strips.append(
                Strip(
                    leaf_name="hand_titan",
                    strip_index=0,
                    attrs=attrs,
                    attr_offsets=offsets,
                    attr_formats=formats,
                    record_size=_RECORD,
                    base_offset=0,
                    dims=(
                        LoopDim("CHUNK", first, first + per_node - 1, 1, k * _RECORD),
                        LoopDim("ELEM", 0, k - 1, 1, _RECORD),
                    ),
                )
            )

    def index(self, ranges: RangeMap) -> List[AlignedFileChunkSet]:
        config = self.config
        k = config.elems_per_chunk
        per_node = config.chunks_per_node
        inner = (InnerVar("ELEM", 0, 1, k, 1),)
        afcs: List[AlignedFileChunkSet] = []
        constrained = [a for a in self.INDEXED if a in ranges]
        for dirid in range(config.num_nodes):
            node = f"osu{dirid}"
            path = f"{config.dirname}/chunks.bin"
            strip = self._strips[dirid]
            first = dirid * per_node
            for chunk in range(first, first + per_node):
                offset = (chunk - first) * k * _RECORD
                if constrained and self.summaries is not None:
                    bounds = self.summaries.bounds((node, path, offset))
                    if bounds is not None and any(
                        attr in bounds
                        and not ranges[attr].overlaps_interval(
                            Interval(bounds[attr][0], bounds[attr][1])
                        )
                        for attr in constrained
                    ):
                        continue
                afcs.append(
                    AlignedFileChunkSet(
                        num_rows=k,
                        chunks=(ChunkRef(node, path, offset, _RECORD, strip),),
                        constants=(("CHUNK", chunk), ("DIRID", dirid)),
                        inner_vars=inner,
                    )
                )
        return afcs

    def plan(self, sql: Union[Query, str]) -> ExtractionPlan:
        query = parse_query(sql) if isinstance(sql, str) else sql
        output = query.projected_names(self.COLUMNS)
        needed = list(output)
        for name in query.referenced_columns():
            if name not in self.COLUMNS:
                raise QueryValidationError(f"unknown attribute {name!r}")
            if name not in needed:
                needed.append(name)
        ranges = extract_ranges(query.where)
        dtypes: Dict[str, np.dtype] = {"TIME": np.dtype("<i4")}
        for name in self.COLUMNS[1:]:
            dtypes[name] = np.dtype("<f4")
        if query_is_unsatisfiable(ranges):
            return ExtractionPlan([], needed, output, query.where, dtypes)
        return ExtractionPlan(
            self.index(ranges), needed, output, query.where, dtypes
        )
