"""Heap-page storage format of the baseline relational row store.

The layout mimics the storage characteristics of a 2004-era PostgreSQL
heap, because those characteristics — not the query optimiser — produce
Figure 6's shape:

* fixed 8 KiB pages with a 24-byte page header;
* a 4-byte line pointer per tuple;
* a 24-byte tuple header (transaction visibility fields we fake);
* every attribute stored as an 8-byte datum (pass-by-value widening),
  so a packed 36-byte Titan record becomes a ~100-byte heap tuple.

The resulting ~3x blow-up over the raw flat files matches the paper's
measurement (6 GB raw -> 18 GB loaded).  All encode/decode paths are
vectorised with strided numpy views; per-tuple CPU overhead is charged by
the *cost model*, not burned in Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import RowStoreError

PAGE_SIZE = 8192
PAGE_HEADER = 24
LINE_POINTER = 4
TUPLE_HEADER = 24
DATUM = 8

#: Fake transaction id written into every tuple header's xmin field.
FROZEN_XID = 2


@dataclass(frozen=True)
class HeapLayout:
    """Derived geometry of a table's heap pages."""

    num_columns: int

    @property
    def tuple_bytes(self) -> int:
        return TUPLE_HEADER + DATUM * self.num_columns

    @property
    def tuples_per_page(self) -> int:
        usable = PAGE_SIZE - PAGE_HEADER
        per_tuple = self.tuple_bytes + LINE_POINTER
        count = usable // per_tuple
        if count < 1:
            raise RowStoreError(
                f"{self.num_columns} columns do not fit in one page"
            )
        return count

    @property
    def data_start(self) -> int:
        """Offset of the first tuple within a page."""
        return PAGE_HEADER + LINE_POINTER * self.tuples_per_page

    def num_pages(self, num_rows: int) -> int:
        return -(-num_rows // self.tuples_per_page) if num_rows else 0

    def heap_bytes(self, num_rows: int) -> int:
        return self.num_pages(num_rows) * PAGE_SIZE

    def tuple_dtype(self, names: Sequence[str]) -> np.dtype:
        """Structured dtype decoding one heap tuple (datums are f8/i8)."""
        return np.dtype(
            {
                "names": list(names),
                "formats": ["<f8"] * len(names),
                "offsets": [TUPLE_HEADER + DATUM * i for i in range(len(names))],
                "itemsize": self.tuple_bytes,
            }
        )


def tid(page: np.ndarray, slot: np.ndarray) -> np.ndarray:
    """Tuple identifier packing (page number, slot)."""
    return (np.asarray(page, dtype=np.uint64) << np.uint64(16)) | np.asarray(
        slot, dtype=np.uint64
    )


def tid_page(tids: np.ndarray) -> np.ndarray:
    return (np.asarray(tids, dtype=np.uint64) >> np.uint64(16)).astype(np.int64)


def tid_slot(tids: np.ndarray) -> np.ndarray:
    return (np.asarray(tids, dtype=np.uint64) & np.uint64(0xFFFF)).astype(np.int64)


def encode_pages(
    columns: Dict[str, np.ndarray], names: Sequence[str]
) -> bytes:
    """Pack columns into heap pages; returns the heap file payload."""
    layout = HeapLayout(len(names))
    num_rows = len(columns[names[0]]) if names else 0
    num_pages = layout.num_pages(num_rows)
    buf = bytearray(num_pages * PAGE_SIZE)
    per_page = layout.tuples_per_page

    # Page headers: lower/upper pointers + checksum placeholder.
    header = np.ndarray(
        shape=(num_pages, 3),
        dtype="<u4",
        buffer=buf,
        strides=(PAGE_SIZE, 4),
    )
    if num_pages:
        header[:, 0] = layout.data_start
        header[:, 1] = PAGE_SIZE
        header[:, 2] = FROZEN_XID

    # Column datums, written with one strided assignment per column: the
    # global row index r lives on page r // per_page at slot r % per_page.
    full_rows = (num_rows // per_page) * per_page
    for ci, name in enumerate(names):
        data = np.asarray(columns[name], dtype=np.float64)
        offset = layout.data_start + TUPLE_HEADER + DATUM * ci
        if full_rows:
            view = np.ndarray(
                shape=(num_rows // per_page, per_page),
                dtype="<f8",
                buffer=buf,
                offset=offset,
                strides=(PAGE_SIZE, layout.tuple_bytes),
            )
            view[...] = data[:full_rows].reshape(-1, per_page)
        tail = num_rows - full_rows
        if tail:
            view = np.ndarray(
                shape=(tail,),
                dtype="<f8",
                buffer=buf,
                offset=(num_rows // per_page) * PAGE_SIZE + offset,
                strides=(layout.tuple_bytes,),
            )
            view[...] = data[full_rows:]

    # Tuple headers: xmin field for every live tuple.
    if num_pages:
        xmin = np.ndarray(
            shape=(num_pages, per_page),
            dtype="<u4",
            buffer=buf,
            offset=layout.data_start,
            strides=(PAGE_SIZE, layout.tuple_bytes),
        )
        xmin[...] = FROZEN_XID
    return bytes(buf)


def decode_pages(
    payload: bytes,
    layout: HeapLayout,
    names: Sequence[str],
    num_rows: int,
    first_page: int = 0,
) -> Dict[str, np.ndarray]:
    """Decode a run of heap pages back into float64 columns.

    ``num_rows`` is the number of live tuples in the decoded run (the last
    page of a table may be partial).  ``first_page`` is the page number of
    ``payload[0]`` within the table, used to compute the partial-page
    boundary.
    """
    per_page = layout.tuples_per_page
    num_pages = len(payload) // PAGE_SIZE
    if len(payload) % PAGE_SIZE:
        raise RowStoreError("heap payload is not page aligned")
    out: Dict[str, List[np.ndarray]] = {}
    dtype = layout.tuple_dtype(names)
    arrays: Dict[str, np.ndarray] = {}
    for ci, name in enumerate(names):
        offset = layout.data_start + TUPLE_HEADER + DATUM * ci
        view = np.ndarray(
            shape=(num_pages, per_page),
            dtype="<f8",
            buffer=payload,
            offset=offset,
            strides=(PAGE_SIZE, layout.tuple_bytes),
        )
        flat = view.reshape(-1)
        arrays[name] = flat[:num_rows]
    return arrays
