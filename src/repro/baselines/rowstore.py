"""The baseline relational engine standing in for PostgreSQL (Figure 6).

A minimal read-only row store with the pieces that determine the paper's
comparison:

* a *loader* that converts a virtual table into heap pages (~3x storage
  blow-up, measured and reported — the paper loaded 6 GB of Titan data
  into 18 GB of database);
* optional B-tree secondary indexes;
* a planner choosing between a sequential heap scan and a bitmap-style
  index scan by estimated selectivity;
* operation counting compatible with the STORM cost model, plus the
  row-store cost model's higher per-tuple CPU constants.

The SQL dialect is the same SELECT/WHERE subset, so identical query
strings run against both systems (only the table name differs).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.stats import IOStats
from ..core.table import VirtualTable
from ..errors import RowStoreError
from ..sql.ast import Query
from ..sql.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..sql.parser import parse_query
from ..sql.ranges import extract_ranges, query_is_unsatisfiable
from .btree import BTreeIndex
from .pages import PAGE_SIZE, HeapLayout, encode_pages, tid, tid_page, tid_slot

#: Index scans win only for selective predicates; beyond this fraction the
#: random page fetches cost more than one sequential pass.
INDEX_SCAN_THRESHOLD = 0.08

#: Sequential scans stream this many pages per read call.
SCAN_BATCH_PAGES = 512


@dataclass
class TableInfo:
    name: str
    columns: List[str]
    num_rows: int
    heap_path: str
    layout: HeapLayout
    indexes: Dict[str, BTreeIndex] = field(default_factory=dict)

    @property
    def heap_bytes(self) -> int:
        return self.layout.heap_bytes(self.num_rows)

    @property
    def total_bytes(self) -> int:
        return self.heap_bytes + sum(i.size_bytes for i in self.indexes.values())


@dataclass
class ScanChoice:
    """The planner's decision for one query (reported by EXPLAIN)."""

    method: str  # 'seqscan' | 'indexscan' | 'empty'
    index_column: Optional[str] = None
    estimated_selectivity: float = 1.0

    def __str__(self) -> str:
        if self.method == "indexscan":
            return (
                f"Index Scan on {self.index_column} "
                f"(selectivity {self.estimated_selectivity:.4f})"
            )
        return {"seqscan": "Seq Scan", "empty": "Result (no rows)"}[self.method]


class MiniRowStore:
    """A directory of heap files + index files, queryable with the SQL subset."""

    def __init__(
        self, root: str, functions: Optional[FunctionRegistry] = None
    ):
        self.root = root
        self.functions = functions or DEFAULT_REGISTRY
        self.tables: Dict[str, TableInfo] = {}
        os.makedirs(root, exist_ok=True)
        self._load_catalog()

    # -- loading ----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        table: VirtualTable,
        indexes: Sequence[str] = (),
    ) -> TableInfo:
        """Load a table; returns its info (including on-disk size)."""
        if name in self.tables:
            raise RowStoreError(f"table {name!r} already exists")
        columns = list(table.column_names)
        layout = HeapLayout(len(columns))
        heap_path = os.path.join(self.root, f"{name}.heap")
        payload = encode_pages(
            {c: table.column(c) for c in columns}, columns
        )
        with open(heap_path, "wb") as handle:
            handle.write(payload)
        info = TableInfo(name, columns, table.num_rows, heap_path, layout)
        per_page = layout.tuples_per_page
        rows = np.arange(table.num_rows)
        tids = tid(rows // per_page, rows % per_page)
        for column in indexes:
            if column not in columns:
                raise RowStoreError(
                    f"cannot index unknown column {column!r} on {name!r}"
                )
            index = BTreeIndex.build(column, table.column(column), tids)
            info.indexes[column] = index
            np.savez(
                os.path.join(self.root, f"{name}.{column}.idx"),
                keys=index.keys,
                tids=index.tids,
            )
        self.tables[name] = info
        self._save_catalog()
        return info

    def drop_table(self, name: str) -> None:
        info = self.tables.pop(name, None)
        if info is None:
            return
        if os.path.exists(info.heap_path):
            os.remove(info.heap_path)
        for column in info.indexes:
            path = os.path.join(self.root, f"{name}.{column}.idx.npz")
            if os.path.exists(path):
                os.remove(path)
        self._save_catalog()

    # -- catalog persistence -------------------------------------------------------

    def _catalog_path(self) -> str:
        return os.path.join(self.root, "catalog.json")

    def _save_catalog(self) -> None:
        payload = {
            name: {
                "columns": info.columns,
                "num_rows": info.num_rows,
                "indexes": list(info.indexes),
            }
            for name, info in self.tables.items()
        }
        with open(self._catalog_path(), "w") as handle:
            json.dump(payload, handle)

    def _load_catalog(self) -> None:
        path = self._catalog_path()
        if not os.path.exists(path):
            return
        with open(path) as handle:
            payload = json.load(handle)
        for name, meta in payload.items():
            info = TableInfo(
                name,
                list(meta["columns"]),
                int(meta["num_rows"]),
                os.path.join(self.root, f"{name}.heap"),
                HeapLayout(len(meta["columns"])),
            )
            for column in meta["indexes"]:
                data = np.load(os.path.join(self.root, f"{name}.{column}.idx.npz"))
                info.indexes[column] = BTreeIndex(
                    column, data["keys"], data["tids"]
                )
            self.tables[name] = info

    # -- planning ----------------------------------------------------------------

    def table(self, name: str) -> TableInfo:
        try:
            return self.tables[name]
        except KeyError:
            raise RowStoreError(
                f"no table {name!r}; have {sorted(self.tables)}"
            ) from None

    def choose_scan(self, info: TableInfo, query: Query) -> ScanChoice:
        ranges = extract_ranges(query.where)
        if query_is_unsatisfiable(ranges):
            return ScanChoice("empty")
        best: Optional[Tuple[float, str]] = None
        for column, allowed in ranges.items():
            index = info.indexes.get(column)
            if index is None or allowed.is_full():
                continue
            selectivity = index.estimate_selectivity(allowed)
            if best is None or selectivity < best[0]:
                best = (selectivity, column)
        if best is not None and best[0] <= INDEX_SCAN_THRESHOLD:
            return ScanChoice("indexscan", best[1], best[0])
        return ScanChoice("seqscan")

    def explain(self, sql: Union[Query, str]) -> str:
        query = parse_query(sql) if isinstance(sql, str) else sql
        info = self.table(query.table)
        return str(self.choose_scan(info, query))

    # -- execution ------------------------------------------------------------------

    def query(
        self, sql: Union[Query, str], stats: Optional[IOStats] = None
    ) -> VirtualTable:
        query = parse_query(sql) if isinstance(sql, str) else sql
        info = self.table(query.table)
        stats = stats if stats is not None else IOStats()
        output = query.projected_names(info.columns)
        needed = list(output)
        for name in query.referenced_columns():
            if name not in info.columns:
                raise RowStoreError(
                    f"unknown column {name!r} in WHERE "
                    f"(table has {info.columns})"
                )
            if name not in needed:
                needed.append(name)
        choice = self.choose_scan(info, query)
        if choice.method == "empty":
            return VirtualTable(
                {n: np.empty(0, dtype=np.float64) for n in output}, order=output
            )
        if choice.method == "indexscan":
            columns = self._index_scan(info, query, needed, choice, stats)
        else:
            columns = self._seq_scan(info, needed, stats)
        return self._finish(query, columns, output, stats)

    def _seq_scan(
        self, info: TableInfo, needed: List[str], stats: IOStats
    ) -> Dict[str, np.ndarray]:
        layout = info.layout
        per_page = layout.tuples_per_page
        pieces: Dict[str, List[np.ndarray]] = {n: [] for n in needed}
        stats.files_opened += 1
        stats.seeks += 1
        remaining = info.num_rows
        with open(info.heap_path, "rb") as handle:
            page_no = 0
            while remaining > 0:
                payload = handle.read(SCAN_BATCH_PAGES * PAGE_SIZE)
                if not payload:
                    raise RowStoreError(
                        f"heap file {info.heap_path!r} truncated"
                    )
                stats.read_calls += 1
                stats.bytes_read += len(payload)
                batch_pages = len(payload) // PAGE_SIZE
                rows_here = min(remaining, batch_pages * per_page)
                decoded = _decode_batch(payload, layout, info.columns, needed, rows_here)
                for name in needed:
                    pieces[name].append(decoded[name])
                remaining -= rows_here
                page_no += batch_pages
        stats.rows_extracted += info.num_rows
        return {
            n: (
                np.concatenate(pieces[n])
                if pieces[n]
                else np.empty(0, dtype=np.float64)
            )
            for n in needed
        }

    def _index_scan(
        self,
        info: TableInfo,
        query: Query,
        needed: List[str],
        choice: ScanChoice,
        stats: IOStats,
    ) -> Dict[str, np.ndarray]:
        ranges = extract_ranges(query.where)
        index = info.indexes[choice.index_column]
        tids = index.search(ranges[choice.index_column], stats)
        pages = tid_page(tids)
        slots = tid_slot(tids)
        layout = info.layout
        stats.files_opened += 1
        pieces: Dict[str, List[np.ndarray]] = {n: [] for n in needed}
        with open(info.heap_path, "rb") as handle:
            # Bitmap-style fetch: ascending distinct pages, decode only the
            # tuples the index matched.
            unique_pages, page_starts = np.unique(pages, return_index=True)
            for i, page in enumerate(unique_pages):
                start = page_starts[i]
                stop = page_starts[i + 1] if i + 1 < len(unique_pages) else len(tids)
                handle.seek(int(page) * PAGE_SIZE)
                payload = handle.read(PAGE_SIZE)
                stats.seeks += 1
                stats.read_calls += 1
                stats.bytes_read += len(payload)
                rows_on_page = min(
                    layout.tuples_per_page,
                    info.num_rows - int(page) * layout.tuples_per_page,
                )
                decoded = _decode_batch(payload, layout, info.columns, needed, rows_on_page)
                page_slots = slots[start:stop]
                for name in needed:
                    pieces[name].append(decoded[name][page_slots])
        stats.rows_extracted += len(tids)
        if not tids.size:
            return {n: np.empty(0, dtype=np.float64) for n in needed}
        return {n: np.concatenate(pieces[n]) for n in needed}

    def _finish(
        self,
        query: Query,
        columns: Dict[str, np.ndarray],
        output: List[str],
        stats: IOStats,
    ) -> VirtualTable:
        if query.where is not None:
            mask = np.asarray(query.where.evaluate(columns, self.functions))
            if mask.ndim == 0:
                if not bool(mask):
                    columns = {n: columns[n][:0] for n in output}
            else:
                columns = {n: columns[n][mask] for n in output}
        selected = {n: columns[n] for n in output}
        stats.rows_output += len(selected[output[0]]) if output else 0
        return VirtualTable(selected, order=output)


def _decode_batch(
    payload: bytes,
    layout: HeapLayout,
    all_columns: List[str],
    needed: List[str],
    num_rows: int,
) -> Dict[str, np.ndarray]:
    """Decode needed columns from a run of pages (strided views + copy).

    Datum offsets are positional in the table's stored column order.
    """
    from .pages import DATUM, TUPLE_HEADER

    num_pages = len(payload) // PAGE_SIZE
    per_page = layout.tuples_per_page
    out: Dict[str, np.ndarray] = {}
    if num_pages == 0 or num_rows == 0:
        return {name: np.empty(0, dtype=np.float64) for name in needed}
    for name in needed:
        ci = all_columns.index(name)
        offset = layout.data_start + TUPLE_HEADER + DATUM * ci
        view = np.ndarray(
            shape=(num_pages, per_page),
            dtype="<f8",
            buffer=payload,
            offset=offset,
            strides=(PAGE_SIZE, layout.tuple_bytes),
        )
        out[name] = view.reshape(-1)[:num_rows].copy()
    return out
