"""Benchmark harness and per-figure workload definitions."""

from .figures import (
    EXPECTED_SHAPES,
    IPARS_QUERY_NAMES,
    TITAN_QUERY_NAMES,
    fig6_titan_config,
    fig9_ipars_config,
    fig10_ipars_config,
    fig11_box_fractions,
    fig11_time_windows,
)
from .harness import (
    Measurement,
    Series,
    measure_plan,
    measure_rowstore,
    measure_storm,
    print_figure,
    ratio,
    results_dir,
)

__all__ = [
    "EXPECTED_SHAPES",
    "IPARS_QUERY_NAMES",
    "Measurement",
    "Series",
    "TITAN_QUERY_NAMES",
    "fig10_ipars_config",
    "fig11_box_fractions",
    "fig11_time_windows",
    "fig6_titan_config",
    "fig9_ipars_config",
    "measure_plan",
    "measure_rowstore",
    "measure_storm",
    "print_figure",
    "ratio",
    "results_dir",
]
