"""Canonical workload definitions for every table/figure of the paper.

Figures 7 and 8 of the paper are themselves tables of queries; the query
builders live with the dataset generators
(:func:`repro.datasets.titan.figure7_queries`,
:func:`repro.datasets.ipars.figure8_queries`) and are re-exported here so
each benchmark names its workload through one module.

The ``EXPECTED_SHAPES`` dict records, per figure, the qualitative claims
the paper makes; benchmarks assert them against measured (simulated)
series so a regression that flips a comparison fails loudly instead of
silently producing a wrong figure.
"""

from __future__ import annotations

from typing import Dict, List

from ..datasets.ipars import ALL_LAYOUTS, IparsConfig, figure8_queries
from ..datasets.titan import TitanConfig, figure7_queries

TITAN_QUERY_NAMES = ["Q1 full scan", "Q2 spatial box", "Q3 distance",
                     "Q4 S1<0.01", "Q5 S1<0.5"]

IPARS_QUERY_NAMES = ["Q1 full scan", "Q2 time subset", "Q3 time+filter",
                     "Q4 time+Speed()", "Q5 remote client"]

#: Qualitative claims of each figure (asserted by the benchmarks).
EXPECTED_SHAPES: Dict[str, List[str]] = {
    "fig6": [
        "STORM beats PostgreSQL on Q1, Q2, Q3, Q5 (no index applies, and "
        "PostgreSQL scans ~3x the bytes)",
        "PostgreSQL beats STORM on Q4 (selective B-tree index on S1)",
        "Q1 is the slowest query for both systems",
    ],
    "fig9a": [
        "generated code is within ~10% of hand-written on L0 full scan",
        "every layout answers the full scan correctly (same row count)",
    ],
    "fig9b": [
        "generated within ~10% of hand-written on L0 for Q2-Q5",
        "indexed TIME subsetting (Q2-Q5) is far cheaper than Q1 on every "
        "layout",
    ],
    "fig10": [
        "execution time scales down almost linearly as nodes increase",
        "generated stays within ~5-34% of hand-written at every node count",
    ],
    "fig11a": [
        "time grows proportionally with query window size (IPARS)",
        "generated within ~17% of hand-written at every size",
    ],
    "fig11b": [
        "time grows proportionally with box size (Titan)",
        "generated within ~4% of hand-written at every size",
    ],
}


def fig6_titan_config() -> TitanConfig:
    """Titan dataset for the PostgreSQL comparison (scaled-down 6 GB)."""
    return TitanConfig(
        chunks_x=8, chunks_y=8, chunks_z=4, chunks_t=4,
        elems_per_chunk=1000, num_nodes=1, seed=11,
    )


def fig9_ipars_config() -> IparsConfig:
    """IPARS dataset for the layout experiment."""
    return IparsConfig(
        num_rels=2, num_times=60, cells_per_node=2500, num_nodes=2, seed=7,
    )


def fig10_total_cells() -> int:
    """Fixed total grid size redistributed across 1..16 nodes."""
    return 16000


def fig10_ipars_config(num_nodes: int) -> IparsConfig:
    total = fig10_total_cells()
    return IparsConfig(
        num_rels=2,
        num_times=50,
        cells_per_node=total // num_nodes,
        num_nodes=num_nodes,
        seed=7,
    )


def fig11_time_windows(config: IparsConfig) -> List[float]:
    """Query-size sweep: window width as fraction of the run."""
    return [0.1, 0.2, 0.4, 0.8]


def fig11_box_fractions() -> List[float]:
    """Titan spatial box extents as a fraction of the domain per axis."""
    return [0.25, 0.4, 0.6, 1.0]


__all__ = [
    "ALL_LAYOUTS",
    "EXPECTED_SHAPES",
    "IPARS_QUERY_NAMES",
    "TITAN_QUERY_NAMES",
    "fig10_ipars_config",
    "fig10_total_cells",
    "fig11_box_fractions",
    "fig11_time_windows",
    "fig6_titan_config",
    "fig9_ipars_config",
    "figure7_queries",
    "figure8_queries",
]
