"""Benchmark harness: run query series, collect metrics, print figures.

Every benchmark in ``benchmarks/`` reproduces one table or figure of the
paper.  The harness gives them a common vocabulary:

* :func:`measure_storm` / :func:`measure_rowstore` — run one query cold
  (caches dropped) and return a :class:`Measurement` with simulated
  seconds, wall seconds, and the raw operation counts;
* :class:`Series` — a labelled list of measurements (one bar group of a
  figure);
* :func:`print_figure` — render series as the aligned text table the
  paper's figure reports, and persist the numbers as JSON next to the
  benchmarks so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Sequence

from ..baselines.rowstore import MiniRowStore
from ..core.afc import ExtractionPlan
from ..core.extractor import Extractor
from ..core.options import ExecOptions
from ..core.stats import IOStats
from ..obs import Tracer
from ..storm.cost import CostModel, POSTGRES_COST, STORM_COST
from ..storm.query_service import QueryService


@dataclass
class Measurement:
    """One query execution's outcome."""

    label: str
    query: str
    rows: int
    simulated_seconds: float
    wall_seconds: float
    bytes_read: int
    bytes_sent: int = 0
    files_opened: int = 0
    seeks: int = 0
    afcs: int = 0
    #: Wall seconds per pipeline stage (plan/index/extract/filter/...),
    #: filled when the measurement ran with tracing on.
    stages: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return asdict(self)


def measure_storm(
    service: QueryService,
    sql: str,
    label: str = "storm",
    num_clients: int = 1,
    remote: bool = False,
    trace: bool = False,
    **submit_kwargs,
) -> Measurement:
    """Run one query cold through the STORM query service.

    With ``trace=True`` the run carries a :class:`Tracer` and the
    measurement's ``stages`` breaks wall time down per pipeline stage.
    """
    service.drop_caches()
    options = ExecOptions(
        num_clients=num_clients,
        remote=remote,
        trace=Tracer() if trace else None,
        **submit_kwargs,
    )
    result = service.submit(sql, options)
    stats = result.total_stats
    return Measurement(
        label=label,
        query=sql,
        rows=result.num_rows,
        simulated_seconds=result.simulated_seconds,
        wall_seconds=result.wall_seconds,
        bytes_read=stats.bytes_read,
        bytes_sent=stats.bytes_sent,
        files_opened=stats.files_opened,
        seeks=stats.seeks,
        afcs=result.afc_count,
        stages=result.trace.stage_seconds() if result.trace else {},
    )


def measure_rowstore(
    store: MiniRowStore,
    sql: str,
    label: str = "postgresql",
    cost_model: CostModel = POSTGRES_COST,
) -> Measurement:
    """Run one query against the row-store baseline."""
    stats = IOStats()
    start = time.perf_counter()
    table = store.query(sql, stats)
    wall = time.perf_counter() - start
    simulated = cost_model.query_overhead + cost_model.node_time(stats)
    return Measurement(
        label=label,
        query=sql,
        rows=table.num_rows,
        simulated_seconds=simulated,
        wall_seconds=wall,
        bytes_read=stats.bytes_read,
        files_opened=stats.files_opened,
        seeks=stats.seeks,
    )


def measure_plan(
    extractor: Extractor,
    plan_fn: Callable[[], ExtractionPlan],
    label: str,
    query: str,
    cost_model: CostModel = STORM_COST,
) -> Measurement:
    """Run a raw extraction plan (used for hand-written baselines)."""
    extractor.drop_caches()
    stats = IOStats()
    start = time.perf_counter()
    plan = plan_fn()
    table = extractor.execute(plan, stats)
    wall = time.perf_counter() - start
    simulated = cost_model.query_overhead + cost_model.node_time(stats)
    return Measurement(
        label=label,
        query=query,
        rows=table.num_rows,
        simulated_seconds=simulated,
        wall_seconds=wall,
        bytes_read=stats.bytes_read,
        files_opened=stats.files_opened,
        seeks=stats.seeks,
        afcs=len(plan.afcs),
    )


@dataclass
class Series:
    """One labelled series of a figure (e.g. one system across queries)."""

    label: str
    measurements: List[Measurement] = field(default_factory=list)

    def add(self, measurement: Measurement) -> None:
        self.measurements.append(measurement)

    @property
    def simulated(self) -> List[float]:
        return [m.simulated_seconds for m in self.measurements]


def results_dir() -> str:
    """Where figure JSON outputs land (override with REPRO_RESULTS_DIR)."""
    path = os.environ.get("REPRO_RESULTS_DIR")
    if not path:
        path = os.path.join(os.getcwd(), "bench_results")
    os.makedirs(path, exist_ok=True)
    return path


def print_figure(
    figure: str,
    title: str,
    row_labels: Sequence[str],
    series: Sequence[Series],
    notes: Sequence[str] = (),
) -> None:
    """Print a figure as an aligned table and persist it as JSON."""
    width = max((len(r) for r in row_labels), default=8)
    width = max(width, 10)
    header = f"{'':{width}}" + "".join(f"{s.label:>16}" for s in series)
    lines = [f"=== {figure}: {title} ===", header]
    for i, row in enumerate(row_labels):
        cells = []
        for s in series:
            if i < len(s.measurements):
                cells.append(f"{s.measurements[i].simulated_seconds:>14.2f}s")
            else:
                cells.append(f"{'-':>15}")
        lines.append(f"{row:{width}}" + "".join(cells))
    for note in notes:
        lines.append(f"  note: {note}")
    text = "\n".join(lines)
    print("\n" + text)

    payload = {
        "figure": figure,
        "title": title,
        "rows": list(row_labels),
        "series": [
            {
                "label": s.label,
                "measurements": [m.as_dict() for m in s.measurements],
            }
            for s in series
        ],
        "notes": list(notes),
    }
    out = os.path.join(results_dir(), f"{figure}.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)


def ratio(a: float, b: float) -> float:
    """Safe a/b for shape assertions."""
    return a / b if b else float("inf")
