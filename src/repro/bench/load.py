"""Closed-loop load generation: sustained concurrency, latency percentiles.

The throughput benchmarks run one query at a time; a server's latency
story only appears under *sustained concurrent* load.  This module grows
``benchmarks/bench_mixed_workload.py`` into a closed-loop generator:
each tenant runs ``clients`` closed-loop client threads (a client
submits, waits for the result, submits again — classic closed-loop
arrival), every query's wall latency is recorded, and the report carries
p50/p99 latency, throughput, queue waits, and a starvation ratio per
tenant.

Workloads come from :mod:`repro.bench.workloads` (deterministic seeded
IPARS/Titan/MRI mixes) or any explicit query list; scheduling choices
come from each tenant's :class:`~repro.core.options.ExecOptions`, so the
same harness measures fair-share scheduling and its ``scheduler="off"``
ablation.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.options import ExecOptions
from ..errors import (
    AdmissionError,
    QueryCancelledError,
    QuotaExceededError,
    ReproError,
)
from .harness import results_dir


def percentile(values: List[float], q: float) -> float:
    """The q-th percentile (0..100) by nearest-rank; 0.0 when empty."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class TenantSpec:
    """One tenant class of a load mix."""

    name: str
    queries: List[str]
    clients: int = 1
    queries_per_client: int = 10
    priority: int = 0
    #: Base options for this tenant's submissions; ``tenant`` and
    #: ``priority`` are overridden from this spec.
    options: Optional[ExecOptions] = None


@dataclass
class TenantReport:
    """Latency/throughput outcome of one tenant class."""

    name: str
    priority: int
    completed: int = 0
    rejected: int = 0
    cancelled: int = 0
    failed: int = 0
    latencies: List[float] = field(default_factory=list)
    waits: List[float] = field(default_factory=list)

    @property
    def p50(self) -> float:
        return percentile(self.latencies, 50)

    @property
    def p99(self) -> float:
        return percentile(self.latencies, 99)

    @property
    def mean(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def starvation_ratio(self) -> float:
        """Tail blow-up within the class: p99 / p50 (1.0 = no tail).

        Under a fair scheduler every query of a class waits about the
        same; starvation shows up as a tail that is many times the
        median.
        """
        p50 = self.p50
        return self.p99 / p50 if p50 > 0 else 0.0

    def as_dict(self, duration: float) -> Dict:
        return {
            "priority": self.priority,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "p50_ms": round(self.p50 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
            "mean_ms": round(self.mean * 1000, 3),
            "throughput_qps": round(
                self.completed / duration if duration > 0 else 0.0, 3
            ),
            "wait_p50_ms": round(percentile(self.waits, 50) * 1000, 3),
            "wait_p99_ms": round(percentile(self.waits, 99) * 1000, 3),
            "starvation_ratio": round(self.starvation_ratio, 3),
        }


@dataclass
class LoadReport:
    """Everything one closed-loop run measured."""

    duration_seconds: float
    tenants: Dict[str, TenantReport]
    threads_before: int
    threads_peak: int
    threads_after: int

    def as_dict(self) -> Dict:
        return {
            "duration_seconds": round(self.duration_seconds, 3),
            "tenants": {
                name: report.as_dict(self.duration_seconds)
                for name, report in sorted(self.tenants.items())
            },
            "threads": {
                "before": self.threads_before,
                "peak": self.threads_peak,
                "after": self.threads_after,
            },
        }


def run_closed_loop(
    scheduler,
    tenants: List[TenantSpec],
    base_options: Optional[ExecOptions] = None,
) -> LoadReport:
    """Drive a tenant mix through a scheduler with closed-loop clients.

    ``scheduler`` is a :class:`repro.sched.Scheduler`; the ablation is
    expressed in the options (``scheduler="off"`` runs each submission
    inline on its client thread — unscheduled concurrency).  Client k
    of a tenant starts at query offset ``k * queries_per_client`` into
    the tenant's cycle, so a (spec, seed) pair always replays the same
    per-client streams.
    """
    base = base_options if base_options is not None else ExecOptions()
    reports = {
        spec.name: TenantReport(spec.name, spec.priority) for spec in tenants
    }
    lock = threading.Lock()
    peak = [threading.active_count()]
    stop_sampler = threading.Event()

    def sampler() -> None:
        while not stop_sampler.wait(0.02):
            count = threading.active_count()
            if count > peak[0]:
                peak[0] = count

    def client_loop(spec: TenantSpec, offset: int) -> None:
        opts = (spec.options or base).replace(
            tenant=spec.name, priority=spec.priority
        )
        report = reports[spec.name]
        for i in range(spec.queries_per_client):
            sql = spec.queries[(offset + i) % len(spec.queries)]
            started = time.perf_counter()
            try:
                handle = scheduler.submit(sql, opts)
                handle.result()
            except AdmissionError:
                with lock:
                    report.rejected += 1
                continue
            except QueryCancelledError:
                with lock:
                    report.cancelled += 1
                continue
            except (QuotaExceededError, ReproError):
                with lock:
                    report.failed += 1
                continue
            latency = time.perf_counter() - started
            with lock:
                report.completed += 1
                report.latencies.append(latency)
                wait = handle.wait_seconds
                if wait is not None:
                    report.waits.append(wait)

    threads_before = threading.active_count()
    workers = [
        threading.Thread(
            target=client_loop,
            args=(spec, k * spec.queries_per_client),
            name=f"load-{spec.name}-{k}",
        )
        for spec in tenants
        for k in range(spec.clients)
    ]
    sampler_thread = threading.Thread(target=sampler, name="load-sampler")
    started = time.perf_counter()
    sampler_thread.start()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    duration = time.perf_counter() - started
    stop_sampler.set()
    sampler_thread.join()
    return LoadReport(
        duration_seconds=duration,
        tenants=reports,
        threads_before=threads_before,
        threads_peak=peak[0],
        threads_after=threading.active_count(),
    )


def write_bench_json(name: str, payload: Dict) -> str:
    """Persist a benchmark payload under ``results_dir()``; returns path."""
    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
