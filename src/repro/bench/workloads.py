"""Deterministic mixed-query workload generation.

The paper evaluates five canonical queries per application; a production
service sees a *mix*.  These generators produce reproducible streams of
queries over the synthetic datasets — the archetypes of Figures 7/8 with
randomised parameters — for throughput benchmarking and stress testing.
All draws come from a seeded ``random.Random``, so a (config, seed, n)
triple always yields the same workload.
"""

from __future__ import annotations

import random
from typing import List

from ..datasets.ipars import IparsConfig, STATE_VARS
from ..datasets.mri import MODALITIES, MriConfig
from ..datasets.titan import SENSORS, TitanConfig


def _projection(rng: random.Random, candidates) -> str:
    """A random projection list (or * occasionally)."""
    if rng.random() < 0.2:
        return "*"
    k = rng.randint(1, min(4, len(candidates)))
    return ", ".join(rng.sample(list(candidates), k))


def ipars_workload(
    config: IparsConfig, n: int, seed: int = 1
) -> List[str]:
    """A mixed IPARS workload: time windows, realization subsets, value
    filters, Speed() filters, projections — weighted towards the cheap
    subsetting queries a repository actually serves."""
    rng = random.Random(seed)
    queries: List[str] = []
    for _ in range(n):
        kind = rng.choices(
            ["window", "rel", "filter", "udf", "scan"],
            weights=[40, 20, 20, 15, 5],
        )[0]
        t_lo = rng.randint(1, max(1, config.num_times - 2))
        t_hi = min(config.num_times, t_lo + rng.randint(1, max(2, config.num_times // 5)))
        if kind == "scan":
            queries.append("SELECT * FROM IparsData")
        elif kind == "window":
            cols = _projection(rng, ("X", "Y", "Z") + STATE_VARS[:4])
            queries.append(
                f"SELECT {cols} FROM IparsData "
                f"WHERE TIME >= {t_lo} AND TIME <= {t_hi}"
            )
        elif kind == "rel":
            rels = sorted(
                rng.sample(range(config.num_rels),
                           rng.randint(1, max(1, config.num_rels // 2)))
            )
            in_list = ", ".join(str(r) for r in rels)
            queries.append(
                f"SELECT REL, TIME, SOIL FROM IparsData "
                f"WHERE REL IN ({in_list}) AND TIME <= {t_hi}"
            )
        elif kind == "filter":
            attr = rng.choice(("SOIL", "SGAS", "SWAT"))
            threshold = round(rng.uniform(0.5, 0.95), 2)
            queries.append(
                f"SELECT X, Y, Z, {attr} FROM IparsData "
                f"WHERE TIME >= {t_lo} AND TIME <= {t_hi} "
                f"AND {attr} > {threshold}"
            )
        else:  # udf
            limit = round(rng.uniform(5.0, 25.0), 1)
            queries.append(
                f"SELECT TIME, SOIL FROM IparsData WHERE TIME >= {t_lo} "
                f"AND TIME <= {t_hi} "
                f"AND SPEED(OILVX, OILVY, OILVZ) < {limit}"
            )
    return queries


def titan_workload(
    config: TitanConfig, n: int, seed: int = 1
) -> List[str]:
    """A mixed Titan workload: spatial boxes, space-time boxes, sensor
    thresholds, distance filters."""
    rng = random.Random(seed)
    ex, ey, ez = config.extent
    queries: List[str] = []
    for _ in range(n):
        kind = rng.choices(
            ["box", "spacetime", "sensor", "distance", "scan"],
            weights=[35, 25, 20, 15, 5],
        )[0]
        x0 = rng.uniform(0, ex * 0.7)
        x1 = x0 + rng.uniform(0.05, 0.3) * ex
        y0 = rng.uniform(0, ey * 0.7)
        y1 = y0 + rng.uniform(0.05, 0.3) * ey
        if kind == "scan":
            queries.append("SELECT * FROM TitanData")
        elif kind == "box":
            queries.append(
                f"SELECT X, Y, S1 FROM TitanData WHERE X >= {x0:.0f} AND "
                f"X <= {x1:.0f} AND Y >= {y0:.0f} AND Y <= {y1:.0f}"
            )
        elif kind == "spacetime":
            t0 = rng.randint(0, config.time_extent // 2)
            t1 = t0 + config.time_extent // rng.choice((3, 4, 5))
            queries.append(
                f"SELECT TIME, X, Y, S1, S2 FROM TitanData WHERE "
                f"X >= {x0:.0f} AND X <= {x1:.0f} AND TIME >= {t0} "
                f"AND TIME <= {t1}"
            )
        elif kind == "sensor":
            sensor = rng.choice(SENSORS)
            threshold = round(rng.uniform(0.05, 0.6), 3)
            queries.append(
                f"SELECT {sensor} FROM TitanData WHERE {sensor} < {threshold}"
            )
        else:  # distance
            radius = rng.uniform(0.1, 0.4) * ex
            queries.append(
                "SELECT X, Y, Z FROM TitanData "
                f"WHERE DISTANCE(X, Y, Z) < {radius:.0f}"
            )
    return queries


def mri_workload(config: MriConfig, n: int, seed: int = 1) -> List[str]:
    """A mixed MRI-archive workload: per-study slabs, intensity screens,
    modality comparisons."""
    rng = random.Random(seed)
    queries: List[str] = []
    for _ in range(n):
        kind = rng.choices(
            ["slab", "screen", "study", "roi"], weights=[35, 30, 20, 15]
        )[0]
        study = rng.randrange(config.num_studies)
        s_lo = rng.randrange(config.slices)
        s_hi = min(config.slices - 1, s_lo + rng.randint(0, 2))
        if kind == "slab":
            modality = rng.choice(MODALITIES)
            queries.append(
                f"SELECT SLICE, ROW, COL, {modality} FROM MriArchive "
                f"WHERE STUDY = {study} AND SLICE BETWEEN {s_lo} AND {s_hi}"
            )
        elif kind == "screen":
            threshold = rng.randint(900, 2600)
            queries.append(
                f"SELECT STUDY, SLICE, ROW, COL FROM MriArchive "
                f"WHERE T2 > {threshold} AND FLAIR > {threshold}"
            )
        elif kind == "study":
            queries.append(
                f"SELECT * FROM MriArchive WHERE STUDY = {study}"
            )
        else:  # roi
            r_lo = rng.randrange(config.rows // 2)
            c_lo = rng.randrange(config.cols // 2)
            queries.append(
                f"SELECT T1, T2 FROM MriArchive WHERE STUDY = {study} "
                f"AND ROW >= {r_lo} AND ROW < {r_lo + config.rows // 3} "
                f"AND COL >= {c_lo} AND COL < {c_lo + config.cols // 3}"
            )
    return queries
