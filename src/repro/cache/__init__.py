"""Semantic result caching and plan memoization (see docs/architecture.md,
"Caching & reuse").

Layering: this package sits beside :mod:`repro.core` — it imports core
and sql, never storm.  ``Virtualizer`` and ``QueryService`` construct a
:class:`QueryCache` lazily when ``ExecOptions.cache_mode`` enables it.
"""

from .keys import (
    QueryKey,
    descriptor_fingerprint,
    exact_range,
    key_subsumes,
    query_key,
    split_where,
)
from .layer import CacheServe, QueryCache, project, widen_plan
from .result_cache import CacheEntry, PlanCache, ResultCache

__all__ = [
    "CacheEntry",
    "CacheServe",
    "PlanCache",
    "QueryCache",
    "QueryKey",
    "ResultCache",
    "descriptor_fingerprint",
    "exact_range",
    "key_subsumes",
    "project",
    "query_key",
    "split_where",
    "widen_plan",
]
