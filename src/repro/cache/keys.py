"""Normalized query fingerprints and the subsumption rule.

The semantic result cache must recognise two queries as "the same" (or
one as strictly broader than the other) even when their SQL texts differ.
The normal form is a :class:`QueryKey`:

* the **descriptor fingerprint** — a stable hash of the full meta-data
  description, so a cache can never serve results across datasets;
* the **output columns**, in SELECT order;
* the **canonical range map** — the WHERE conjuncts that are *exactly*
  representable as per-attribute interval sets (``TIME > 100``,
  ``REL IN (0, 2)``, ``X BETWEEN 1 AND 5``, …), intersected per
  attribute, sorted by attribute name;
* the **residual fingerprint** — the remaining conjuncts (function
  calls, column-to-column comparisons, OR trees spanning several
  attributes), rendered canonically and sorted.

Splitting only top-level AND conjuncts keeps the decomposition *exact*:
``WHERE == AND(range part) AND AND(residual part)`` always holds, which
is what makes subsumption sound.  A cached entry A may answer a new
query B by re-filtering when ``B implies A``::

    residual(A) is a subset of residual(B)       (B filters at least as much)
    and for every attribute A constrains,
        ranges(B)[attr] is contained in ranges(A)[attr]

Every row satisfying B then satisfies A, so B's rows are a subset of the
cached table and re-applying B's full WHERE to it is exact.  Anything
not provably exact lands in the residual, which can only *disable*
subsumption — never produce a wrong answer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sql.ast import (
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    InList,
    Literal,
    Node,
    Not,
    Or,
    Query,
    MIRROR_OP,
    NEGATE_OP,
)
from ..sql.ranges import IntervalSet, Interval, RangeMap
from ..sql.rewrite import rewrite_where

#: Sorted ((attribute, intervals), ...) — the hashable form of a RangeMap.
CanonicalRanges = Tuple[Tuple[str, Tuple[Interval, ...]], ...]


@dataclass(frozen=True)
class QueryKey:
    """The normalized identity of one query against one dataset."""

    dataset: str
    output: Tuple[str, ...]
    ranges: CanonicalRanges
    residual: Tuple[str, ...]
    #: ``()`` for plain row queries.  Aggregate queries carry
    #: ``("BY", <group attrs...>)`` — the marker separates an aggregate
    #: from a row query with the same projection (GROUP BY alone has
    #: DISTINCT semantics, so identical output columns do not imply
    #: identical results), and for aggregate keys ``output`` holds the
    #: *final result labels* (e.g. ``SUM(SOIL)``), because the cached
    #: value is the finalised result table, not base rows.
    aggregate: Tuple[str, ...] = ()


def descriptor_fingerprint(descriptor) -> str:
    """Stable content hash of a descriptor (schema + storage + layout).

    Uses the XML embedding as the canonical serialisation: it is already
    deterministic and covers every semantically relevant field, so two
    descriptors that virtualize identical datasets hash identically
    regardless of comment/whitespace differences in their source text.
    """
    from ..metadata.xml_io import descriptor_to_xml

    text = descriptor_to_xml(descriptor)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Exact single-attribute interval form of one conjunct
# ---------------------------------------------------------------------------


def _flatten_and(node: Node) -> List[Node]:
    if isinstance(node, And):
        out: List[Node] = []
        for term in node.terms:
            out.extend(_flatten_and(term))
        return out
    return [node]


def _comparison_range(node: Comparison) -> Optional[Tuple[str, IntervalSet]]:
    op = node.op
    if isinstance(node.left, Column) and isinstance(node.right, Literal):
        column, value = node.left, node.right.value
    elif isinstance(node.right, Column) and isinstance(node.left, Literal):
        column, value = node.right, node.left.value
        op = MIRROR_OP[op]
    else:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if op in ("!=", "<>"):
        return column.name, IntervalSet(
            [Interval(hi=value, hi_open=True), Interval(lo=value, lo_open=True)]
        )
    return column.name, IntervalSet([Interval.from_comparison(op, value)])


def exact_range(term: Node, negated: bool = False) -> Optional[Tuple[str, IntervalSet]]:
    """``(attribute, intervals)`` when ``term`` is *exactly* an interval
    condition on one attribute; ``None`` otherwise.

    Unlike :func:`repro.sql.ranges.extract_ranges` — which returns a safe
    over-approximation for pruning — this refuses anything inexact, so a
    returned set is logically equivalent to the term, not merely implied
    by it.
    """
    if isinstance(term, Not):
        return exact_range(term.term, not negated)
    if isinstance(term, Comparison):
        node = term
        if negated:
            node = Comparison(NEGATE_OP[term.op], term.left, term.right)
        return _comparison_range(node)
    if isinstance(term, Between):
        if not isinstance(term.operand, Column):
            return None
        lo, hi = term.lo, term.hi
        if not isinstance(lo, (int, float)) or not isinstance(hi, (int, float)):
            return None
        if negated:
            return term.operand.name, IntervalSet(
                [Interval(hi=lo, hi_open=True), Interval(lo=hi, lo_open=True)]
            )
        return term.operand.name, IntervalSet.of(lo, hi)
    if isinstance(term, InList) and not negated:
        if not isinstance(term.operand, Column):
            return None
        if not all(isinstance(v, (int, float)) for v in term.values):
            return None
        return term.operand.name, IntervalSet.points(term.values)
    if isinstance(term, (And, Or)):
        # AND/OR over exact conditions on ONE shared attribute stays exact
        # (intersection/union); across attributes it does not.
        combine_union = isinstance(term, Or) != negated
        parts = [exact_range(t, negated) for t in term.terms]
        if any(p is None for p in parts):
            return None
        names = {name for name, _ in parts}  # type: ignore[misc]
        if len(names) != 1:
            return None
        acc = parts[0][1]  # type: ignore[index]
        for _, ivs in parts[1:]:  # type: ignore[misc]
            acc = acc.union(ivs) if combine_union else acc.intersect(ivs)
        return names.pop(), acc
    return None


def split_where(where: Optional[Node]) -> Tuple[RangeMap, Tuple[str, ...]]:
    """Exact decomposition of a WHERE into (range map, residual prints).

    The conjunction of the returned range conditions and residual
    conjuncts is logically equivalent to ``where``.  ``TRUE`` conjuncts
    are dropped; everything not exactly interval-representable goes into
    the residual as its canonical string rendering, sorted.
    """
    if where is None:
        return {}, ()
    ranges: RangeMap = {}
    residual: List[str] = []
    for term in _flatten_and(where):
        if isinstance(term, BoolLiteral) and term.value:
            continue
        exact = exact_range(term)
        if exact is None:
            residual.append(str(term))
        else:
            name, ivs = exact
            ranges[name] = ranges[name].intersect(ivs) if name in ranges else ivs
    return ranges, tuple(sorted(residual))


# ---------------------------------------------------------------------------
# Keys and containment
# ---------------------------------------------------------------------------


def query_key(
    fingerprint: str,
    query: Query,
    output: Sequence[str],
    aggregate: Sequence[str] = (),
) -> QueryKey:
    """The normalized cache key of a resolved query.

    The WHERE clause is canonicalized by the equivalence-preserving
    rewrite pass first (idempotent, so pre-rewritten queries key the
    same), which is what collapses commuted conjuncts, flipped
    comparisons and foldable constants onto one key.
    """
    where, _ = rewrite_where(query.where)
    ranges, residual = split_where(where)
    canonical: CanonicalRanges = tuple(
        sorted((name, ivs.intervals) for name, ivs in ranges.items())
    )
    return QueryKey(
        fingerprint, tuple(output), canonical, residual, tuple(aggregate)
    )


def ranges_of(key: QueryKey) -> RangeMap:
    """Reconstruct the interval sets of a key's canonical range map."""
    return {name: IntervalSet(intervals) for name, intervals in key.ranges}


def key_subsumes(cached: QueryKey, new: QueryKey) -> bool:
    """Whether a result cached under ``cached`` can answer ``new``.

    True when ``new``'s predicate implies ``cached``'s: the cached
    residual conjuncts all appear in the new query, and every attribute
    the cached query constrains is constrained at least as tightly by
    the new one.  Column availability (projection) is checked by the
    cache itself, not here.
    """
    if cached.dataset != new.dataset:
        return False
    if cached.aggregate or new.aggregate:
        # Aggregate results are reduced tables: re-filtering them cannot
        # answer a narrower query (the per-group sums already folded rows
        # the narrower predicate would exclude).  Exact hits only.
        return False
    if not set(cached.residual) <= set(new.residual):
        return False
    new_ranges = dict(new.ranges)
    for name, cached_intervals in cached.ranges:
        new_intervals = new_ranges.get(name)
        if new_intervals is None:
            return False
        narrow = IntervalSet(new_intervals)
        if narrow.intersect(IntervalSet(cached_intervals)) != narrow:
            return False
    return True
