"""The query-facing cache layer: keying, serving, storing, observing.

:class:`QueryCache` binds one dataset's :class:`ResultCache` and
:class:`PlanCache` together with the keying logic of
:mod:`repro.cache.keys` and the observability surface (``cache.*``
metrics, ``cache_hit`` trace events, the cache fields of
:class:`~repro.core.stats.IOStats`).  ``Virtualizer`` and
``QueryService`` each own at most one instance, created lazily on the
first query whose :class:`~repro.core.options.ExecOptions` enables
caching (``cache_mode != "off"``) and shared by every node / submitting
thread thereafter.

This module deliberately imports nothing from :mod:`repro.storm` —
storm imports core, never the other way — so the re-filtering service
used for subsumption hits is passed in by the caller.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.afc import ExtractionPlan
from ..core.stats import IOStats
from ..core.table import VirtualTable
from ..obs.tracer import NULL_TRACER
from ..sql.ast import Query
from ..sql.rewrite import rewrite_query
from .keys import QueryKey, descriptor_fingerprint, query_key
from .result_cache import PlanCache, ResultCache


def widen_plan(plan: ExtractionPlan) -> ExtractionPlan:
    """The same plan, emitting every *needed* column, not just the SELECT.

    WHERE-only columns are extracted either way (the predicate needs
    them); emitting them too is what lets the cached table answer later
    narrower queries that filter on attributes this query did not
    project.  Reads, pruning, and filtering are identical — only the
    result's column set widens, and callers project back down with
    :func:`project`.
    """
    if list(plan.needed) == list(plan.output):
        return plan
    return dataclasses.replace(plan, output=list(plan.needed))


def project(table: VirtualTable, output: Sequence[str]) -> VirtualTable:
    """Zero-copy projection of a table onto ``output`` in order."""
    names: List[str] = list(output)
    if list(table.column_names) == names:
        return table
    return VirtualTable({n: table.column(n) for n in names}, order=names)


@dataclass
class CacheServe:
    """One served cache hit: the answer plus its bookkeeping."""

    table: VirtualTable
    kind: str  # "exact" | "subsume"
    #: Bytes the original cold execution read — what this hit avoided.
    saved_bytes: int
    #: AFC count of the original execution (reported in QueryResult).
    afc_count: int


class QueryCache:
    """Result + plan caches for one dataset, shared across submitters."""

    def __init__(
        self,
        dataset,
        result_cache_bytes: int = 64 * 1024 * 1024,
        plan_cache_entries: int = 128,
    ):
        self.dataset = dataset
        #: Computed once: the descriptor half of every key.  A cache is
        #: bound to one dataset instance, so re-hashing per query would
        #: only repeat the same XML serialisation.
        self.fingerprint = descriptor_fingerprint(dataset.descriptor)
        self.results = ResultCache(result_cache_bytes)
        self.plans = PlanCache(plan_cache_entries)
        self._config_lock = threading.Lock()

    @classmethod
    def for_dataset(
        cls,
        dataset,
        result_cache_bytes: int,
        plan_cache_entries: int,
    ) -> Optional["QueryCache"]:
        """A cache for ``dataset``, or None when it cannot be keyed.

        Duck-typed datasets (hand-written planners exposing only
        ``plan(sql)``) have no descriptor to fingerprint and no
        ``needed_columns`` to validate against, so caching silently
        stays off for them.
        """
        if getattr(dataset, "descriptor", None) is None:
            return None
        if not hasattr(dataset, "needed_columns") or not hasattr(
            dataset, "resolve_query"
        ):
            return None
        return cls(dataset, result_cache_bytes, plan_cache_entries)

    def configure(self, result_cache_bytes: int, plan_cache_entries: int) -> None:
        """Adopt new budgets from later ExecOptions (shrinking evicts)."""
        with self._config_lock:
            if result_cache_bytes != self.results.max_bytes:
                self.results.resize(result_cache_bytes)
            if plan_cache_entries != self.plans.max_entries:
                self.plans.resize(plan_cache_entries)

    # -- keying ---------------------------------------------------------------

    def key_and_needed(self, query: Query) -> Tuple[QueryKey, FrozenSet[str]]:
        """The normalized key of a resolved query, plus the columns any
        cached table must store to answer it (output + WHERE inputs).

        Aggregate queries cache their *final* labelled result table:
        the key's output is the result labels, the key carries the
        aggregate marker (so a GROUP-BY-only query can never collide
        with the row query projecting the same columns), and only exact
        hits serve it — subsumption stays row-query-only.
        """
        # Canonicalize first: commuted/flipped/folded spellings share one
        # key, and ``needed`` then matches the (also-rewritten) plan's
        # column set, so stored entries actually serve every spelling.
        query, _ = rewrite_query(query)
        needed, output = self.dataset.needed_columns(query)
        if query.is_aggregate:
            from ..core.aggregate import aggregate_spec

            spec = aggregate_spec(query, list(self.dataset.schema.names))
            key = query_key(
                self.fingerprint,
                query,
                spec.output,
                aggregate=("BY",) + spec.group_by,
            )
            return key, frozenset(spec.output)
        return query_key(self.fingerprint, query, output), frozenset(needed)

    # -- serving --------------------------------------------------------------

    def serve(
        self,
        key: QueryKey,
        query: Query,
        needed: FrozenSet[str],
        filtering,
        stats: IOStats,
        tracer=NULL_TRACER,
        mode: str = "exact",
        vectorize: bool = False,
    ) -> Optional[CacheServe]:
        """Answer from cache, or None on a miss.

        Exact hits share the frozen cached table zero-copy (its arrays
        are read-only), projected down to the query's SELECT list — the
        stored table may carry extra WHERE-only columns (see
        :func:`widen_plan`).  Subsumption hits re-run the query's full
        WHERE over the cached superset through ``filtering`` (a
        ``FilteringService``), which both charges the re-filter CPU to
        ``stats.rows_refiltered`` and hands back writable columns.
        """
        entry, kind = self.results.lookup(key, needed, subsume=mode == "subsume")
        if entry is None:
            if tracer.enabled:
                tracer.metrics.record("cache.misses")
            return None
        if kind == "exact":
            table = project(entry.table, key.output)
            stats.result_cache_hits += 1
            stats.rows_output += table.num_rows
        else:
            stats.subsumption_hits += 1
            stats.rows_refiltered += entry.table.num_rows
            # Re-filter with the canonical WHERE: it is equivalent to the
            # original but only references columns inside ``needed``, so a
            # contradiction-folded query can never read a column the
            # cached superset does not store.
            canonical, _ = rewrite_query(query)
            table = filtering.refilter(
                canonical.where, entry.table, list(key.output), stats, tracer,
                vectorize=vectorize,
            )
        stats.cache_saved_bytes += entry.source_bytes_read
        if tracer.enabled:
            tracer.event(
                "cache_hit",
                kind=kind,
                rows=table.num_rows,
                saved_bytes=entry.source_bytes_read,
            )
            tracer.metrics.record(
                "cache.hits" if kind == "exact" else "cache.subsumption_hits"
            )
            tracer.metrics.record("bytes.cache_saved", entry.source_bytes_read)
        return CacheServe(table, kind, entry.source_bytes_read, entry.afc_count)

    def plan_for(self, query: Query, key: QueryKey, tracer=NULL_TRACER):
        """The extraction plan for ``query``, memoized on its key.

        Keys normalize away syntactic differences exactly (the residual
        is the canonical rendering, the range part is the interval
        algebra), so two queries sharing a key have logically equivalent
        WHERE clauses and one plan answers both.
        """
        plan = self.plans.get(key)
        if plan is not None:
            if tracer.enabled:
                tracer.event("cache_hit", kind="plan")
                tracer.metrics.record("cache.plan_hits")
            return plan
        if tracer.enabled and getattr(self.dataset, "supports_tracing", False):
            plan = self.dataset.plan(query, tracer=tracer)
        else:
            plan = self.dataset.plan(query)
        self.plans.put(key, plan)
        return plan

    # -- population -----------------------------------------------------------

    def store(
        self,
        key: QueryKey,
        table: VirtualTable,
        source_bytes_read: int,
        afc_count: int,
        tracer=NULL_TRACER,
    ) -> None:
        """Remember a *complete, healthy* result.

        Callers must not store degraded/partial results or results
        produced while faults were being injected — the cache would then
        replay the damage to every later query (the gating lives at the
        call sites, which can see ``failed_nodes`` and the injector).
        """
        evicted = self.results.put(key, table, source_bytes_read, afc_count)
        if evicted and tracer.enabled:
            tracer.metrics.record("cache.evictions", evicted)

    # -- maintenance ----------------------------------------------------------

    def drop(self) -> None:
        """Empty both caches and reset their counters (``drop_caches``)."""
        self.results.clear()
        self.plans.clear()

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {"result": self.results.stats(), "plan": self.plans.stats()}
