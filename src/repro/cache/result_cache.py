"""Thread-safe, byte-budgeted LRU caches for query results and plans.

:class:`ResultCache` stores finished query result tables keyed by their
normalized :class:`~repro.cache.keys.QueryKey` and serves two kinds of
hits: **exact** (same key) and **subsumption** (the new query's predicate
implies a cached one's, so the answer is a re-filter of the cached
superset — see :func:`~repro.cache.keys.key_subsumes`).

:class:`PlanCache` memoizes extraction plans on the same keys, so
Find_File_Groups / chunk enumeration is paid once per query shape.

Concurrency contract: entries are built fully — table copied, frozen,
measured — before they are linked into the map under the lock, so a
concurrent reader can never observe a partially-populated entry.  Stored
arrays are marked read-only; serving shares them zero-copy and a caller
that tries to mutate a served column gets an immediate ``ValueError``
instead of silently corrupting the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..core.table import VirtualTable
from .keys import QueryKey, key_subsumes


def _freeze(table: VirtualTable) -> VirtualTable:
    """An immutable private copy of a result table, safe to share."""
    columns: Dict[str, np.ndarray] = {}
    for name in table.column_names:
        col = np.ascontiguousarray(table.column(name)).copy()
        col.setflags(write=False)
        columns[name] = col
    return VirtualTable(columns, order=list(table.column_names))


class CacheEntry:
    """One cached result with the metadata needed to serve and evict it."""

    __slots__ = (
        "key",
        "table",
        "columns",
        "nbytes",
        "source_bytes_read",
        "afc_count",
        "hits",
    )

    def __init__(
        self,
        key: QueryKey,
        table: VirtualTable,
        source_bytes_read: int,
        afc_count: int,
    ):
        self.key = key
        self.table = table
        self.columns: FrozenSet[str] = frozenset(table.column_names)
        self.nbytes = table.nbytes
        #: Bytes the cold execution read to produce this table — what a
        #: hit saves (``bytes.cache_saved`` / ``cache_saved_bytes``).
        self.source_bytes_read = source_bytes_read
        self.afc_count = afc_count
        self.hits = 0


class ResultCache:
    """LRU map of normalized query keys to frozen result tables."""

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        self.max_bytes = max(0, int(max_bytes))
        self._lock = threading.RLock()
        self._entries: "OrderedDict[QueryKey, CacheEntry]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.subsumption_hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup ---------------------------------------------------------------

    def lookup(
        self,
        key: QueryKey,
        needed_columns: FrozenSet[str],
        subsume: bool,
    ) -> Tuple[Optional[CacheEntry], str]:
        """``(entry, kind)`` for a query; kind is exact/subsume/miss.

        A subsumption candidate must also physically store every column
        the new query projects or filters on (``needed_columns``) — the
        re-filter cannot reference columns the cached table dropped.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                entry.hits += 1
                return entry, "exact"
            if subsume:
                # Most-recently-used first: recency correlates with reuse.
                for candidate in reversed(self._entries.values()):
                    if not needed_columns <= candidate.columns:
                        continue
                    if key_subsumes(candidate.key, key):
                        self._entries.move_to_end(candidate.key)
                        self.subsumption_hits += 1
                        candidate.hits += 1
                        return candidate, "subsume"
            self.misses += 1
            return None, "miss"

    # -- population -----------------------------------------------------------

    def put(
        self,
        key: QueryKey,
        table: VirtualTable,
        source_bytes_read: int = 0,
        afc_count: int = 0,
    ) -> int:
        """Insert a finished result; returns how many entries it evicted.

        The table is copied and frozen *before* the lock is taken, so the
        entry is complete the instant it becomes visible.  Results larger
        than the whole budget are not cached at all.
        """
        entry = CacheEntry(key, _freeze(table), source_bytes_read, afc_count)
        if entry.nbytes > self.max_bytes:
            return 0
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old.nbytes
            self._entries[key] = entry
            self.current_bytes += entry.nbytes
            evicted = 0
            while self.current_bytes > self.max_bytes and len(self._entries) > 1:
                _, victim = self._entries.popitem(last=False)
                self.current_bytes -= victim.nbytes
                evicted += 1
            self.evictions += evicted
            return evicted

    # -- maintenance ----------------------------------------------------------

    def resize(self, max_bytes: int) -> int:
        """Change the byte budget, evicting LRU entries that overflow."""
        with self._lock:
            self.max_bytes = max(0, int(max_bytes))
            evicted = 0
            while self.current_bytes > self.max_bytes and self._entries:
                _, victim = self._entries.popitem(last=False)
                self.current_bytes -= victim.nbytes
                evicted += 1
            self.evictions += evicted
            return evicted

    def clear(self) -> None:
        """Drop every entry and reset all counters to zero."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0
            self.hits = 0
            self.subsumption_hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "subsumption_hits": self.subsumption_hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class PlanCache:
    """Count-bounded LRU of normalized query keys to extraction plans.

    Plans are shared, not copied: every consumer treats
    :class:`~repro.core.afc.ExtractionPlan` as read-only (the planner
    builds it once and the extractor / services only iterate it).
    """

    def __init__(self, max_entries: int = 128):
        self.max_entries = max(0, int(max_entries))
        self._lock = threading.RLock()
        self._plans: "OrderedDict[QueryKey, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, key: QueryKey):
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: QueryKey, plan) -> int:
        if self.max_entries == 0:
            return 0
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            evicted = 0
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            return evicted

    def resize(self, max_entries: int) -> int:
        with self._lock:
            self.max_entries = max(0, int(max_entries))
            evicted = 0
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            return evicted

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._plans),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
