"""Command-line interface: the administrator's side of data virtualization.

The paper's workflow has a data-repository administrator writing a
descriptor and standing up data services from it.  This CLI covers that
workflow end to end::

    python -m repro validate  DESC.txt            # parse + semantic checks
    python -m repro check     DESC.txt --query "SELECT ..." --strict  # linter
    python -m repro inventory DESC.txt --root D --check   # files vs disk
    python -m repro codegen   DESC.txt -o gen.py  # inspect generated code
    python -m repro index-build DESC.txt --root D # build chunk summaries
    python -m repro query     DESC.txt "SELECT ..." --root D --format csv
    python -m repro cache stats DESC.txt --root D --query "SELECT ..." --repeat 3
    python -m repro sched stats DESC.txt --root D --query "bulk=SELECT ..." \
        --query "web:2=SELECT ..." --workers 2
    python -m repro trace     DESC.txt "SELECT ..." --root D -o trace.json
    python -m repro chaos     DESC.txt "SELECT ..." --root D --profile node-down
    python -m repro serve     DESC.txt --root D --node osu0 --port 7301
    python -m repro cluster   DESC.txt "SELECT ..." --root D
    python -m repro explain   DESC.txt "SELECT ..."
    python -m repro to-xml    DESC.txt            # XML embedding
    python -m repro from-xml  DESC.xml            # ...and back

``serve`` runs one data-source node as a standalone TCP server;
``cluster`` spawns one server per storage node, runs the query through
``repro.connect`` over real sockets, and tears the processes down.
Every command reads the descriptor from a file (or ``-`` for stdin).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .core.codegen import GeneratedDataset, generate_index_source
from .core.extractor import local_mount
from .core.planner import CompiledDataset
from .core.virtualizer import Virtualizer
from .errors import ReproError
from .index.summaries import MinMaxSummaries, build_summaries, summaries_path
from .metadata import parse_descriptor
from .metadata.xml_io import descriptor_to_xml, xml_to_descriptor


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _load_descriptor(path: str, dataset: Optional[str]):
    text = _read_text(path)
    if text.lstrip().startswith("<"):
        return xml_to_descriptor(text, dataset)
    return parse_descriptor(text, dataset)


def cmd_validate(args) -> int:
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    dataset = CompiledDataset(descriptor)
    print(f"descriptor OK: dataset {descriptor.name!r}")
    print(f"  schema {descriptor.schema.name!r}: "
          f"{len(descriptor.schema)} attributes "
          f"({', '.join(descriptor.schema.names)})")
    print(f"  storage: {len(descriptor.storage)} directories on nodes "
          f"{', '.join(descriptor.storage.nodes)}")
    print(f"  leaves: {', '.join(l.name for l in descriptor.leaves())}")
    print(f"  physical files: {len(dataset.files)}; "
          f"consistent groups: {len(dataset.groups)}")
    print(f"  index attributes: {', '.join(dataset.index_attrs) or '(none)'}"
          + (f" (stored: {', '.join(dataset.stored_index_attrs)})"
             if dataset.stored_index_attrs else ""))
    print(f"  expected data size: {dataset.total_data_bytes:,} bytes")
    for warning in dataset.warnings:
        print(f"  warning: {warning}")
    return 0


def cmd_check(args) -> int:
    """Static analysis: every descriptor (and query) finding at once.

    Exit codes: 0 clean, 1 any error, 3 warnings-only under ``--strict``
    (without ``--strict`` a warnings-only run still exits 0).
    """
    from .diag import Collector, analyze_query, lint_descriptor, lint_text
    from .metadata.xml_io import xml_to_descriptor as _from_xml

    text = _read_text(args.descriptor)
    source = args.descriptor if args.descriptor != "-" else "<stdin>"
    if text.lstrip().startswith("<"):
        # XML embedding: no source spans, but all semantic analyzers run.
        descriptor = _from_xml(text, args.dataset)
        collector = lint_descriptor(descriptor, Collector(source=source))
    else:
        collector = lint_text(text, args.dataset, source=source)
        descriptor = None
        if not collector.has_errors:
            descriptor = parse_descriptor(text, args.dataset, validate=False)

    for sql in args.query or []:
        if descriptor is None:
            print(
                f"note: skipping query analysis of {sql!r} "
                "(descriptor has errors)",
                file=sys.stderr,
            )
            continue
        query_collector = analyze_query(
            descriptor, sql, explain=getattr(args, "explain", False)
        )
        collector.extend(query_collector)

    if args.format == "json":
        print(collector.to_json())
    elif args.format == "sarif":
        print(collector.to_sarif())
    else:
        for diag in collector.sorted():
            print(diag.format())
        print(collector.summary())

    if collector.has_errors:
        return 1
    if args.strict and collector.warnings:
        return 3
    return 0


def cmd_inventory(args) -> int:
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    dataset = CompiledDataset(descriptor)
    mount = local_mount(args.root) if args.root else None
    problems = 0
    for file in dataset.files:
        implicit = ", ".join(
            f"{k}={v}" for k, v in sorted(file.env.items())
        )
        line = (f"{file.node}:{file.relpath}  {file.expected_size:>12,} B"
                f"  [{implicit}]")
        if args.check:
            if mount is None:
                print("error: --check requires --root", file=sys.stderr)
                return 2
            path = mount(file.node, file.relpath)
            if not os.path.exists(path):
                line += "  MISSING"
                problems += 1
            else:
                actual = os.path.getsize(path)
                if actual != file.expected_size:
                    line += f"  SIZE MISMATCH (actual {actual:,} B)"
                    problems += 1
                else:
                    line += "  ok"
        print(line)
    if args.check:
        total = len(dataset.files)
        print(f"\n{total - problems}/{total} files match the descriptor")
        return 1 if problems else 0
    return 0


def cmd_codegen(args) -> int:
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    source = generate_index_source(CompiledDataset(descriptor))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(source)
        print(f"wrote {len(source.splitlines())} lines to {args.output}")
    else:
        sys.stdout.write(source)
    return 0


def cmd_index_build(args) -> int:
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    dataset = CompiledDataset(descriptor)
    mount = local_mount(args.root)
    summaries = build_summaries(dataset, mount)
    output = args.output or summaries_path(args.root, descriptor.name)
    summaries.save(output)
    print(f"built {len(summaries)} chunk summaries over attributes "
          f"{', '.join(summaries.attrs)} -> {output}")
    return 0


def _make_virtualizer(args) -> Virtualizer:
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    summaries = None
    if getattr(args, "summaries", None):
        summaries = MinMaxSummaries.load(args.summaries)
    else:
        default = summaries_path(args.root, descriptor.name)
        if os.path.exists(default):
            summaries = MinMaxSummaries.load(default)
    return Virtualizer(
        descriptor,
        local_mount(args.root),
        use_codegen=not getattr(args, "interpreted", False),
        summaries=summaries,
    )


def cmd_verify_data(args) -> int:
    """Recompute chunk summaries and diff them against the persisted file.

    A mismatch means the data changed (or was corrupted) after the index
    was built — the summaries would then prune incorrectly.
    """
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    dataset = CompiledDataset(descriptor)
    mount = local_mount(args.root)
    path = args.summaries or summaries_path(args.root, descriptor.name)
    if not os.path.exists(path):
        print(f"error: no summary file at {path}; run index-build first",
              file=sys.stderr)
        return 2
    persisted = MinMaxSummaries.load(path)
    fresh = build_summaries(dataset, mount)
    mismatches = 0
    checked = 0
    for key, bounds in fresh._bounds.items():
        checked += 1
        old = persisted.bounds(key)
        if old is None:
            print(f"MISSING summary for chunk {key}")
            mismatches += 1
            continue
        for attr, (lo, hi) in bounds.items():
            if attr not in old or abs(old[attr][0] - lo) > 1e-9 or abs(
                old[attr][1] - hi
            ) > 1e-9:
                print(f"STALE  {key} {attr}: stored {old.get(attr)} "
                      f"!= actual ({lo}, {hi})")
                mismatches += 1
    extra = len(persisted) - sum(1 for k in fresh._bounds if k in persisted)
    print(f"checked {checked} chunks: {mismatches} mismatch(es)"
          + (f", {len(persisted) - checked} orphaned summaries"
             if len(persisted) > checked else ""))
    return 1 if mismatches or len(persisted) != checked else 0


def cmd_query(args) -> int:
    with _make_virtualizer(args) as v:
        table = v.query(args.sql)
        if args.format == "csv":
            table.to_csv(sys.stdout, limit=args.limit)
        elif args.format == "npz":
            if not args.output:
                print("error: --format npz requires -o", file=sys.stderr)
                return 2
            table.save_npz(args.output)
            print(f"wrote {table.num_rows} rows to {args.output}")
        else:
            widths = [max(len(n), 12) for n in table.column_names]
            print("  ".join(n.rjust(w) for n, w in
                            zip(table.column_names, widths)))
            shown = 0
            for row in table.rows():
                if args.limit is not None and shown >= args.limit:
                    print(f"... {table.num_rows - shown} more rows")
                    break
                print("  ".join(str(v)[:w].rjust(w)
                                for v, w in zip(row, widths)))
                shown += 1
            print(f"({table.num_rows} rows)")
    return 0


def cmd_cache(args) -> int:
    """Exercise the result/plan caches and report their counters.

    ``stats`` runs the given queries (each ``--repeat`` times) with
    caching enabled and prints the cache counters plus the bytes of disk
    I/O the warm runs avoided.  ``clear`` additionally drops the caches
    afterwards and prints the reset counters — the ``drop_caches``
    invalidation path, observable from the shell.
    """
    from .core.options import ExecOptions
    from .core.stats import IOStats

    if not args.query:
        print("error: pass at least one --query to exercise the cache",
              file=sys.stderr)
        return 2
    options = ExecOptions(
        cache_mode=args.mode,
        result_cache_bytes=args.cache_bytes,
        trace=False,
    )
    with _make_virtualizer(args) as v:
        stats = IOStats()
        for round_no in range(args.repeat):
            for sql in args.query:
                table = v.query(sql, stats=stats, options=options)
                print(f"round {round_no + 1}: {table.num_rows:>9} rows  {sql}")
        cache_stats = v.cache_stats() or {}
        result = cache_stats.get("result", {})
        plan = cache_stats.get("plan", {})
        print(f"\nresult cache: {result.get('entries', 0)} entries, "
              f"{result.get('bytes', 0):,} / {result.get('max_bytes', 0):,} B; "
              f"{result.get('hits', 0)} exact + "
              f"{result.get('subsumption_hits', 0)} subsumption hit(s), "
              f"{result.get('misses', 0)} miss(es), "
              f"{result.get('evictions', 0)} eviction(s)")
        print(f"plan cache:   {plan.get('entries', 0)} entries, "
              f"{plan.get('hits', 0)} hit(s), {plan.get('misses', 0)} miss(es)")
        print(f"disk I/O avoided: {stats.cache_saved_bytes:,} B "
              f"(read {stats.bytes_read:,} B cold)")
        if args.action == "clear":
            v.drop_caches()
            cleared = (v.cache_stats() or {}).get("result", {})
            print(f"caches cleared: {cleared.get('entries', 0)} entries, "
                  f"{cleared.get('hits', 0)} hits, "
                  f"{cleared.get('misses', 0)} misses")
    return 0


def cmd_sched(args) -> int:
    """Run a workload through the scheduler and print its statistics.

    Each ``--query`` is ``[TENANT[:PRIORITY]=]SQL`` (default tenant
    ``"default"``, priority 0); the whole mix is submitted up front
    (``--repeat`` times), so queue waits reflect real contention on
    ``--workers`` dispatch lanes.  Prints one line per query (rows,
    queue wait) and then the scheduler's counters, per-tenant lanes,
    and abandoned-thread ledger.
    """
    import re

    from .core.options import ExecOptions
    from .errors import AdmissionError
    from .sched import Scheduler
    from .storm.cluster import VirtualCluster
    from .storm.query_service import QueryService

    if not args.query:
        print("error: pass at least one --query to schedule",
              file=sys.stderr)
        return 2
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    dataset = GeneratedDataset(descriptor)
    cluster = VirtualCluster.for_storage(args.root, descriptor.storage)
    spec_re = re.compile(
        r"^(?P<tenant>[A-Za-z_][\w.-]*)(?::(?P<prio>\d+))?=(?P<sql>.+)$"
    )
    jobs = []
    for raw in args.query:
        match = spec_re.match(raw)
        if match:
            jobs.append((match.group("tenant"),
                         int(match.group("prio") or 0),
                         match.group("sql")))
        else:
            jobs.append(("default", 0, raw))
    base = ExecOptions(remote=False, admission=args.admission,
                       admission_budget=args.budget)
    failed = 0
    with QueryService(dataset, cluster) as service:
        with Scheduler(service, workers=args.workers) as sched:
            handles = []
            for _ in range(args.repeat):
                for tenant, prio, sql in jobs:
                    opts = base.replace(tenant=tenant, priority=prio)
                    try:
                        handles.append(
                            (tenant, prio, sql, sched.submit(sql, opts))
                        )
                    except AdmissionError as exc:
                        failed += 1
                        print(f"{tenant:>10}/{prio} REJECTED  {exc}")
            for tenant, prio, sql, handle in handles:
                try:
                    result = handle.result()
                except ReproError as exc:
                    failed += 1
                    print(f"{tenant:>10}/{prio} FAILED    "
                          f"{type(exc).__name__}: {exc}")
                else:
                    wait_ms = (handle.wait_seconds or 0.0) * 1000
                    print(f"{tenant:>10}/{prio} {result.num_rows:>9} rows  "
                          f"wait {wait_ms:8.1f} ms  {sql[:60]}")
            stats = sched.stats()
    print(f"\nworkers: {stats['workers']} "
          f"({stats['reserved_priority_workers']} reserved for priority)")
    for name, value in sorted(stats["counters"].items()):
        print(f"  {name:<28} {value}")
    for tenant, lane in stats["tenants"].items():
        print(f"  lane {tenant:<12} weight {lane['weight']:g}  "
              f"vtime {lane['vtime']:.3f}")
    for tenant, hist in sorted(stats["wait_seconds"].items()):
        print(f"  wait[{tenant}]: n={hist['count']} "
              f"mean={hist['mean'] * 1000:.1f}ms "
              f"max={(hist['max'] or 0) * 1000:.1f}ms")
    print(f"  threads abandoned: {stats['threads_abandoned']}")
    return 1 if failed else 0


def cmd_trace(args) -> int:
    """Run a query with span tracing on and export the timeline.

    Writes a chrome://tracing / Perfetto-loadable JSON file and prints
    the span tree with wall/CPU time per pipeline stage.
    """
    from .core.options import ExecOptions
    from .obs import Tracer, tree_summary, write_chrome_trace
    from .storm.cluster import VirtualCluster
    from .storm.query_service import QueryService

    descriptor = _load_descriptor(args.descriptor, args.dataset)
    summaries = None
    if args.summaries:
        summaries = MinMaxSummaries.load(args.summaries)
    else:
        default = summaries_path(args.root, descriptor.name)
        if os.path.exists(default):
            summaries = MinMaxSummaries.load(default)
    if args.interpreted:
        dataset: CompiledDataset = CompiledDataset(descriptor, summaries)
    else:
        dataset = GeneratedDataset(descriptor, summaries)
    cluster = VirtualCluster.for_storage(args.root, descriptor.storage)
    tracer = Tracer()
    options = ExecOptions(
        trace=tracer,
        remote=not args.local,
        num_clients=args.clients,
        agg_pushdown=not args.no_agg_pushdown,
        vectorize="off" if args.no_vectorize else "on",
    )
    with QueryService(dataset, cluster) as service:
        result = service.submit(args.sql, options)
    write_chrome_trace(tracer, args.output)
    print(tree_summary(tracer, min_fraction=args.min_percent / 100.0))
    print(result.summary())
    print(f"trace written to {args.output} "
          "(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def cmd_chaos(args) -> int:
    """Run a query under a named fault profile and report the degradation.

    Exit codes: 0 = full result despite faults, 3 = degraded result
    (some nodes lost), 1 = query failed outright.
    """
    from .core.options import ExecOptions
    from .errors import NodeFailureError
    from .faults import FaultInjector
    from .obs import Tracer
    from .storm.cluster import VirtualCluster
    from .storm.query_service import QueryService

    descriptor = _load_descriptor(args.descriptor, args.dataset)
    if args.interpreted:
        dataset: CompiledDataset = CompiledDataset(descriptor)
    else:
        dataset = GeneratedDataset(descriptor)
    cluster = VirtualCluster.for_storage(args.root, descriptor.storage)
    rules = _chaos_rules(args, cluster.node_names)
    if not rules:
        print("error: no fault rules; pass --profile and/or --rule",
              file=sys.stderr)
        return 2
    injector = FaultInjector(rules, seed=args.seed)
    tracer = Tracer("chaos")
    options = ExecOptions(
        remote=not args.local,
        num_clients=args.clients,
        retries=args.retries,
        retry_backoff=args.backoff,
        node_timeout=args.node_timeout,
        allow_partial=not args.no_partial,
        trace=tracer,
    )
    named = f" profile {args.profile!r}" if args.profile else ""
    print(f"chaos:{named} {len(rules)} rule(s), seed {args.seed}, "
          f"retries {args.retries}, backoff {args.backoff:g}s"
          + (f", node timeout {args.node_timeout:g}s"
             if args.node_timeout else ""))
    try:
        with QueryService(dataset, cluster, fault_injector=injector) as service:
            result = service.submit(args.sql, options)
    except NodeFailureError as exc:
        print(injector.report())
        print(f"query FAILED: {exc}", file=sys.stderr)
        return 1
    counters = tracer.metrics.as_dict()["counters"]
    print(injector.report())
    print(f"retries attempted: {counters.get('retries.attempted', 0)}; "
          f"nodes failed: {counters.get('nodes.failed', 0)}")
    if result.degraded:
        print(f"DEGRADED result: lost {', '.join(result.failed_nodes)}; "
              f"{result.num_rows} rows from the surviving nodes")
    else:
        print(f"full result survived the fault profile: "
              f"{result.num_rows} rows")
    print(result.summary())
    return 3 if result.degraded else 0


def _chaos_rules(args, node_names):
    """Shared --profile/--rule parsing (chaos, serve, cluster)."""
    from .faults import parse_rule, profile_rules

    rules = []
    if args.profile:
        rules.extend(profile_rules(args.profile, node_names))
    for spec in args.rule or []:
        rules.append(parse_rule(spec))
    return rules


def cmd_serve(args) -> int:
    """Run one data-source node as a standalone TCP server.

    This is the out-of-process deployment of the paper's per-node data
    source service: the coordinator (``repro.connect("tcp://...")`` or
    ``repro cluster``) ships extraction plans here over the wire
    protocol and gets columnar row batches back.  ``--port 0`` binds an
    ephemeral port; ``--port-file`` publishes the bound address for
    whoever spawned us.  Fault rules (``--profile`` / ``--rule``) are
    injected server-side — disk chaos and ``conn-reset`` live with the
    process that owns the data.
    """
    import signal

    from .faults import FaultInjector
    from .net.server import NodeServer

    descriptor = _load_descriptor(args.descriptor, args.dataset)
    if args.node not in descriptor.storage.nodes:
        print(f"error: node {args.node!r} is not in the descriptor's "
              f"storage nodes {list(descriptor.storage.nodes)}",
              file=sys.stderr)
        return 2
    rules = _chaos_rules(args, [args.node])
    injector = FaultInjector(rules, seed=args.seed) if rules else None
    server = NodeServer(
        args.node,
        args.root,
        dataset=descriptor.name,
        fault_injector=injector,
        host=args.host,
        port=args.port,
    )
    if args.port_file:
        server.write_port_file(args.port_file)
    host, port = server.address
    print(f"node {args.node!r} of dataset {descriptor.name!r} serving on "
          f"{host}:{port}" + (f" with {len(rules)} fault rule(s)"
                              if rules else ""),
          flush=True)
    signal.signal(signal.SIGTERM, lambda *_: server.shutdown())
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    return 0


def cmd_cluster(args) -> int:
    """Spawn a real node-server process per storage node and query it.

    The full out-of-process STORM path: ``repro serve`` subprocesses,
    discovery over port files, ``repro.connect("tcp://...")``, one query
    through the failure-aware pipeline, teardown.  Exit codes match
    ``chaos``: 0 full result, 3 degraded result, 1 failed query.
    """
    from .client import connect
    from .core.options import ExecOptions
    from .errors import NodeFailureError
    from .net.procs import ProcessCluster
    from .obs import Tracer, write_chrome_trace

    tracer = Tracer("cluster")
    options = ExecOptions(
        remote=not args.local,
        num_clients=args.clients,
        retries=args.retries,
        retry_backoff=args.backoff,
        node_timeout=args.node_timeout,
        allow_partial=not args.no_partial,
        connect_timeout=args.connect_timeout,
        trace=tracer,
        agg_pushdown=not args.no_agg_pushdown,
        vectorize="off" if args.no_vectorize else "on",
    )
    cluster = ProcessCluster(
        args.descriptor if args.descriptor != "-" else _read_text("-"),
        args.root,
        rules=args.rule or [],
        profile=args.profile,
        seed=args.seed,
        startup_timeout=args.startup_timeout,
    )
    with cluster:
        addresses = ", ".join(
            f"{node}={host}:{port}"
            for node, (host, port) in sorted(cluster.addresses.items())
        )
        print(f"cluster up: {len(cluster.nodes)} node process(es) "
              f"({addresses})")
        try:
            with connect(cluster, options=options) as client:
                result = client.submit(args.sql)
        except NodeFailureError as exc:
            print(f"query FAILED: {exc}", file=sys.stderr)
            return 1
    if args.trace_out:
        write_chrome_trace(tracer, args.trace_out)
        print(f"trace written to {args.trace_out}")
    if result.degraded:
        print(f"DEGRADED result: lost {', '.join(result.failed_nodes)}; "
              f"{result.num_rows} rows from the surviving nodes")
    else:
        print(f"full result: {result.num_rows} rows over real sockets")
    print(result.summary())
    return 3 if result.degraded else 0


def cmd_explain(args) -> int:
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    dataset = GeneratedDataset(descriptor)
    print(dataset.explain(args.sql))
    return 0


def cmd_to_xml(args) -> int:
    descriptor = _load_descriptor(args.descriptor, args.dataset)
    sys.stdout.write(descriptor_to_xml(descriptor))
    sys.stdout.write("\n")
    return 0


def cmd_from_xml(args) -> int:
    descriptor = xml_to_descriptor(_read_text(args.descriptor), args.dataset)
    print(descriptor.schema.to_text())
    print(descriptor.storage.to_text())
    print(f"// layout: {len(descriptor.leaves())} leaf dataset(s); "
          "re-serialise with to-xml")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic data virtualization for flat-file datasets",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, root=False):
        p.add_argument("descriptor", help="descriptor file (text or XML, - for stdin)")
        p.add_argument("--dataset", help="dataset name when several are declared")
        if root:
            p.add_argument("--root", required=True,
                           help="virtual cluster root directory")

    p = sub.add_parser("validate", help="parse and validate a descriptor")
    common(p)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "check",
        help="lint a descriptor (and optionally queries) with the "
        "static analyzers",
    )
    common(p)
    p.add_argument("--query", action="append", metavar="SQL",
                   help="also analyze this query against the descriptor; "
                        "repeatable")
    p.add_argument("--strict", action="store_true",
                   help="exit 3 when there are warnings (errors always "
                        "exit 1)")
    p.add_argument("--format", choices=["text", "json", "sarif"],
                   default="text",
                   help="diagnostic output format (default text); sarif "
                        "emits a SARIF 2.1.0 log for CI annotations")
    p.add_argument("--explain", action="store_true",
                   help="also report each equivalence-preserving rewrite "
                        "the normalizer applies to --query predicates "
                        "(RW4xx audit entries)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("inventory", help="list the descriptor's physical files")
    common(p)
    p.add_argument("--root", help="cluster root (for --check)")
    p.add_argument("--check", action="store_true",
                   help="verify files exist with the expected sizes")
    p.set_defaults(func=cmd_inventory)

    p = sub.add_parser("codegen", help="emit the generated index module")
    common(p)
    p.add_argument("-o", "--output", help="write to file instead of stdout")
    p.set_defaults(func=cmd_codegen)

    p = sub.add_parser("index-build", help="build and persist chunk summaries")
    common(p, root=True)
    p.add_argument("-o", "--output", help="summary file path")
    p.set_defaults(func=cmd_index_build)

    p = sub.add_parser(
        "verify-data",
        help="recompute chunk summaries and diff against the stored index",
    )
    common(p, root=True)
    p.add_argument("--summaries", help="summary file (default: sidecar)")
    p.set_defaults(func=cmd_verify_data)

    p = sub.add_parser("query", help="run a SQL query")
    common(p, root=True)
    p.add_argument("sql", help="SELECT ... FROM ... [WHERE ...]")
    p.add_argument("--limit", type=int, help="print at most N rows")
    p.add_argument("--format", choices=["table", "csv", "npz"],
                   default="table")
    p.add_argument("-o", "--output", help="output file for --format npz")
    p.add_argument("--summaries", help="chunk summary file to prune with")
    p.add_argument("--interpreted", action="store_true",
                   help="use the interpreted planner instead of codegen")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "cache",
        help="run queries against the result/plan caches and report counters",
    )
    p.add_argument("action", choices=["stats", "clear"],
                   help="stats: run the workload and print cache counters; "
                        "clear: also drop the caches and show the reset")
    common(p, root=True)
    p.add_argument("--query", action="append", metavar="SQL",
                   help="query to run; repeatable (the workload)")
    p.add_argument("--repeat", type=int, default=2,
                   help="how many times to run the whole workload "
                        "(default 2: one cold round, one warm)")
    p.add_argument("--mode", choices=["exact", "subsume"], default="subsume",
                   help="cache mode (default subsume)")
    p.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                   help="result cache budget in bytes (default 64 MiB)")
    p.add_argument("--summaries", help="chunk summary file to prune with")
    p.add_argument("--interpreted", action="store_true",
                   help="use the interpreted planner instead of codegen")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "sched",
        help="run a workload through the scheduler and print its stats",
    )
    p.add_argument("action", choices=["stats"],
                   help="stats: submit the workload and print queue/"
                        "admission/wait statistics")
    common(p, root=True)
    p.add_argument("--query", action="append",
                   metavar="[TENANT[:PRIO]=]SQL",
                   help="query to schedule, optionally tagged with a "
                        "tenant and priority; repeatable (the workload)")
    p.add_argument("--repeat", type=int, default=1,
                   help="submit the whole workload N times (default 1)")
    p.add_argument("--workers", type=int, default=2,
                   help="scheduler dispatch workers (default 2)")
    p.add_argument("--budget", type=float, default=None,
                   help="admission budget in simulated seconds "
                        "(default: no admission control)")
    p.add_argument("--admission", choices=["reject", "queue"],
                   default="reject",
                   help="over-budget handling (default reject)")
    p.set_defaults(func=cmd_sched)

    p = sub.add_parser(
        "trace", help="run a query with tracing and export the timeline"
    )
    common(p, root=True)
    p.add_argument("sql", help="SELECT ... FROM ... [WHERE ...]")
    p.add_argument("-o", "--output", default="trace.json",
                   help="chrome-trace JSON output path (default trace.json)")
    p.add_argument("--clients", type=int, default=1,
                   help="number of destination clients for partitioning")
    p.add_argument("--local", action="store_true",
                   help="co-located client: skip partition/mover stages")
    p.add_argument("--min-percent", type=float, default=1.0,
                   help="hide spans below this %% of total time in the "
                        "printed tree (0 shows everything; the JSON always "
                        "has all spans)")
    p.add_argument("--summaries", help="chunk summary file to prune with")
    p.add_argument("--interpreted", action="store_true",
                   help="use the interpreted planner instead of codegen")
    p.add_argument("--no-agg-pushdown", action="store_true",
                   help="aggregate at the coordinator instead of per node "
                        "(ablation; ships every filtered row)")
    p.add_argument("--no-vectorize", action="store_true",
                   help="interpret the WHERE per block instead of the "
                        "compiled batch kernel (ablation; identical rows)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "chaos",
        help="run a query under a fault profile and report the degradation",
    )
    common(p, root=True)
    p.add_argument("sql", help="SELECT ... FROM ... [WHERE ...]")
    p.add_argument("--profile",
                   help="named fault profile (node-down, flaky-open, "
                        "flaky-reads, slow-node, tail-failure)")
    p.add_argument("--rule", action="append",
                   help="extra fault rule kind[:node[:path[:key=val,...]]]; "
                        "repeatable")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-injection RNG seed (default 0)")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per failed node (default 2)")
    p.add_argument("--backoff", type=float, default=0.01,
                   help="base retry backoff seconds, doubling per retry "
                        "(default 0.01)")
    p.add_argument("--node-timeout", type=float,
                   help="seconds before one extraction attempt is "
                        "abandoned as hung")
    p.add_argument("--no-partial", action="store_true",
                   help="fail the query instead of returning a degraded "
                        "result when a node is lost")
    p.add_argument("--clients", type=int, default=1,
                   help="number of destination clients for partitioning")
    p.add_argument("--local", action="store_true",
                   help="co-located client: skip partition/mover stages")
    p.add_argument("--interpreted", action="store_true",
                   help="use the interpreted planner instead of codegen")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="run one data-source node as a standalone TCP server",
    )
    common(p, root=True)
    p.add_argument("--node", required=True,
                   help="storage node this server owns (e.g. osu0)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port; 0 picks an ephemeral port (default)")
    p.add_argument("--port-file",
                   help="write the bound 'host port' here for discovery")
    p.add_argument("--profile",
                   help="server-side fault profile (node-down, flaky-open, "
                        "flaky-reads, slow-node, tail-failure)")
    p.add_argument("--rule", action="append",
                   help="server-side fault rule "
                        "kind[:node[:path[:key=val,...]]]; repeatable "
                        "(conn-reset:osu0 drops connections mid-response)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-injection RNG seed (default 0)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "cluster",
        help="spawn a node-server process per storage node and run a "
        "query over real sockets",
    )
    common(p, root=True)
    p.add_argument("sql", help="SELECT ... FROM ... [WHERE ...]")
    p.add_argument("--profile",
                   help="fault profile injected into every node server")
    p.add_argument("--rule", action="append",
                   help="fault rule forwarded to every node server; "
                        "repeatable")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-injection RNG seed (default 0)")
    p.add_argument("--retries", type=int, default=2,
                   help="retries per failed node (default 2)")
    p.add_argument("--backoff", type=float, default=0.01,
                   help="base retry backoff seconds, doubling per retry "
                        "(default 0.01)")
    p.add_argument("--node-timeout", type=float,
                   help="seconds before one extraction attempt is "
                        "abandoned as hung")
    p.add_argument("--connect-timeout", type=float, default=5.0,
                   help="seconds one TCP dial may take (default 5)")
    p.add_argument("--no-partial", action="store_true",
                   help="fail the query instead of returning a degraded "
                        "result when a node is lost")
    p.add_argument("--clients", type=int, default=1,
                   help="number of destination clients for partitioning")
    p.add_argument("--local", action="store_true",
                   help="co-located client: skip partition/mover stages")
    p.add_argument("--startup-timeout", type=float, default=30.0,
                   help="seconds to wait for all node servers to bind "
                        "(default 30)")
    p.add_argument("--trace-out",
                   help="also write a chrome-trace JSON of the run here")
    p.add_argument("--no-agg-pushdown", action="store_true",
                   help="aggregate at the coordinator instead of per node "
                        "(ablation; ships every filtered row)")
    p.add_argument("--no-vectorize", action="store_true",
                   help="interpret the WHERE per block instead of the "
                        "compiled batch kernel (ablation; identical rows)")
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("explain", help="show the plan for a query")
    common(p)
    p.add_argument("sql")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("to-xml", help="serialise a descriptor to XML")
    common(p)
    p.set_defaults(func=cmd_to_xml)

    p = sub.add_parser("from-xml", help="summarise an XML descriptor")
    common(p)
    p.set_defaults(func=cmd_from_xml)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
