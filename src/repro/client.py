"""``repro.connect``: one client API over both STORM deployments.

The query pipeline is identical whether the data-source services run in
this process (the original simulation) or as real node-server processes
reached over TCP (:mod:`repro.net`); only the transport differs.
:func:`connect` hides that choice behind a URL::

    import repro

    # In-process: node directories under one root.
    with repro.connect("local:///data/ipars", descriptor=desc) as db:
        table = db.query("SELECT X, Y FROM IparsData WHERE TIME > 100")

    # Real processes: node servers started with `repro serve` (or
    # `repro cluster`, or net.ProcessCluster).
    with repro.connect("tcp://127.0.0.1:7301,127.0.0.1:7302",
                       descriptor=desc) as db:
        table = db.query("SELECT X, Y FROM IparsData WHERE TIME > 100")

A :class:`Client` answers ``query`` (a table), ``submit`` (the full
:class:`~repro.storm.query_service.QueryResult`), and ``query_iter``
(batches), all through the same failure-aware
:class:`~repro.storm.query_service.QueryService` — retries, timeouts,
degraded results, tracing, and the result cache apply unchanged on both
transports.  ``Virtualizer.query`` and ``QueryService.submit`` remain
supported entry points; ``connect`` is the preferred front door.
"""

from __future__ import annotations

import os
import threading
from typing import List, Optional, Tuple, Union

from .core.codegen import GeneratedDataset
from .core.options import ExecOptions
from .core.table import VirtualTable
from .core.virtualizer import _batched
from .errors import StormError
from .sql.functions import FunctionRegistry
from .storm.cluster import VirtualCluster
from .storm.query_service import QueryResult, QueryService

__all__ = ["Client", "connect", "parse_url"]


def parse_url(url: str) -> Tuple[str, str]:
    """Split a transport URL into ``(scheme, rest)``.

    ``local://<root>`` and ``tcp://host:port[,host:port...]`` are the
    two supported schemes; a bare path is shorthand for ``local://``.
    """
    if "://" not in url:
        return ("local", url)
    scheme, _, rest = url.partition("://")
    if scheme not in ("local", "tcp"):
        raise StormError(
            f"unsupported transport scheme {scheme!r} in {url!r} "
            "(expected local:// or tcp://)"
        )
    return (scheme, rest)


def _parse_addresses(rest: str) -> List[Tuple[str, int]]:
    out = []
    for part in rest.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, port = part.rpartition(":")
        if not host or not port.isdigit():
            raise StormError(
                f"bad tcp:// address {part!r} (expected host:port)"
            )
        out.append((host, int(port)))
    if not out:
        raise StormError("tcp:// URL lists no addresses")
    return out


def _load_descriptor(descriptor: str) -> str:
    """Descriptor text, from text or a path to a descriptor file."""
    if "\n" not in descriptor and os.path.exists(descriptor):
        with open(descriptor) as handle:
            return handle.read()
    return descriptor


class Client:
    """A connected STORM endpoint; build with :func:`connect`."""

    def __init__(self, service: QueryService, options: ExecOptions, url: str):
        #: The underlying query service; benchmarks and tooling may use
        #: it directly (e.g. ``measure_storm(client.service, ...)``).
        self.service = service
        #: Base options from connect(); per-call options override them.
        self.options = options
        self.url = url
        self._closed = False
        self._scheduler = None
        self._scheduler_lock = threading.Lock()

    # -- querying ------------------------------------------------------------

    def _opts(self, options: Optional[ExecOptions]) -> ExecOptions:
        return options if options is not None else self.options

    @property
    def scheduler(self):
        """The client's :class:`~repro.sched.Scheduler`, built lazily.

        Every ``submit``/``query`` routes through it, so tenants,
        priorities, quotas, and cancellation work identically on the
        ``local://`` and ``tcp://`` transports — over TCP the client is
        the coordinator, so a process cluster gets the same fairness.
        Dispatch workers only start once a query actually queues;
        ``scheduler="off"`` queries run inline.
        """
        with self._scheduler_lock:
            if self._scheduler is None:
                from .sched import Scheduler

                self._scheduler = Scheduler(
                    self.service,
                    workers=self.options.scheduler_workers,
                )
            return self._scheduler

    def submit(
        self, sql, options: Optional[ExecOptions] = None
    ) -> QueryResult:
        """Run a query end-to-end; the full result with stats and trace."""
        return self.scheduler.run(sql, self._opts(options))

    def schedule(self, sql, options: Optional[ExecOptions] = None):
        """Queue a query without blocking; returns its
        :class:`~repro.sched.QueryHandle` (``.result()``, ``.cancel()``)."""
        return self.scheduler.submit(sql, self._opts(options))

    def query(
        self, sql, options: Optional[ExecOptions] = None
    ) -> VirtualTable:
        """Run a query; just the virtual table."""
        return self.submit(sql, options).table

    def query_iter(self, sql, options: Optional[ExecOptions] = None):
        """Run a query; yield the result as batch-sized tables."""
        opts = self._opts(options)
        return _batched(self.submit(sql, opts).table, opts.batch_rows)

    # -- management ----------------------------------------------------------

    @property
    def transport(self):
        return self.service.transport

    @property
    def node_names(self) -> List[str]:
        transport = self.service.transport
        names = getattr(transport, "node_names", None)
        if names is not None:
            return list(names)
        return list(self.service.cluster.node_names)

    def drop_caches(self) -> None:
        """Cold-start every cache, including remote node servers'."""
        self.service.drop_caches()

    def cache_stats(self):
        return self.service.cache_stats()

    def sched_stats(self):
        """Scheduler queue/admission/wait metrics (``repro sched stats``)."""
        return self.scheduler.stats()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            with self._scheduler_lock:
                scheduler, self._scheduler = self._scheduler, None
            if scheduler is not None:
                scheduler.close()
            self.service.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<Client {self.url!r} [{state}]>"


def connect(
    target,
    descriptor: Optional[str] = None,
    *,
    options: Optional[ExecOptions] = None,
    functions: Optional[FunctionRegistry] = None,
    fault_injector=None,
    **exec_options,
) -> Client:
    """Open a :class:`Client` for a ``local://`` or ``tcp://`` endpoint.

    ``target`` is a URL (``local://<root>``, ``tcp://host:port,...``), a
    bare directory path (treated as ``local://``), or a running
    :class:`~repro.net.procs.ProcessCluster`.  ``descriptor`` (text or a
    file path) is required for URLs — the coordinator plans from it; a
    ProcessCluster carries its own.  Remaining keyword arguments are
    :class:`~repro.core.options.ExecOptions` fields forming the
    client-wide defaults, e.g. ``connect(url, desc, retries=2,
    allow_partial=True)``; pass ``options=`` to supply a prebuilt
    ExecOptions instead (the two are mutually exclusive).

    ``fault_injector`` applies coordinator-side on both transports
    (mounts and mover locally; connection dialing over tcp).  Node
    servers own their disk/response chaos via ``repro serve``'s
    ``--rule`` flags.
    """
    if options is not None and exec_options:
        raise StormError(
            "pass either options=ExecOptions(...) or individual "
            "ExecOptions fields, not both"
        )
    opts = options if options is not None else ExecOptions(**exec_options)

    # A ProcessCluster (duck-typed: url + descriptor_text) brings its
    # own descriptor and addresses.
    cluster_descriptor = getattr(target, "descriptor_text", None)
    if cluster_descriptor is not None:
        url = target.url
        if descriptor is None:
            descriptor = cluster_descriptor
    else:
        url = str(target)
    if descriptor is None:
        raise StormError(
            "connect() needs the dataset descriptor (text or path) to plan"
        )
    text = _load_descriptor(descriptor)
    dataset = GeneratedDataset(text)

    scheme, rest = parse_url(url)
    if scheme == "local":
        if not rest:
            raise StormError("local:// URL names no root directory")
        cluster = VirtualCluster.for_storage(
            rest, dataset.descriptor.storage
        )
        service = QueryService(
            dataset,
            cluster,
            functions=functions,
            fault_injector=fault_injector,
        )
        return Client(service, opts, url)

    from .net.client import TcpTransport

    transport = TcpTransport(
        _parse_addresses(rest),
        options=opts,
        fault_injector=fault_injector,
        expected_dataset=dataset.descriptor.name,
    )
    missing = set(dataset.descriptor.storage.nodes) - set(
        transport.node_names
    )
    if missing:
        transport.close()
        raise StormError(
            f"cluster at {url!r} serves no node(s) {sorted(missing)} "
            f"required by dataset {dataset.descriptor.name!r}"
        )
    service = QueryService(
        dataset,
        functions=functions,
        fault_injector=fault_injector,
        transport=transport,
    )
    return Client(service, opts, url)
