"""Virtualization core: the paper's primary contribution.

Strips and physical files (compile-time geometry), the two-step
Find_File_Groups / Process_File_Groups analysis, aligned file chunks,
query planning, code generation of specialised index functions, and the
chunk extractor.
"""

from .afc import AlignedFileChunkSet, ChunkRef, ExtractionPlan, InnerVar
from .aggregate import (
    AggregateSpec,
    aggregate_rows,
    aggregate_spec,
    finalize,
    merge_partials,
    partial_aggregate,
    summary_answer,
)
from .analysis import (
    Alignment,
    ChunkSummaries,
    compute_alignment,
    consistent_group,
    enumerate_afcs,
    find_file_groups,
    match_file,
)
from .codegen import GeneratedDataset, generate_index_source
from .extractor import Extractor, Mount, local_mount
from .options import DEFAULT_OPTIONS, ExecOptions
from .planner import CompiledDataset, StaticGroup
from .stats import IOStats
from .strips import (
    LoopDim,
    PhysicalFile,
    Strip,
    build_strips,
    enumerate_files,
    row_variable_order,
)
from .table import VirtualTable, concat_tables
from .virtualizer import Virtualizer, open_dataset

__all__ = [
    "AggregateSpec",
    "AlignedFileChunkSet",
    "Alignment",
    "ChunkRef",
    "ChunkSummaries",
    "CompiledDataset",
    "DEFAULT_OPTIONS",
    "ExecOptions",
    "ExtractionPlan",
    "Extractor",
    "GeneratedDataset",
    "IOStats",
    "InnerVar",
    "LoopDim",
    "Mount",
    "PhysicalFile",
    "StaticGroup",
    "Strip",
    "VirtualTable",
    "Virtualizer",
    "aggregate_rows",
    "aggregate_spec",
    "build_strips",
    "compute_alignment",
    "concat_tables",
    "consistent_group",
    "enumerate_afcs",
    "enumerate_files",
    "finalize",
    "find_file_groups",
    "generate_index_source",
    "local_mount",
    "match_file",
    "merge_partials",
    "open_dataset",
    "partial_aggregate",
    "row_variable_order",
    "summary_answer",
]
