"""Aligned file chunks — the paper's central runtime data structure.

Section 4 of the paper defines an aligned file chunk set as::

    {num_rows, {File_1, Offset_1, Num_Bytes_1}, ...,
               {File_m, Offset_m, Num_Bytes_m}}

``num_rows`` rows of the virtual table are produced by reading, for each
member chunk ``i``, ``num_rows * Num_Bytes_i`` bytes starting at
``Offset_i`` and zipping the resulting record streams.  We generalise
"file" to "strip" (see DESIGN.md decision 1) so that layouts storing each
variable as an array contribute one chunk per variable from the *same*
file; for the paper's example layouts the two notions coincide.

In addition to the byte geometry, our AFCs carry the information needed to
materialise *implicit attributes* as row values: constants (from binding
variables and chunk variables) and inner loop variables that vary within
the chunk in a known repeat/tile pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .strips import Strip

if TYPE_CHECKING:  # pragma: no cover - avoid import at module load
    from .aggregate import AggregateSpec


@dataclass(frozen=True)
class ChunkRef:
    """One member chunk of an AFC: a contiguous slice of one strip."""

    node: str
    path: str  # dataset-relative path (resolved against a mount at read time)
    offset: int
    bytes_per_row: int  # the paper's Num_Bytes_i
    strip: Strip

    @property
    def key(self) -> Tuple[str, str, int]:
        """Stable identity used by persistent chunk summaries."""
        return (self.node, self.path, self.offset)

    def total_bytes(self, num_rows: int) -> int:
        return num_rows * self.bytes_per_row

    def __str__(self) -> str:
        return f"{{{self.path}, {self.offset}, {self.bytes_per_row}}}"


@dataclass(frozen=True)
class InnerVar:
    """A loop variable that varies *within* a chunk.

    Row ``r`` (0-based) of the chunk has value::

        start + step * ((r // repeat) % count)

    i.e. values repeat in blocks of ``repeat`` rows and cycle every
    ``repeat * count`` rows — the standard row-major tile/repeat pattern.
    """

    name: str
    start: int
    step: int
    count: int
    repeat: int

    def materialise(self, num_rows: int) -> np.ndarray:
        ordinals = (np.arange(num_rows) // self.repeat) % self.count
        return self.start + self.step * ordinals

    @property
    def interval(self) -> Tuple[int, int]:
        return (self.start, self.start + self.step * (self.count - 1))


@dataclass(frozen=True)
class AlignedFileChunkSet:
    """One aligned file chunk set (an "AFC" in the paper's terminology)."""

    num_rows: int
    chunks: Tuple[ChunkRef, ...]
    constants: Tuple[Tuple[str, int], ...] = ()
    inner_vars: Tuple[InnerVar, ...] = ()

    @property
    def constant_map(self) -> Dict[str, int]:
        return dict(self.constants)

    def implicit_columns(self, needed: Sequence[str]) -> Dict[str, np.ndarray]:
        """Materialise requested implicit attributes as full columns."""
        out: Dict[str, np.ndarray] = {}
        constants = self.constant_map
        inner = {iv.name: iv for iv in self.inner_vars}
        for name in needed:
            if name in constants:
                out[name] = np.full(self.num_rows, constants[name])
            elif name in inner:
                out[name] = inner[name].materialise(self.num_rows)
        return out

    def implicit_bounds(self) -> Dict[str, Tuple[int, int]]:
        """(min, max) of every implicit attribute of this AFC."""
        out = {name: (v, v) for name, v in self.constants}
        for iv in self.inner_vars:
            out[iv.name] = iv.interval
        return out

    def total_bytes(self) -> int:
        return sum(c.total_bytes(self.num_rows) for c in self.chunks)

    def __str__(self) -> str:
        members = ", ".join(str(c) for c in self.chunks)
        return f"{{num_rows={self.num_rows}, {members}}}"


def split_afc(
    afc: AlignedFileChunkSet, max_rows: int
) -> List[AlignedFileChunkSet]:
    """Split an AFC into sub-chunks of at most ``max_rows`` rows.

    Splitting happens along the outermost inner variable: each of its
    value segments maps to a contiguous run of records in every member
    chunk, so sub-chunk offsets advance by ``rows * bytes_per_row`` and
    correctness is unaffected.  When a single outer value still exceeds
    the cap, that value is pinned as a constant and the next inner
    variable is split recursively.

    Use cases: bounding extraction buffer sizes, finer-grained chunk
    summaries, and overlapping I/O with filtering in streaming clients.
    """
    if max_rows < 1:
        raise ValueError("max_rows must be positive")
    if afc.num_rows <= max_rows or not afc.inner_vars:
        return [afc]

    outer = afc.inner_vars[0]
    rest = afc.inner_vars[1:]

    if outer.repeat > max_rows:
        # Even one outer value is too big: pin each value, recurse inward.
        out: List[AlignedFileChunkSet] = []
        for ordinal in range(outer.count):
            value = outer.start + outer.step * ordinal
            sub = AlignedFileChunkSet(
                num_rows=outer.repeat,
                chunks=tuple(
                    ChunkRef(
                        c.node,
                        c.path,
                        c.offset + ordinal * outer.repeat * c.bytes_per_row,
                        c.bytes_per_row,
                        c.strip,
                    )
                    for c in afc.chunks
                ),
                constants=afc.constants + ((outer.name, value),),
                inner_vars=rest,
            )
            out.extend(split_afc(sub, max_rows))
        return out

    values_per_piece = max(1, max_rows // outer.repeat)
    out = []
    for first in range(0, outer.count, values_per_piece):
        count = min(values_per_piece, outer.count - first)
        rows = count * outer.repeat
        piece_outer = InnerVar(
            outer.name,
            outer.start + outer.step * first,
            outer.step,
            count,
            outer.repeat,
        )
        out.append(
            AlignedFileChunkSet(
                num_rows=rows,
                chunks=tuple(
                    ChunkRef(
                        c.node,
                        c.path,
                        c.offset + first * outer.repeat * c.bytes_per_row,
                        c.bytes_per_row,
                        c.strip,
                    )
                    for c in afc.chunks
                ),
                constants=afc.constants,
                inner_vars=(piece_outer,) + rest,
            )
        )
    return out


@dataclass
class ExtractionPlan:
    """Everything the extractor needs to answer one query.

    For aggregate queries ``output`` lists the *base row* columns (group
    keys plus aggregate arguments) and ``aggregate`` carries the
    reduction to fold them through; data-source services then return
    partial state frames instead of rows (see :mod:`repro.core.aggregate`).
    """

    afcs: List[AlignedFileChunkSet]
    needed: List[str]  # columns to materialise (projection + WHERE refs)
    output: List[str]  # final projection, in SELECT order
    where: Optional[object] = None  # residual predicate AST (applied to all rows)
    dtypes: Dict[str, np.dtype] = field(default_factory=dict)
    aggregate: Optional["AggregateSpec"] = None

    @property
    def planned_rows(self) -> int:
        return sum(a.num_rows for a in self.afcs)

    @property
    def planned_bytes(self) -> int:
        """Bytes the extractor will actually read: chunks storing no
        needed attribute are skipped (projection pushdown)."""
        needed = set(self.needed)
        total = 0
        for afc in self.afcs:
            for chunk in afc.chunks:
                if needed.intersection(chunk.strip.attrs):
                    total += chunk.total_bytes(afc.num_rows)
        return total
