"""Partial aggregation: the vectorised kernel behind aggregate pushdown.

An aggregate query (``COUNT``/``SUM``/``MIN``/``MAX``/``AVG``, optionally
``GROUP BY``) is planned as a *base row plan* — the grouping attributes
plus every aggregate argument — with an :class:`AggregateSpec` attached.
Each data-source node folds its extracted blocks into a **partial state
frame** instead of shipping rows; the coordinator merges the per-node
frames and finalises them into the result table.  A terabyte scan thus
returns kilobytes: the wire carries one state row per (node, group).

The state frame is an ordinary :class:`~repro.core.table.VirtualTable`
whose columns are the group keys plus one or two state columns per
aggregate item (``AVG`` travels as an exact (sum, count) pair; the
division happens once, at finalisation), so the existing wire encoding of
result tables serialises partial aggregates with no new frame types.

Merging is exact by construction: COUNT and SUM states add, MIN/MAX
states take min/max, and AVG divides only after every partial sum and
count has been combined — a merge of partials can never drift from a
single-pass aggregation the way a mean-of-means would.

Semantics notes (docs/language.md):

* No attribute is ever NULL in this storage model, so ``COUNT(attr)``
  equals ``COUNT(*)`` and SUM/MIN/MAX/AVG never skip rows.
* A query matching zero rows returns a **zero-row** table — including
  ungrouped aggregates, where SQL would return one all-NULL row.  With
  no NULL representation, a zero-row frame is the only shape that keeps
  dtypes stable and merges associative.
* Result rows are ordered by the group key ascending (deterministic
  regardless of node count, thread interleaving, or transport).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import QueryValidationError
from ..sql.ast import Aggregate, BoolLiteral, Query
from ..sql.typecheck import (
    aggregate_output_dtype,
    aggregate_state_dtypes,
    sum_accumulator_dtype,
)
from .table import VirtualTable

__all__ = [
    "AggregateSpec",
    "aggregate_spec",
    "partial_aggregate",
    "merge_partials",
    "finalize",
    "aggregate_rows",
    "summary_answer",
]


@dataclass(frozen=True)
class AggregateSpec:
    """Everything execution needs to know about one aggregate query.

    ``group_by``    grouping attributes, in GROUP BY order.
    ``items``       aggregate select items, in SELECT order.
    ``output``      final output column labels, in SELECT order (bare
                    group attributes and aggregate labels like
                    ``SUM(SOIL)``); for a pure GROUP BY query (DISTINCT
                    semantics) this is just the selected group columns.
    """

    group_by: Tuple[str, ...]
    items: Tuple[Aggregate, ...]
    output: Tuple[str, ...]

    # -- state-frame schema ---------------------------------------------------

    def state_columns(
        self, dtypes: Mapping[str, np.dtype]
    ) -> List[Tuple[str, np.dtype]]:
        """(name, dtype) of every column of the partial state frame.

        State column names are index-based (``__agg0_sum`` ...) so two
        identical items — or a ``SUM(X)`` next to an ``AVG(X)`` — never
        collide, and can never shadow a schema attribute.
        """
        out: List[Tuple[str, np.dtype]] = [
            (name, np.dtype(dtypes.get(name, np.float64)))
            for name in self.group_by
        ]
        for i, item in enumerate(self.items):
            for suffix, dtype in self._state_parts(item, dtypes):
                out.append((f"__agg{i}_{suffix}", dtype))
        return out

    @staticmethod
    def _state_parts(
        item: Aggregate, dtypes: Mapping[str, np.dtype]
    ) -> List[Tuple[str, np.dtype]]:
        # The accumulator/output widths are the *static dtype policy*,
        # decided once in repro.sql.typecheck (shared with the RT305
        # overflow warning): int64 keeps integer sums exact, float64
        # keeps float partials merge-order independent for inputs whose
        # sums are representable.
        if item.func == "count":
            return [("count", np.dtype(np.int64))]
        col_dtype = np.dtype(dtypes.get(item.column, np.float64))
        if item.func in ("min", "max"):
            return [(item.func, col_dtype)]
        state = aggregate_state_dtypes(item.func, col_dtype)
        if item.func == "sum":
            return [("sum", state[0])]
        return [("sum", state[0]), ("count", state[1])]  # avg

    def empty_state(self, dtypes: Mapping[str, np.dtype]) -> VirtualTable:
        """The zero-row partial frame (what an empty node contributes)."""
        schema = self.state_columns(dtypes)
        return VirtualTable(
            {name: np.empty(0, dtype=dt) for name, dt in schema},
            order=[name for name, _ in schema],
        )

    def output_dtypes(
        self, dtypes: Mapping[str, np.dtype]
    ) -> Dict[str, np.dtype]:
        """dtype of every final output column, by label."""
        out: Dict[str, np.dtype] = {}
        for name in self.group_by:
            out[name] = np.dtype(dtypes.get(name, np.float64))
        for item in self.items:
            col_dtype = (
                None
                if item.column is None
                else np.dtype(dtypes.get(item.column, np.float64))
            )
            out[item.label] = aggregate_output_dtype(item.func, col_dtype)
        return {name: out[name] for name in self.output}


def aggregate_spec(query: Query, schema_names: Sequence[str]) -> AggregateSpec:
    """Build and validate the spec for a resolved aggregate query.

    Enforces the SQL grouping rule: a bare select item must appear in
    GROUP BY (the diag analyzer reports the same condition as RQ211
    before execution).
    """
    group_by: List[str] = []
    for name in query.group_by or []:
        if name not in schema_names:
            raise QueryValidationError(
                f"GROUP BY references unknown attribute {name!r}"
            )
        if name not in group_by:
            group_by.append(name)
    items: List[Aggregate] = []
    output: List[str] = []
    for item in query.select or []:
        if isinstance(item, Aggregate):
            if item.column is not None and item.column not in schema_names:
                raise QueryValidationError(
                    f"{item.label} references unknown attribute "
                    f"{item.column!r}"
                )
            items.append(item)
            output.append(item.label)
        else:
            if item not in schema_names:
                raise QueryValidationError(
                    f"SELECT references unknown attribute {item!r}"
                )
            if item not in group_by:
                raise QueryValidationError(
                    f"bare attribute {item!r} in an aggregate SELECT must "
                    "appear in GROUP BY"
                )
            output.append(item)
    if query.select is None:
        # SELECT * with GROUP BY: project the group key (DISTINCT rows).
        output = list(group_by)
    return AggregateSpec(tuple(group_by), tuple(items), tuple(output))


# ---------------------------------------------------------------------------
# Vectorised grouping
# ---------------------------------------------------------------------------


def _group_layout(keys: List[np.ndarray], num_rows: int):
    """Sort-based grouping of parallel key arrays.

    Returns ``(order, starts, uniques)``: ``order`` permutes rows so
    equal keys are adjacent, ``starts`` indexes the first row of each
    group within the permuted view, and ``uniques`` holds each group's
    key values (one array per key column).  ``np.*.reduceat`` over the
    permuted values then folds every group in one vectorised call.
    """
    if not keys:
        order = np.arange(num_rows)
        starts = np.zeros(1 if num_rows else 0, dtype=np.intp)
        return order, starts, []
    # lexsort's last key is primary; group_by order is primary-first.
    order = np.lexsort(tuple(reversed(keys)))
    sorted_keys = [np.asarray(k)[order] for k in keys]
    if num_rows == 0:
        return order, np.zeros(0, dtype=np.intp), [k[:0] for k in sorted_keys]
    new_group = np.zeros(num_rows, dtype=bool)
    new_group[0] = True
    for k in sorted_keys:
        new_group[1:] |= k[1:] != k[:-1]
    starts = np.flatnonzero(new_group)
    uniques = [k[starts] for k in sorted_keys]
    return order, starts, uniques


def partial_aggregate(
    spec: AggregateSpec,
    columns: Mapping[str, np.ndarray],
    num_rows: int,
    dtypes: Mapping[str, np.dtype],
) -> VirtualTable:
    """Fold one block of base rows into a partial state frame.

    ``columns`` holds the base plan's output columns (group keys and
    aggregate arguments) after filtering; ``num_rows`` is their length
    (passed explicitly so pure ``COUNT(*)`` plans, which materialise no
    columns at all, still count their rows).
    """
    schema = spec.state_columns(dtypes)
    if num_rows == 0:
        return spec.empty_state(dtypes)
    keys = [np.asarray(columns[name]) for name in spec.group_by]
    order, starts, uniques = _group_layout(keys, num_rows)
    counts = np.diff(starts, append=num_rows).astype(np.int64)

    out: Dict[str, np.ndarray] = {}
    for name, unique in zip(spec.group_by, uniques):
        out[name] = unique
    for i, item in enumerate(spec.items):
        if item.func == "count":
            out[f"__agg{i}_count"] = counts
            continue
        values = np.asarray(columns[item.column])[order]
        if item.func in ("sum", "avg"):
            sum_dtype = sum_accumulator_dtype(values.dtype)
            sums = np.add.reduceat(values.astype(sum_dtype), starts)
            out[f"__agg{i}_sum"] = np.atleast_1d(sums)
            if item.func == "avg":
                out[f"__agg{i}_count"] = counts
        elif item.func == "min":
            out[f"__agg{i}_min"] = np.atleast_1d(
                np.minimum.reduceat(values, starts)
            )
        else:
            out[f"__agg{i}_max"] = np.atleast_1d(
                np.maximum.reduceat(values, starts)
            )
    # Cast to the declared state schema so every partial frame — from any
    # node, any transport — concatenates and merges without promotion.
    final = {
        name: np.ascontiguousarray(out[name], dtype=dt)
        for name, dt in schema
    }
    return VirtualTable(final, order=[name for name, _ in schema])


def merge_partials(
    spec: AggregateSpec,
    frames: Sequence[VirtualTable],
    dtypes: Mapping[str, np.dtype],
) -> VirtualTable:
    """Combine partial state frames into one (still a state frame).

    Exact for every item: counts and sums add, mins/maxes reduce, and
    AVG pairs merge component-wise — associative and commutative, so the
    result is independent of how rows were split across nodes or blocks.
    """
    frames = [f for f in frames if f is not None and f.num_rows > 0]
    if not frames:
        return spec.empty_state(dtypes)
    schema = spec.state_columns(dtypes)
    merged: Dict[str, np.ndarray] = {
        name: np.concatenate([np.asarray(f.column(name)) for f in frames])
        for name, _ in schema
    }
    num_rows = len(next(iter(merged.values()))) if merged else 0
    keys = [merged[name] for name in spec.group_by]
    order, starts, uniques = _group_layout(keys, num_rows)

    out: Dict[str, np.ndarray] = {}
    for name, unique in zip(spec.group_by, uniques):
        out[name] = unique
    for i, item in enumerate(spec.items):
        for suffix in _state_suffixes(item):
            name = f"__agg{i}_{suffix}"
            values = merged[name][order]
            if suffix in ("count", "sum"):
                out[name] = np.atleast_1d(np.add.reduceat(values, starts))
            elif suffix == "min":
                out[name] = np.atleast_1d(np.minimum.reduceat(values, starts))
            else:
                out[name] = np.atleast_1d(np.maximum.reduceat(values, starts))
    final = {
        name: np.ascontiguousarray(out[name], dtype=dt)
        for name, dt in schema
    }
    return VirtualTable(final, order=[name for name, _ in schema])


def _state_suffixes(item: Aggregate) -> Tuple[str, ...]:
    if item.func == "count":
        return ("count",)
    if item.func == "avg":
        return ("sum", "count")
    return (item.func,)


def finalize(
    spec: AggregateSpec,
    state: VirtualTable,
    dtypes: Mapping[str, np.dtype],
) -> VirtualTable:
    """Turn a fully-merged state frame into the user-facing result table.

    Rows come out sorted by the group key ascending; AVG divides its
    exact (sum, count) pair here, once.
    """
    num_rows = state.num_rows
    if spec.group_by and num_rows:
        keys = [np.asarray(state.column(name)) for name in spec.group_by]
        order = np.lexsort(tuple(reversed(keys)))
    else:
        order = np.arange(num_rows)
    out_dtypes = spec.output_dtypes(dtypes)
    columns: Dict[str, np.ndarray] = {}
    agg_arrays: Dict[str, np.ndarray] = {}
    for i, item in enumerate(spec.items):
        if item.func == "count":
            values = np.asarray(state.column(f"__agg{i}_count"))[order]
        elif item.func == "avg":
            sums = np.asarray(state.column(f"__agg{i}_sum"))[order]
            counts = np.asarray(state.column(f"__agg{i}_count"))[order]
            with np.errstate(invalid="ignore", divide="ignore"):
                values = sums.astype(np.float64) / counts
        else:
            values = np.asarray(state.column(f"__agg{i}_{item.func}"))[order]
        agg_arrays[item.label] = values
    for label in spec.output:
        if label in spec.group_by:
            source = np.asarray(state.column(label))[order]
        else:
            source = agg_arrays[label]
        columns[label] = np.ascontiguousarray(source, dtype=out_dtypes[label])
    return VirtualTable(columns, order=list(spec.output))


def summary_answer(plan, summaries) -> Optional[VirtualTable]:
    """Answer a predicate-free ungrouped COUNT/MIN/MAX from metadata.

    When every AFC's bounds are known — implicit attributes carry theirs
    in the plan, stored attributes need a chunk-summary entry for every
    chunk storing them — the final result table is computable with zero
    data-chunk reads: COUNT is the planned row total, MIN/MAX fold the
    per-chunk bounds.  Returns ``None`` whenever anything falls outside
    that envelope (a predicate, a GROUP BY, an AVG/SUM item, a chunk
    without a summary), in which case the caller extracts normally.

    Sound only because the query is predicate-free: every planned row is
    in the result, so chunk-level bounds are exact global bounds.
    """
    spec = plan.aggregate
    if spec is None or spec.group_by:
        return None
    where = plan.where
    if where is not None and not (
        isinstance(where, BoolLiteral) and where.value
    ):
        return None
    if any(item.func not in ("count", "min", "max") for item in spec.items):
        return None

    total = plan.planned_rows
    out_dtypes = spec.output_dtypes(plan.dtypes)
    if total == 0:
        return VirtualTable(
            {
                label: np.empty(0, dtype=out_dtypes[label])
                for label in spec.output
            },
            order=list(spec.output),
        )

    def attr_bounds(attr: str) -> Optional[Tuple[float, float]]:
        """(min, max) of ``attr`` across every planned AFC, or None."""
        lo = hi = None
        for afc in plan.afcs:
            implicit = afc.implicit_bounds()
            if attr in implicit:
                a_lo, a_hi = implicit[attr]
            else:
                chunks = [c for c in afc.chunks if attr in c.strip.attrs]
                if not chunks or summaries is None:
                    return None
                a_lo = a_hi = None
                for chunk in chunks:
                    entry = summaries.bounds(chunk.key)
                    if entry is None or attr not in entry:
                        return None
                    c_lo, c_hi = entry[attr]
                    a_lo = c_lo if a_lo is None else min(a_lo, c_lo)
                    a_hi = c_hi if a_hi is None else max(a_hi, c_hi)
            lo = a_lo if lo is None else min(lo, a_lo)
            hi = a_hi if hi is None else max(hi, a_hi)
        if lo is None:
            return None
        return lo, hi

    columns: Dict[str, np.ndarray] = {}
    for item in spec.items:
        if item.func == "count":
            value: object = total
        else:
            bounds = attr_bounds(item.column)
            if bounds is None:
                return None
            value = bounds[0] if item.func == "min" else bounds[1]
        columns[item.label] = np.array([value], dtype=out_dtypes[item.label])
    return VirtualTable(
        {label: columns[label] for label in spec.output},
        order=list(spec.output),
    )


def aggregate_rows(
    spec: AggregateSpec,
    table: VirtualTable,
    dtypes: Mapping[str, np.dtype],
    num_rows: Optional[int] = None,
) -> VirtualTable:
    """Client-side reference: aggregate a materialised base-row table.

    This is the pushdown ablation (``ExecOptions(agg_pushdown=False)``)
    and the oracle the pushdown path is tested bit-identical against.
    ``num_rows`` overrides the table's own count for the degenerate pure
    ``COUNT(*)`` case where the base plan materialised zero columns.
    """
    columns = {name: table.column(name) for name in table.column_names}
    n = table.num_rows if num_rows is None else num_rows
    state = partial_aggregate(spec, columns, n, dtypes)
    return finalize(spec, merge_partials(spec, [state], dtypes), dtypes)
