"""The two-step data-extraction analysis of the paper (Figure 5).

``find_file_groups`` implements *Find_File_Groups*: files are matched
against the query's per-attribute ranges via their implicit attributes,
classified by leaf dataset (equivalently, by the set of attributes they
store), and combined across leaves with a consistency check on shared
implicit attributes.

``compute_alignment`` and ``enumerate_afcs`` implement
*Process_File_Groups*: for every surviving file group, determine the
aligned chunk geometry (which loop variables vary within a chunk and which
enumerate chunks), then walk the chunk space — pruning with implicit
attribute values and, when available, persisted chunk summaries — and emit
:class:`~repro.core.afc.AlignedFileChunkSet` objects.

The alignment is *static*: it depends only on the descriptor (DESIGN.md
decision 3), so the code generator can bake it in and the paper's
"no expensive runtime processing per query" property holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import PlanningError
from ..sql.ranges import Interval, IntervalSet, RangeMap
from .afc import AlignedFileChunkSet, ChunkRef, InnerVar
from .strips import LoopDim, PhysicalFile, Strip


# ---------------------------------------------------------------------------
# Step 1: Find_File_Groups
# ---------------------------------------------------------------------------


def match_file(file: PhysicalFile, ranges: RangeMap) -> bool:
    """Whether a file can contain rows satisfying the query ranges.

    A file is excluded when any constrained attribute's implicit interval
    (binding constant or loop hull) misses the query's interval set —
    the paper's example excludes DATA2/DATA3 for ``REL in (0, 1)``.
    """
    if not ranges:
        return True
    implicit = file.implicit_intervals()
    for name, allowed in ranges.items():
        interval = implicit.get(name)
        if interval is not None and not allowed.overlaps_interval(interval):
            return False
    return True


def classify_files(
    files: Sequence[PhysicalFile], leaf_order: Sequence[str]
) -> List[List[PhysicalFile]]:
    """Partition files by leaf dataset, in layout order (the sets S_1..S_m)."""
    by_leaf: Dict[str, List[PhysicalFile]] = {name: [] for name in leaf_order}
    for file in files:
        by_leaf[file.leaf_name].append(file)
    return [by_leaf[name] for name in leaf_order]


def consistent_group(
    files: Sequence[PhysicalFile],
) -> Optional[Dict[str, int]]:
    """Check implicit-attribute consistency of a candidate file group.

    Returns the merged binding environment when the group is consistent,
    else ``None``.  Rules:

    * a binding variable shared by two files must have equal values;
    * a loop variable shared by two files must iterate with identical
      geometry (start, stop, step) — COORDS on DIR[0] cannot pair with
      DATA0 on DIR[1] because their GRID ranges differ;
    * a variable that is a binding constant in one file and a loop in
      another is consistent when the constant lies inside the loop range
      (the constant then pins that chunk variable during enumeration).
    """
    env: Dict[str, int] = {}
    geometry: Dict[str, Tuple[int, int, int]] = {}
    for file in files:
        for name, value in file.env.items():
            if name in env and env[name] != value:
                return None
            env[name] = value
        for name, geo in file.loop_geometry().items():
            if name in geometry and geometry[name] != geo:
                return None
            geometry[name] = geo
    for name, value in env.items():
        geo = geometry.get(name)
        if geo is not None:
            start, stop, step = geo
            if not (start <= value <= stop and (value - start) % step == 0):
                return None
    return env


def find_file_groups(
    files: Sequence[PhysicalFile],
    leaf_order: Sequence[str],
    ranges: RangeMap,
) -> List[Tuple[Tuple[PhysicalFile, ...], Dict[str, int]]]:
    """Find the set T of consistent file groups matching the query.

    Returns ``(group, merged_env)`` pairs; each group has exactly one file
    per leaf, in ``leaf_order``.
    """
    surviving = [f for f in files if match_file(f, ranges)]
    classes = classify_files(surviving, leaf_order)
    for leaf_name, cls in zip(leaf_order, classes):
        if not cls:
            return []  # one leaf fully pruned -> no rows at all
    groups = []
    for combo in product(*classes):
        env = consistent_group(combo)
        if env is not None:
            groups.append((tuple(combo), env))
    return groups


# ---------------------------------------------------------------------------
# Step 2: alignment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Alignment:
    """The static chunk geometry of a file group shape.

    ``inner`` is the common suffix of loop dimensions that varies *within*
    a chunk (the paper's aligned-chunk extent); every strip of the group
    carries exactly these dims innermost, densely.  ``num_rows`` is the
    product of their counts.
    """

    inner: Tuple[Tuple[str, int, int, int], ...]  # (var, start, stop, step)

    @property
    def inner_vars(self) -> Tuple[str, ...]:
        return tuple(g[0] for g in self.inner)

    @property
    def num_rows(self) -> int:
        n = 1
        for _, start, stop, step in self.inner:
            n *= (stop - start) // step + 1
        return n

    def make_inner_vars(self) -> Tuple[InnerVar, ...]:
        """Row-major tile/repeat pattern for each inner variable."""
        out: List[InnerVar] = []
        repeat = 1
        for var, start, stop, step in reversed(self.inner):
            count = (stop - start) // step + 1
            out.append(InnerVar(var, start, step, count, repeat))
            repeat *= count
        out.reverse()
        return tuple(out)


def compute_alignment(
    strips: Sequence[Strip],
    index_attrs: Iterable[str],
    stored_index_leaves: Iterable[str] = (),
) -> Alignment:
    """Maximal common dense loop suffix usable as the aligned chunk extent.

    Constraints:

    * the suffix must be a *dense* suffix of every strip (records
      contiguous in file order);
    * the dimension geometries must be identical across strips;
    * variables named in DATAINDEX stay *outside* the suffix so the
      indexing service can prune at chunk granularity (a declared index
      is what buys sub-file pruning — without one, a dense file is one
      big chunk and every query scans it);
    * strips of leaves with a stored-attribute index keep at least one
      dimension outside the suffix (the chunking dimension the paper's
      Titan dataset partitions on).
    """
    if not strips:
        raise PlanningError("cannot align an empty strip set")
    index_set = set(index_attrs)
    stored_leaves = set(stored_index_leaves)
    limits: List[int] = []
    for strip in strips:
        limit = strip.dense_suffix_length()
        if strip.leaf_name in stored_leaves:
            limit = min(limit, max(len(strip.dims) - 1, 0))
        limits.append(limit)

    max_len = min(
        (min(limit, len(s.dims)) for limit, s in zip(limits, strips)),
        default=0,
    )
    length = 0
    while length < max_len:
        geo = strips[0].dims[len(strips[0].dims) - 1 - length].geometry()
        if geo[0] in index_set:
            break
        if any(
            s.dims[len(s.dims) - 1 - length].geometry() != geo for s in strips[1:]
        ):
            break
        length += 1
    if length == 0:
        return Alignment(())
    inner = tuple(
        strips[0].dims[len(strips[0].dims) - length + i].geometry()
        for i in range(length)
    )
    return Alignment(inner)


# ---------------------------------------------------------------------------
# Step 2: chunk enumeration
# ---------------------------------------------------------------------------


class ChunkSummaries:
    """Interface for the chunk-summary index (see repro.index.summaries).

    Maps a chunk key ``(node, path, offset)`` to per-attribute (min, max)
    bounds for *stored* attributes.  ``None`` means "no summary known",
    which never prunes.
    """

    def bounds(self, key) -> Optional[Dict[str, Tuple[float, float]]]:
        raise NotImplementedError


def enumerate_afcs(
    group: Sequence[PhysicalFile],
    env: Dict[str, int],
    alignment: Alignment,
    row_var_order: Sequence[str],
    ranges: RangeMap,
    summaries: Optional[ChunkSummaries] = None,
    summary_attrs: Iterable[str] = (),
) -> List[AlignedFileChunkSet]:
    """Enumerate the aligned file chunk sets of one file group.

    Chunk (outer) variables are every loop variable of the group that is
    not in the alignment's inner suffix; they are enumerated in the
    dataset's canonical row-variable order, pruned against the query
    ranges (and pinned by binding constants where applicable).
    """
    inner_vars = set(alignment.inner_vars)
    # Collect outer variables with their geometry, ordered canonically.
    geometry: Dict[str, Tuple[int, int, int]] = {}
    for file in group:
        for strip in file.strips:
            for dim in strip.dims:
                if dim.var not in inner_vars:
                    geometry.setdefault(dim.var, (dim.start, dim.stop, dim.step))
    outer = [v for v in row_var_order if v in geometry]
    stray = [v for v in geometry if v not in outer]
    outer.extend(sorted(stray))

    # Allowed values per outer variable, after range pruning / env pinning.
    axes: List[Tuple[str, List[int]]] = []
    for var in outer:
        start, stop, step = geometry[var]
        values = list(range(start, stop + 1, step))
        if var in env:
            values = [v for v in values if v == env[var]]
        allowed = ranges.get(var)
        if allowed is not None:
            values = [v for v in values if allowed.contains(v)]
        if not values:
            return []
        axes.append((var, values))

    base_inner = alignment.make_inner_vars()
    num_rows = alignment.num_rows
    summary_attrs = [a for a in summary_attrs if a in ranges]

    # Per-strip per-outer-var byte strides, resolved once.
    strip_layouts: List[Tuple[PhysicalFile, Strip, Dict[str, Tuple[int, int, int]]]]
    strip_layouts = []
    for file in group:
        for strip in file.strips:
            strides = {
                dim.var: (dim.start, dim.step, dim.byte_stride)
                for dim in strip.dims
                if dim.var not in inner_vars
            }
            strip_layouts.append((file, strip, strides))

    env_constants = tuple(sorted(env.items()))
    afcs: List[AlignedFileChunkSet] = []
    axis_names = [a[0] for a in axes]
    axis_values = [a[1] for a in axes]
    for combo in product(*axis_values) if axes else [()]:
        sigma = dict(zip(axis_names, combo))
        chunks: List[ChunkRef] = []
        for file, strip, strides in strip_layouts:
            offset = strip.base_offset
            for var, (start, step, stride) in strides.items():
                offset += ((sigma[var] - start) // step) * stride
            chunks.append(
                ChunkRef(
                    node=file.node,
                    path=file.relpath,
                    offset=offset,
                    bytes_per_row=strip.record_size,
                    strip=strip,
                )
            )
        constants = env_constants + tuple(
            (name, value) for name, value in sigma.items() if name not in env
        )
        afc = AlignedFileChunkSet(
            num_rows=num_rows,
            chunks=tuple(chunks),
            constants=constants,
            inner_vars=base_inner,
        )
        if _pruned_by_inner_bounds(afc, ranges):
            continue
        if summaries is not None and summary_attrs:
            if _pruned_by_summaries(afc, ranges, summaries, summary_attrs):
                continue
        afcs.append(afc)
    return afcs


def _pruned_by_inner_bounds(afc: AlignedFileChunkSet, ranges: RangeMap) -> bool:
    """Prune via implicit hull bounds of inner variables.

    Outer variables were already pruned value-by-value; inner variables can
    only be pruned when the whole chunk misses the query range.
    """
    for iv in afc.inner_vars:
        allowed = ranges.get(iv.name)
        if allowed is None:
            continue
        lo, hi = iv.interval
        if not allowed.overlaps_interval(Interval(lo, hi)):
            return True
    return False


def _pruned_by_summaries(
    afc: AlignedFileChunkSet,
    ranges: RangeMap,
    summaries: ChunkSummaries,
    summary_attrs: Sequence[str],
) -> bool:
    """Prune via persisted per-chunk min/max of stored indexed attributes."""
    for chunk in afc.chunks:
        stored = set(chunk.strip.attrs)
        relevant = [a for a in summary_attrs if a in stored]
        if not relevant:
            continue
        bounds = summaries.bounds(chunk.key)
        if bounds is None:
            continue
        for attr in relevant:
            if attr not in bounds:
                continue
            lo, hi = bounds[attr]
            if not ranges[attr].overlaps_interval(Interval(lo, hi)):
                return True
    return False
