"""Small runtime support library for generated index functions.

Generated modules (see :mod:`repro.core.codegen`) inline all layout
arithmetic but call these helpers for query-range checks, exactly like a
compiler emitting calls into a runtime library.  Keeping the helpers here
(instead of duplicating their bodies in every generated module) also means
bug fixes apply to already-generated code on re-import.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..sql.ranges import Interval, IntervalSet, RangeMap
from .afc import AlignedFileChunkSet


def allowed_values(
    allowed: Optional[IntervalSet],
    start: int,
    stop: int,
    step: int,
    pin: Optional[int] = None,
) -> List[int]:
    """Loop values of ``start..stop..step`` permitted by the query ranges.

    ``pin`` (a binding constant shared with the loop variable) restricts
    the loop to a single value.
    """
    if pin is not None:
        if not (start <= pin <= stop and (pin - start) % step == 0):
            return []
        values: Iterable[int] = (pin,)
    else:
        values = range(start, stop + 1, step)
    if allowed is None:
        return list(values)
    return [v for v in values if allowed.contains(v)]


def ranges_match(ranges: RangeMap, implicit: Sequence[Tuple[str, int, int]]) -> bool:
    """Group-level match: every constrained implicit attribute must overlap.

    ``implicit`` is a tuple of (name, lo, hi) hulls baked in at generation
    time from the group's binding constants and loop ranges.
    """
    for name, lo, hi in implicit:
        allowed = ranges.get(name)
        if allowed is not None and not allowed.overlaps_interval(Interval(lo, hi)):
            return False
    return True


def summary_pruned(
    afc: AlignedFileChunkSet,
    ranges: RangeMap,
    summaries,
    summary_attrs: Sequence[str],
) -> bool:
    """Chunk-summary index check (shared with the interpreted planner)."""
    from .analysis import _pruned_by_summaries

    relevant = [a for a in summary_attrs if a in ranges]
    if not relevant or summaries is None:
        return False
    return _pruned_by_summaries(afc, ranges, summaries, relevant)
