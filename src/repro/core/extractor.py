"""Chunk extraction: turning aligned file chunks into table rows.

This is the runtime half of the paper's extraction function: given an
:class:`~repro.core.afc.ExtractionPlan`, read every member chunk of every
AFC, decode the packed records with precomputed numpy dtypes (zero-copy
views over the read buffer), materialise implicit attributes, apply the
residual WHERE predicate vectorised, and emit the projected columns.

Two small caches make repeated-chunk workloads efficient without changing
semantics:

* an LRU of open file handles (files are opened once per query, not once
  per chunk — the paper's L0 layout opens 18 files per AFC set otherwise);
* an LRU of chunk payloads keyed by (path, offset, length), which pays off
  when one chunk participates in many AFCs (the COORDS file of the paper's
  example appears in all 500 TIME chunks).

Both caches are thread safe and all chunk I/O uses positional reads
(``pread``), so one extractor can serve several query threads — and
several intra-node worker threads of one query — concurrently.

On top of the caches sits **I/O coalescing**: chunk reads against one
file that are adjacent, or separated by at most a configurable gap, are
merged into a single ``read()`` call whose payload is sliced back into
per-chunk segments (:meth:`Extractor.plan_coalesce`).  Interleaved
layouts like the paper's L0 otherwise pay a read call and a simulated
seek per chunk; coalescing restores near-sequential I/O at the cost of
reading the gap bytes (charged as ``readahead_waste_bytes``).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ExtractionError
from ..obs.tracer import NULL_TRACER
from ..sql.functions import DEFAULT_REGISTRY, FunctionRegistry
from .afc import AlignedFileChunkSet, ExtractionPlan
from .kernels import KERNEL_BLOCK_ROWS, BlockPipeline, KernelCache
from .stats import IOStats
from .table import VirtualTable, own_column

#: Resolves (node, dataset-relative path) to an absolute filesystem path.
Mount = Callable[[str, str], str]

#: A chunk read request: (node, path, offset, nbytes) — the segment-cache key.
ReadKey = Tuple[str, str, int, int]

#: Upper bound on one coalesced read's span.  Merging an entire file into
#: one read would be ideal for the read_calls count but holds the whole
#: payload in memory at once; 8 MiB keeps buffers bounded while still
#: folding thousands of KB-scale chunks into few syscalls.
MAX_COALESCED_BYTES = 8 * 1024 * 1024

_HAS_PREAD = hasattr(os, "pread")


class _Handle:
    """One cached open file, pinned while a read is in flight."""

    __slots__ = ("file", "pins", "dropped", "lock")

    def __init__(self, file):
        self.file = file
        self.pins = 0
        #: Evicted/dropped while pinned: the last unpin closes the file.
        self.dropped = False
        #: Serialises seek+read on platforms without ``os.pread``.
        self.lock = threading.Lock()


def _positional_read(entry: _Handle, nbytes: int, offset: int) -> bytes:
    """Read up to ``nbytes`` at ``offset`` without a shared file position.

    Two threads reading one handle never race each other's ``seek``:
    ``pread`` is positionless by construction, and the seek+read fallback
    holds the handle's own lock.
    """
    if _HAS_PREAD:
        fd = entry.file.fileno()
        pieces = []
        remaining, pos = nbytes, offset
        while remaining > 0:
            block = os.pread(fd, remaining, pos)
            if not block:
                break
            pieces.append(block)
            pos += len(block)
            remaining -= len(block)
        return pieces[0] if len(pieces) == 1 else b"".join(pieces)
    with entry.lock:
        entry.file.seek(offset)
        return entry.file.read(nbytes)


class _HandleCache:
    """LRU cache of open binary file handles; thread safe.

    ``pin``/``unpin`` bracket every read.  A pinned handle is never closed
    out from under a reader: eviction skips pinned entries, and
    ``close``/``drop_caches`` mark them dropped so the last unpin closes
    them instead.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._handles: "OrderedDict[str, _Handle]" = OrderedDict()

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return path in self._handles

    def __len__(self) -> int:
        with self._lock:
            return len(self._handles)

    def pin(self, path: str, stats: IOStats) -> _Handle:
        with self._lock:
            entry = self._handles.get(path)
            if entry is not None:
                self._handles.move_to_end(path)
                entry.pins += 1
                return entry
        # Open outside the lock: disk latency must not serialise other
        # threads' cache hits.
        try:
            file = open(path, "rb")
        except OSError as exc:
            raise ExtractionError(f"cannot open {path!r}: {exc}") from exc
        victims: List[_Handle] = []
        with self._lock:
            entry = self._handles.get(path)
            if entry is not None:
                # Lost an open race; adopt the winner's handle.
                file.close()
                self._handles.move_to_end(path)
                entry.pins += 1
                return entry
            stats.files_opened += 1
            entry = _Handle(file)
            entry.pins = 1
            self._handles[path] = entry
            while len(self._handles) > self.capacity:
                victim = next(
                    (p for p, e in self._handles.items() if e.pins == 0), None
                )
                if victim is None:  # everything pinned: run over capacity
                    break
                victims.append(self._handles.pop(victim))
        for v in victims:
            v.file.close()
        return entry

    def unpin(self, entry: _Handle) -> None:
        with self._lock:
            entry.pins -= 1
            close_it = entry.dropped and entry.pins == 0
        if close_it:
            entry.file.close()

    def close(self) -> None:
        victims: List[_Handle] = []
        with self._lock:
            for entry in self._handles.values():
                if entry.pins == 0:
                    victims.append(entry)
                else:
                    entry.dropped = True
            self._handles.clear()
        for v in victims:
            v.file.close()


class _SegmentCache:
    """LRU cache of chunk payload bytes, bounded by total size; thread safe."""

    def __init__(self, capacity_bytes: int = 32 * 1024 * 1024):
        self.capacity = capacity_bytes
        self.size = 0
        self._lock = threading.Lock()
        self._segments: "OrderedDict[tuple, bytes]" = OrderedDict()

    def get(self, key: tuple) -> Optional[bytes]:
        with self._lock:
            data = self._segments.get(key)
            if data is not None:
                self._segments.move_to_end(key)
            return data

    def contains(self, key: tuple) -> bool:
        """Presence check without LRU promotion (coalesce planning)."""
        with self._lock:
            return key in self._segments

    def put(self, key: tuple, data: bytes) -> None:
        if len(data) > self.capacity:
            return
        with self._lock:
            old = self._segments.pop(key, None)
            if old is not None:
                self.size -= len(old)
            self._segments[key] = data
            self.size += len(data)
            while self.size > self.capacity:
                _, evicted = self._segments.popitem(last=False)
                self.size -= len(evicted)

    def clear(self) -> None:
        with self._lock:
            self._segments.clear()
            self.size = 0


class _CoalesceRun:
    """One merged read: a contiguous span of a file covering ≥2 chunks."""

    __slots__ = ("node", "path", "start", "end", "members", "lock", "results",
                 "failed")

    def __init__(
        self,
        node: str,
        path: str,
        start: int,
        end: int,
        members: Tuple[Tuple[int, int], ...],
    ):
        self.node = node
        self.path = path
        self.start = start
        self.end = end
        #: (offset, nbytes) per member chunk, sorted by offset.
        self.members = members
        self.lock = threading.Lock()
        #: key -> payload once the merged read happened; members pop
        #: their slice exactly once (the segment cache serves repeats).
        self.results: Optional[Dict[ReadKey, bytes]] = None
        self.failed = False

    @property
    def span(self) -> int:
        return self.end - self.start

    def covered_bytes(self) -> int:
        """Bytes of the span belonging to at least one member chunk."""
        total = 0
        end = self.start
        for off, nb in self.members:
            hi = off + nb
            lo = max(off, end)
            if hi > lo:
                total += hi - lo
                end = hi
        return total


class CoalescePlan:
    """Maps chunk-read keys to the merged runs that will satisfy them."""

    def __init__(self, runs: Dict[ReadKey, _CoalesceRun]):
        self._runs = runs

    def run_for(self, key: ReadKey) -> Optional[_CoalesceRun]:
        return self._runs.get(key)

    @property
    def num_runs(self) -> int:
        return len({id(r) for r in self._runs.values()})

    @property
    def num_members(self) -> int:
        return len(self._runs)


class Extractor:
    """Executes extraction plans against a filesystem mount.

    Thread safe: the handle and segment caches carry their own locks, all
    chunk I/O is positional, and the simulated disk-head bookkeeping is
    guarded — one extractor may serve concurrent queries and intra-node
    worker threads.  (Under concurrency the per-node ``seeks`` count
    depends on thread interleaving; every other counter is exact.)
    """

    def __init__(
        self,
        mount: Mount,
        functions: Optional[FunctionRegistry] = None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
    ):
        self.mount = mount
        self.functions = functions or DEFAULT_REGISTRY
        #: Compiled predicate kernels, one per distinct WHERE node
        #: (vectorized execution; see repro.core.kernels).
        self._kernels = KernelCache(self.functions)
        #: A FaultyMount (repro.faults) carries its injector here; plain
        #: mounts leave it None and the hot path pays one is-None check.
        self._injector = getattr(mount, "injector", None)
        self._handles = _HandleCache(handle_cache)
        self._segments = _SegmentCache(segment_cache_bytes)
        #: Simulated disk-head position per node: (path, next offset).
        #: A read is charged a seek only when it repositions the head —
        #: consecutive chunks of one file scan sequentially for free,
        #: while layouts that interleave many files (the paper's L0)
        #: pay a seek per switch.  Updated only after a *successful* full
        #: read: a failed read never moved the physical head.
        self._head: Dict[str, tuple] = {}
        self._head_lock = threading.Lock()

    def close(self) -> None:
        self._handles.close()

    def drop_caches(self) -> None:
        """Forget cached handles, segments, and head positions (cold runs).

        Safe against in-flight reads: pinned handles are closed by their
        last unpin, not here, so a concurrent query never reads a closed
        file.
        """
        self._handles.close()
        self._segments.clear()
        with self._head_lock:
            self._head.clear()

    def __enter__(self) -> "Extractor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- chunk I/O ---------------------------------------------------------------

    def _read_span(
        self, node: str, path: str, offset: int, nbytes: int, stats: IOStats
    ) -> bytes:
        """One positional read of ``nbytes`` at ``offset``, fully charged."""
        full_path = self.mount(node, path)
        if self._injector is not None and full_path not in self._handles:
            self._injector.on_open(node, path)
        entry = self._handles.pin(full_path, stats)
        try:
            data = _positional_read(entry, nbytes, offset)
        finally:
            self._handles.unpin(entry)
        stats.read_calls += 1
        stats.bytes_read += len(data)
        if self._injector is not None:
            data = self._injector.on_read(node, path, offset, data)
        if len(data) != nbytes:
            raise ExtractionError(
                f"short read from {path!r}: wanted {nbytes} bytes at "
                f"offset {offset}, got {len(data)} "
                "(layout descriptor larger than the actual file?)"
            )
        # Charge the seek only now: a failed read must not advance the
        # simulated head to bytes that were never delivered.
        with self._head_lock:
            if self._head.get(node) != (path, offset):
                stats.seeks += 1
            self._head[node] = (path, offset + nbytes)
        return data

    def plan_coalesce(
        self,
        reads: Iterable[ReadKey],
        gap_bytes: int,
        max_run_bytes: int = MAX_COALESCED_BYTES,
    ) -> Optional[CoalescePlan]:
        """Plan merged reads for a batch of chunk requests.

        ``reads`` are (node, path, offset, nbytes) keys in any order.
        Per file, requests sorted by offset are merged while the next one
        starts within ``gap_bytes`` of the current span's end and the
        merged span stays under ``max_run_bytes``.  Only runs covering at
        least two chunks are kept; already-cached chunks are skipped.
        ``gap_bytes <= 0`` disables coalescing (returns None).
        """
        if gap_bytes <= 0:
            return None
        per_file: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        seen = set()
        for key in reads:
            if key in seen:
                continue
            seen.add(key)
            if self._segments.contains(key):
                continue
            node, path, off, nb = key
            per_file.setdefault((node, path), []).append((off, nb))
        runs: Dict[ReadKey, _CoalesceRun] = {}

        def register(node, path, group, g_end):
            if len(group) < 2:
                return
            run = _CoalesceRun(node, path, group[0][0], g_end, tuple(group))
            for off, nb in group:
                runs[(node, path, off, nb)] = run

        for (node, path), members in per_file.items():
            members.sort()
            group = [members[0]]
            g_end = members[0][0] + members[0][1]
            for off, nb in members[1:]:
                new_end = max(g_end, off + nb)
                if off <= g_end + gap_bytes and new_end - group[0][0] <= max_run_bytes:
                    group.append((off, nb))
                    g_end = new_end
                else:
                    register(node, path, group, g_end)
                    group = [(off, nb)]
                    g_end = off + nb
            register(node, path, group, g_end)
        return CoalescePlan(runs) if runs else None

    def coalesce_for(
        self,
        afcs: Sequence[AlignedFileChunkSet],
        needed: Sequence[str],
        gap_bytes: int,
    ) -> Optional[CoalescePlan]:
        """Coalesce plan for every needed chunk read of a batch of AFCs."""
        if gap_bytes <= 0:
            return None
        needed_set = set(needed)
        reads: List[ReadKey] = []
        for afc in afcs:
            for chunk in afc.chunks:
                if needed_set.intersection(chunk.strip.attrs):
                    reads.append(
                        (
                            chunk.node,
                            chunk.path,
                            chunk.offset,
                            afc.num_rows * chunk.bytes_per_row,
                        )
                    )
        return self.plan_coalesce(reads, gap_bytes)

    def _read_coalesced(
        self, key: ReadKey, run: _CoalesceRun, stats: IOStats, tracer
    ) -> Optional[bytes]:
        """Satisfy one chunk request by executing (or joining) a merged read.

        Returns None when this chunk's slice is no longer available (its
        run failed in another thread, or the slice was consumed and then
        evicted from the segment cache) — the caller falls back to a
        plain read.
        """
        with run.lock:
            if run.results is None and not run.failed:
                try:
                    self._fill_run(run, stats, tracer)
                except Exception:
                    run.failed = True
                    raise
            if run.results is None:
                return None
            return run.results.pop(key, None)

    def _fill_run(self, run: _CoalesceRun, stats: IOStats, tracer) -> None:
        data = self._read_span(run.node, run.path, run.start, run.span, stats)
        results: Dict[ReadKey, bytes] = {}
        for off, nb in run.members:
            lo = off - run.start
            segment = data[lo : lo + nb]
            member_key = (run.node, run.path, off, nb)
            results[member_key] = segment
            self._segments.put(member_key, segment)
        saved = len(run.members) - 1
        waste = run.span - run.covered_bytes()
        stats.reads_coalesced += saved
        stats.readahead_waste_bytes += waste
        if tracer.enabled:
            tracer.metrics.record("reads.coalesced", saved)
            if waste:
                tracer.metrics.record("bytes.readahead_waste", waste)
            tracer.event(
                "coalesced_read",
                node=run.node,
                path=run.path,
                offset=run.start,
                bytes=run.span,
                chunks=len(run.members),
                waste=waste,
            )
        run.results = results

    def read_chunk(
        self,
        node: str,
        path: str,
        offset: int,
        nbytes: int,
        stats: IOStats,
        tracer=NULL_TRACER,
        coalesce: Optional[CoalescePlan] = None,
    ) -> bytes:
        """Read one chunk's payload, via the segment cache.

        With a :class:`CoalescePlan`, a chunk that belongs to a merged
        run triggers (or joins) the run's single wide read; sibling
        chunks then come out of the segment cache.
        """
        key = (node, path, offset, nbytes)
        cached = self._segments.get(key)
        if cached is not None:
            stats.cache_hits += 1
            if tracer.enabled:
                tracer.event("segment_cache_hit", node=node, path=path, bytes=nbytes)
            return cached
        if tracer.enabled:
            tracer.event("segment_cache_miss", node=node, path=path, bytes=nbytes)
        if coalesce is not None:
            run = coalesce.run_for(key)
            if run is not None:
                data = self._read_coalesced(key, run, stats, tracer)
                if data is not None:
                    return data
        data = self._read_span(node, path, offset, nbytes, stats)
        self._segments.put(key, data)
        return data

    # -- AFC decoding -------------------------------------------------------------

    def extract_afc(
        self,
        afc: AlignedFileChunkSet,
        needed: List[str],
        stats: IOStats,
        dtypes: Optional[Dict[str, np.dtype]] = None,
        tracer=NULL_TRACER,
        coalesce: Optional[CoalescePlan] = None,
    ) -> Dict[str, np.ndarray]:
        """Materialise the needed columns of one aligned file chunk set."""
        columns: Dict[str, np.ndarray] = afc.implicit_columns(needed)
        if dtypes:
            # Implicit attributes are materialised as integers; narrow them
            # to the schema-declared type so results match stored layouts.
            for name, col in columns.items():
                want = dtypes.get(name)
                if want is not None and col.dtype != want:
                    columns[name] = col.astype(want)
        needed_set = set(needed)
        for chunk in afc.chunks:
            wanted = [a for a in chunk.strip.attrs if a in needed_set]
            if not wanted:
                continue
            nbytes = afc.num_rows * chunk.bytes_per_row
            data = self.read_chunk(
                chunk.node, chunk.path, chunk.offset, nbytes, stats, tracer,
                coalesce,
            )
            stats.chunks_read += 1
            records = np.frombuffer(data, dtype=chunk.strip.record_dtype(wanted))
            for name in wanted:
                columns[name] = records[name]
        missing = needed_set - set(columns)
        if missing:
            raise ExtractionError(
                f"plan cannot supply columns {sorted(missing)}; "
                "they are neither stored in any chunk nor implicit"
            )
        return columns

    # -- plan execution ---------------------------------------------------------

    def execute(
        self,
        plan: ExtractionPlan,
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
        coalesce_gap_bytes: int = 0,
        vectorize: bool = False,
    ) -> VirtualTable:
        """Run a full extraction plan and return the projected table.

        ``coalesce_gap_bytes > 0`` merges nearby chunk reads across the
        whole plan into wide reads (see :meth:`plan_coalesce`); the
        default 0 reads chunk-at-a-time, the paper's baseline behaviour.
        ``vectorize`` filters through a compiled predicate kernel with
        small AFCs fused into shared evaluation blocks — bit-identical
        rows in identical order, minus the per-chunk interpreter cost.
        """
        stats = stats if stats is not None else IOStats()
        with tracer.span("extract", afcs=len(plan.afcs)) as span:
            table = self._execute(
                plan, stats, tracer, coalesce_gap_bytes, vectorize
            )
            span.tag(rows=table.num_rows, bytes_read=stats.bytes_read)
        return table

    def _execute(
        self,
        plan: ExtractionPlan,
        stats: IOStats,
        tracer,
        coalesce_gap_bytes: int = 0,
        vectorize: bool = False,
    ) -> VirtualTable:
        if vectorize and plan.where is not None:
            return self._execute_vectorized(
                plan, stats, tracer, coalesce_gap_bytes
            )
        coalesce = self.coalesce_for(plan.afcs, plan.needed, coalesce_gap_bytes)
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in plan.output}
        for afc in plan.afcs:
            stats.afcs_processed += 1
            columns = self.extract_afc(
                afc, plan.needed, stats, plan.dtypes, tracer, coalesce
            )
            stats.rows_extracted += afc.num_rows
            if plan.where is not None:
                if tracer.enabled:
                    with tracer.span("filter", rows=afc.num_rows):
                        mask = np.asarray(
                            plan.where.evaluate(columns, self.functions)
                        )
                else:
                    mask = np.asarray(plan.where.evaluate(columns, self.functions))
                if mask.ndim == 0:
                    if not mask:
                        continue
                    selected = columns
                    count = afc.num_rows
                else:
                    count = int(mask.sum())
                    if count == 0:
                        continue
                    selected = {
                        name: columns[name][mask] for name in plan.output
                    }
            else:
                selected = columns
                count = afc.num_rows
            stats.rows_output += count
            for name in plan.output:
                pieces[name].append(own_column(selected[name]))
        return self._finish(pieces, plan)

    def _execute_vectorized(
        self,
        plan: ExtractionPlan,
        stats: IOStats,
        tracer,
        coalesce_gap_bytes: int,
    ) -> VirtualTable:
        """Batched kernel path: extract per AFC, filter per fused block.

        AFC blocks accumulate until :data:`KERNEL_BLOCK_ROWS` rows are
        pending, then one kernel evaluation and one gather per output
        column emit the block's surviving rows — same rows, same serial
        order, one interpreter-free pass.
        """
        coalesce = self.coalesce_for(plan.afcs, plan.needed, coalesce_gap_bytes)
        kernel = self._kernels.get(plan.where, tracer)
        pipeline = BlockPipeline(
            kernel, plan.needed, plan.output, KERNEL_BLOCK_ROWS, stats, tracer
        )
        for afc in plan.afcs:
            stats.afcs_processed += 1
            columns = self.extract_afc(
                afc, plan.needed, stats, plan.dtypes, tracer, coalesce
            )
            stats.rows_extracted += afc.num_rows
            pipeline.add(columns, afc.num_rows)
        pipeline.finish()
        return self._finish(pipeline.pieces, plan)

    def _finish(
        self, pieces: Dict[str, List[np.ndarray]], plan: ExtractionPlan
    ) -> VirtualTable:
        final: Dict[str, np.ndarray] = {}
        for name in plan.output:
            if pieces[name]:
                final[name] = np.concatenate(pieces[name])
            else:
                final[name] = np.empty(0, dtype=plan.dtypes.get(name, np.float64))
        return VirtualTable(final, order=plan.output)


    def execute_iter(
        self,
        plan: ExtractionPlan,
        batch_rows: int = 65536,
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
        coalesce_gap_bytes: int = 0,
        vectorize: bool = False,
    ):
        """Stream a plan's results as a sequence of VirtualTable batches.

        Batches contain whole aligned chunk sets, so a batch can exceed
        ``batch_rows`` by at most one AFC's rows; plan with a
        ``chunk_row_cap`` to bound that too.  Empty plans yield nothing.
        Streaming keeps peak memory proportional to the batch size, not
        the result size — the natural mode for the paper's
        tens-of-gigabytes subsets.

        ``vectorize`` runs the WHERE through the compiled kernel per
        AFC.  Unlike :meth:`execute` it never fuses AFCs into larger
        blocks: batch boundaries (whole chunk sets, flushed on filtered
        row count) must stay identical to the interpreted path, which
        cross-AFC fusion would shift.
        """
        if batch_rows < 1:
            raise ExtractionError("batch_rows must be positive")
        stats = stats if stats is not None else IOStats()
        coalesce = self.coalesce_for(plan.afcs, plan.needed, coalesce_gap_bytes)
        kernel = None
        if vectorize and plan.where is not None:
            kernel = self._kernels.get(plan.where, tracer)
        pieces: Dict[str, List[np.ndarray]] = {n: [] for n in plan.output}
        buffered = 0

        def flush() -> VirtualTable:
            nonlocal pieces, buffered
            table = VirtualTable(
                {n: np.concatenate(pieces[n]) for n in plan.output},
                order=plan.output,
            )
            pieces = {n: [] for n in plan.output}
            buffered = 0
            return table

        def mask_of(columns, num_rows):
            if kernel is not None:
                stats.rows_vectorized += num_rows
                return np.asarray(
                    kernel.evaluate(columns, num_rows, tracer=tracer)
                )
            return np.asarray(plan.where.evaluate(columns, self.functions))

        for afc in plan.afcs:
            stats.afcs_processed += 1
            columns = self.extract_afc(
                afc, plan.needed, stats, plan.dtypes, tracer, coalesce
            )
            stats.rows_extracted += afc.num_rows
            if plan.where is not None:
                if tracer.enabled:
                    with tracer.span(
                        "filter", rows=afc.num_rows,
                        vectorized=kernel is not None,
                    ):
                        mask = mask_of(columns, afc.num_rows)
                else:
                    mask = mask_of(columns, afc.num_rows)
                if mask.ndim == 0:
                    if not bool(mask):
                        continue
                    count = afc.num_rows
                    selected = columns
                else:
                    count = int(mask.sum())
                    if count == 0:
                        continue
                    selected = {n: columns[n][mask] for n in plan.output}
            else:
                count = afc.num_rows
                selected = columns
            stats.rows_output += count
            for name in plan.output:
                pieces[name].append(own_column(selected[name]))
            buffered += count
            if buffered >= batch_rows:
                yield flush()
        if buffered:
            yield flush()


def local_mount(root: Union[str, "os.PathLike"]) -> Mount:
    """A mount mapping every node to ``root/<node>`` on the local disk.

    This is how a virtual cluster lives in one directory tree: node
    ``osu0``'s files sit under ``root/osu0/``.  ``root`` may be a ``str``
    or any ``os.PathLike`` (``pathlib.Path``).
    """
    root = os.fspath(root)

    def resolve(node: str, path: str) -> str:
        return os.path.join(root, node, path)

    return resolve
