"""Chunk extraction: turning aligned file chunks into table rows.

This is the runtime half of the paper's extraction function: given an
:class:`~repro.core.afc.ExtractionPlan`, read every member chunk of every
AFC, decode the packed records with precomputed numpy dtypes (zero-copy
views over the read buffer), materialise implicit attributes, apply the
residual WHERE predicate vectorised, and emit the projected columns.

Two small caches make repeated-chunk workloads efficient without changing
semantics:

* an LRU of open file handles (files are opened once per query, not once
  per chunk — the paper's L0 layout opens 18 files per AFC set otherwise);
* an LRU of chunk payloads keyed by (path, offset, length), which pays off
  when one chunk participates in many AFCs (the COORDS file of the paper's
  example appears in all 500 TIME chunks).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from ..errors import ExtractionError
from ..obs.tracer import NULL_TRACER
from ..sql.functions import DEFAULT_REGISTRY, FunctionRegistry
from .afc import AlignedFileChunkSet, ExtractionPlan
from .stats import IOStats
from .table import VirtualTable, own_column

#: Resolves (node, dataset-relative path) to an absolute filesystem path.
Mount = Callable[[str, str], str]


class _HandleCache:
    """LRU cache of open binary file handles."""

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._handles: "OrderedDict[str, object]" = OrderedDict()

    def __contains__(self, path: str) -> bool:
        return path in self._handles

    def get(self, path: str, stats: IOStats):
        handle = self._handles.get(path)
        if handle is not None:
            self._handles.move_to_end(path)
            return handle
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise ExtractionError(f"cannot open {path!r}: {exc}") from exc
        stats.files_opened += 1
        self._handles[path] = handle
        if len(self._handles) > self.capacity:
            _, old = self._handles.popitem(last=False)
            old.close()
        return handle

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()


class _SegmentCache:
    """LRU cache of chunk payload bytes, bounded by total size."""

    def __init__(self, capacity_bytes: int = 32 * 1024 * 1024):
        self.capacity = capacity_bytes
        self.size = 0
        self._segments: "OrderedDict[tuple, bytes]" = OrderedDict()

    def get(self, key: tuple) -> Optional[bytes]:
        data = self._segments.get(key)
        if data is not None:
            self._segments.move_to_end(key)
        return data

    def put(self, key: tuple, data: bytes) -> None:
        if len(data) > self.capacity:
            return
        old = self._segments.pop(key, None)
        if old is not None:
            self.size -= len(old)
        self._segments[key] = data
        self.size += len(data)
        while self.size > self.capacity:
            _, evicted = self._segments.popitem(last=False)
            self.size -= len(evicted)


class Extractor:
    """Executes extraction plans against a filesystem mount."""

    def __init__(
        self,
        mount: Mount,
        functions: Optional[FunctionRegistry] = None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
    ):
        self.mount = mount
        self.functions = functions or DEFAULT_REGISTRY
        #: A FaultyMount (repro.faults) carries its injector here; plain
        #: mounts leave it None and the hot path pays one is-None check.
        self._injector = getattr(mount, "injector", None)
        self._handles = _HandleCache(handle_cache)
        self._segments = _SegmentCache(segment_cache_bytes)
        #: Simulated disk-head position per node: (path, next offset).
        #: A read is charged a seek only when it repositions the head —
        #: consecutive chunks of one file scan sequentially for free,
        #: while layouts that interleave many files (the paper's L0)
        #: pay a seek per switch.
        self._head: Dict[str, tuple] = {}

    def close(self) -> None:
        self._handles.close()

    def drop_caches(self) -> None:
        """Forget cached handles, segments, and head positions (cold runs)."""
        self._handles.close()
        self._segments = _SegmentCache(self._segments.capacity)
        self._head.clear()

    def __enter__(self) -> "Extractor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- chunk I/O ---------------------------------------------------------------

    def read_chunk(
        self,
        node: str,
        path: str,
        offset: int,
        nbytes: int,
        stats: IOStats,
        tracer=NULL_TRACER,
    ) -> bytes:
        """Read one chunk's payload, via the segment cache."""
        key = (node, path, offset, nbytes)
        cached = self._segments.get(key)
        if cached is not None:
            stats.cache_hits += 1
            if tracer.enabled:
                tracer.event("segment_cache_hit", node=node, path=path, bytes=nbytes)
            return cached
        if tracer.enabled:
            tracer.event("segment_cache_miss", node=node, path=path, bytes=nbytes)
        full_path = self.mount(node, path)
        if self._injector is not None and full_path not in self._handles:
            self._injector.on_open(node, path)
        handle = self._handles.get(full_path, stats)
        handle.seek(offset)
        if self._head.get(node) != (path, offset):
            stats.seeks += 1
        self._head[node] = (path, offset + nbytes)
        data = handle.read(nbytes)
        stats.read_calls += 1
        stats.bytes_read += len(data)
        if self._injector is not None:
            data = self._injector.on_read(node, path, offset, data)
        if len(data) != nbytes:
            raise ExtractionError(
                f"short read from {path!r}: wanted {nbytes} bytes at "
                f"offset {offset}, got {len(data)} "
                "(layout descriptor larger than the actual file?)"
            )
        self._segments.put(key, data)
        return data

    # -- AFC decoding -------------------------------------------------------------

    def extract_afc(
        self,
        afc: AlignedFileChunkSet,
        needed: List[str],
        stats: IOStats,
        dtypes: Optional[Dict[str, np.dtype]] = None,
        tracer=NULL_TRACER,
    ) -> Dict[str, np.ndarray]:
        """Materialise the needed columns of one aligned file chunk set."""
        columns: Dict[str, np.ndarray] = afc.implicit_columns(needed)
        if dtypes:
            # Implicit attributes are materialised as integers; narrow them
            # to the schema-declared type so results match stored layouts.
            for name, col in columns.items():
                want = dtypes.get(name)
                if want is not None and col.dtype != want:
                    columns[name] = col.astype(want)
        needed_set = set(needed)
        for chunk in afc.chunks:
            wanted = [a for a in chunk.strip.attrs if a in needed_set]
            if not wanted:
                continue
            nbytes = afc.num_rows * chunk.bytes_per_row
            data = self.read_chunk(
                chunk.node, chunk.path, chunk.offset, nbytes, stats, tracer
            )
            stats.chunks_read += 1
            records = np.frombuffer(data, dtype=chunk.strip.record_dtype(wanted))
            for name in wanted:
                columns[name] = records[name]
        missing = needed_set - set(columns)
        if missing:
            raise ExtractionError(
                f"plan cannot supply columns {sorted(missing)}; "
                "they are neither stored in any chunk nor implicit"
            )
        return columns

    # -- plan execution ---------------------------------------------------------

    def execute(
        self,
        plan: ExtractionPlan,
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
    ) -> VirtualTable:
        """Run a full extraction plan and return the projected table."""
        stats = stats if stats is not None else IOStats()
        with tracer.span("extract", afcs=len(plan.afcs)) as span:
            table = self._execute(plan, stats, tracer)
            span.tag(rows=table.num_rows, bytes_read=stats.bytes_read)
        return table

    def _execute(
        self, plan: ExtractionPlan, stats: IOStats, tracer
    ) -> VirtualTable:
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in plan.output}
        for afc in plan.afcs:
            stats.afcs_processed += 1
            columns = self.extract_afc(afc, plan.needed, stats, plan.dtypes, tracer)
            stats.rows_extracted += afc.num_rows
            if plan.where is not None:
                if tracer.enabled:
                    with tracer.span("filter", rows=afc.num_rows):
                        mask = np.asarray(
                            plan.where.evaluate(columns, self.functions)
                        )
                else:
                    mask = np.asarray(plan.where.evaluate(columns, self.functions))
                if mask.ndim == 0:
                    if not mask:
                        continue
                    selected = columns
                    count = afc.num_rows
                else:
                    count = int(mask.sum())
                    if count == 0:
                        continue
                    selected = {
                        name: columns[name][mask] for name in plan.output
                    }
            else:
                selected = columns
                count = afc.num_rows
            stats.rows_output += count
            for name in plan.output:
                pieces[name].append(own_column(selected[name]))
        final: Dict[str, np.ndarray] = {}
        for name in plan.output:
            if pieces[name]:
                final[name] = np.concatenate(pieces[name])
            else:
                final[name] = np.empty(0, dtype=plan.dtypes.get(name, np.float64))
        return VirtualTable(final, order=plan.output)


    def execute_iter(
        self,
        plan: ExtractionPlan,
        batch_rows: int = 65536,
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
    ):
        """Stream a plan's results as a sequence of VirtualTable batches.

        Batches contain whole aligned chunk sets, so a batch can exceed
        ``batch_rows`` by at most one AFC's rows; plan with a
        ``chunk_row_cap`` to bound that too.  Empty plans yield nothing.
        Streaming keeps peak memory proportional to the batch size, not
        the result size — the natural mode for the paper's
        tens-of-gigabytes subsets.
        """
        if batch_rows < 1:
            raise ExtractionError("batch_rows must be positive")
        stats = stats if stats is not None else IOStats()
        pieces: Dict[str, List[np.ndarray]] = {n: [] for n in plan.output}
        buffered = 0

        def flush() -> VirtualTable:
            nonlocal pieces, buffered
            table = VirtualTable(
                {n: np.concatenate(pieces[n]) for n in plan.output},
                order=plan.output,
            )
            pieces = {n: [] for n in plan.output}
            buffered = 0
            return table

        for afc in plan.afcs:
            stats.afcs_processed += 1
            columns = self.extract_afc(afc, plan.needed, stats, plan.dtypes, tracer)
            stats.rows_extracted += afc.num_rows
            if plan.where is not None:
                if tracer.enabled:
                    with tracer.span("filter", rows=afc.num_rows):
                        mask = np.asarray(
                            plan.where.evaluate(columns, self.functions)
                        )
                else:
                    mask = np.asarray(plan.where.evaluate(columns, self.functions))
                if mask.ndim == 0:
                    if not bool(mask):
                        continue
                    count = afc.num_rows
                    selected = columns
                else:
                    count = int(mask.sum())
                    if count == 0:
                        continue
                    selected = {n: columns[n][mask] for n in plan.output}
            else:
                count = afc.num_rows
                selected = columns
            stats.rows_output += count
            for name in plan.output:
                pieces[name].append(own_column(selected[name]))
            buffered += count
            if buffered >= batch_rows:
                yield flush()
        if buffered:
            yield flush()


def local_mount(root: Union[str, "os.PathLike"]) -> Mount:
    """A mount mapping every node to ``root/<node>`` on the local disk.

    This is how a virtual cluster lives in one directory tree: node
    ``osu0``'s files sit under ``root/osu0/``.  ``root`` may be a ``str``
    or any ``os.PathLike`` (``pathlib.Path``).
    """
    root = os.fspath(root)

    def resolve(node: str, path: str) -> str:
        return os.path.join(root, node, path)

    return resolve
