"""Compiled vectorized predicate kernels.

The paper's central move is shifting work from query time to compile
time: the descriptor is compiled once into a generated index function,
then every query reuses it.  This module extends that philosophy to the
row path.  The interpreted evaluator in ``repro.sql.ast`` walks the AST
once per chunk set — one Python dispatch and one intermediate array per
node per AFC — which dominates filter-heavy workloads now that the I/O
side is coalesced.  A :class:`CompiledPredicate` walks the (already
rewrite-canonicalized) WHERE **once**, producing a fused batch kernel
that every evaluation block reuses:

* **constant folding** — subtrees referencing no column are evaluated
  once at compile time (functions are pure by contract) and become
  scalars; a fully constant predicate never touches row data at all;
* **selectivity-ordered conjuncts** — the kernel tracks each top-level
  AND term's observed pass fraction (an EWMA over evaluated blocks) and
  runs the most selective terms first, short-circuiting the rest of the
  conjunction as soon as the running mask drains to all-False;
* **in-place boolean ops** — AND/OR/NOT combine into reusable
  per-thread mask buffers (``np.logical_and(..., out=...)``) instead of
  allocating a fresh array per AST node;
* **IN via one pass** — membership tests lower to the shared
  :func:`repro.sql.ast.in_list_mask` (``np.isin``, sort-based) instead
  of one full-column equality scan per value;
* **vectorized UDFs** — functions registered with ``vectorized=True``
  are called directly on whole blocks; undeclared functions fall back
  to a batched ``np.vectorize`` adapter (correct but one Python call
  per row — the static analyzer flags the regression as RT309 and the
  tracer counts ``kernel.scalar_udf_calls``).

Bit-identity with the interpreted oracle is by construction: every leaf
uses the same operations (``ast._CMP``, ``in_list_mask``) over the same
full-length blocks, boolean combination is commutative so reordering
cannot change bits, and early exit only skips terms that cannot flip an
already-drained mask.  A term that evaluates to a non-boolean array (no
parser-produced predicate does) makes the kernel defer the whole block
to the interpreted evaluator, so even degenerate hand-built trees agree
exactly.

:class:`BlockPipeline` is the batching half: small AFCs are accumulated
into fused evaluation blocks (one ``np.concatenate`` per needed column,
one kernel evaluation, one fancy-index gather per output column), which
amortizes the per-chunk Python overhead while preserving serial row
order exactly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import QueryValidationError
from ..obs.tracer import NULL_TRACER
from ..sql.ast import (
    And,
    Between,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Node,
    Not,
    Or,
    _CMP,
    in_list_mask,
)
from ..sql.functions import FunctionRegistry
from .stats import IOStats
from .table import own_column

#: Target rows per fused evaluation block.  Small AFCs are concatenated
#: up to this size before one kernel pass; large AFCs simply form their
#: own block.  64Ki rows of one float64 column is 512 KiB — big enough
#: to amortize per-block Python overhead, small enough to stay cache-
#: and memory-friendly.
KERNEL_BLOCK_ROWS = 65536

#: Compile returns this for "not a compile-time constant".
_NOT_CONST = object()

#: EWMA smoothing for observed conjunct selectivity.
_SELECTIVITY_ALPHA = 0.25

MaskLike = Union[np.ndarray, bool]


class _NonBooleanTerm(Exception):
    """A combinator term produced a non-boolean array; the kernel defers
    the block to the interpreted evaluator to mirror its exact (bitwise)
    semantics."""


class _Ctx:
    """One evaluation's state: the column block plus this thread's
    reusable mask buffers, indexed by compile-time slot."""

    __slots__ = ("columns", "num_rows", "bufs")

    def __init__(self, columns: Mapping[str, np.ndarray], num_rows: int,
                 bufs: List[Optional[np.ndarray]]):
        self.columns = columns
        self.num_rows = num_rows
        self.bufs = bufs

    def buffer(self, slot: int, n: int) -> np.ndarray:
        buf = self.bufs[slot]
        if buf is None or buf.shape[0] != n:
            buf = np.empty(n, dtype=bool)
            self.bufs[slot] = buf
        return buf


class _Conjunct:
    """One top-level AND term with its observed-selectivity estimate.

    ``ewma`` is advisory only — it chooses evaluation *order*, never
    result bits — so it is updated without a lock; a lost update under
    concurrent blocks just leaves a slightly stale estimate.
    """

    __slots__ = ("fn", "ewma", "seen")

    def __init__(self, fn: Callable[[_Ctx], MaskLike]):
        self.fn = fn
        self.ewma = 1.0
        self.seen = False

    def observe(self, selectivity: float) -> None:
        if self.seen:
            self.ewma += _SELECTIVITY_ALPHA * (selectivity - self.ewma)
        else:
            self.ewma = selectivity
            self.seen = True


class CompiledPredicate:
    """A WHERE clause compiled once into a fused numpy batch kernel.

    Thread safe: mask buffers are per-thread, selectivity statistics are
    advisory, and the compiled closures themselves are immutable.  The
    returned mask may alias an internal per-thread buffer — consume it
    (count/gather) before the next ``evaluate`` call on the same thread,
    exactly like every in-repo consumer does.
    """

    def __init__(self, where: Node, functions: FunctionRegistry):
        self._where = where
        self._functions = functions
        self._num_slots = 0
        self._num_nodes = 0
        #: Names of referenced functions running through the np.vectorize
        #: fallback (registered without ``vectorized=True``).
        self.scalar_udfs: List[str] = []
        self._tls = threading.local()
        self._const: Union[object, bool] = _NOT_CONST
        self._conjuncts: List[_Conjunct] = []
        self._root_slot = 0
        self._compile_root(where)

    # -- compilation ---------------------------------------------------------

    def _compile_root(self, where: Node) -> None:
        if not where.referenced_columns():
            self._const = bool(self._fold(where))
            return
        terms = where.terms if isinstance(where, And) else (where,)
        conjuncts: List[_Conjunct] = []
        for term in terms:
            fn, const = self._compile(term)
            if const is not _NOT_CONST:
                if not const:
                    self._const = False  # one False term drains the AND
                    return
                continue  # True is neutral in a conjunction
            conjuncts.append(_Conjunct(fn))
        if not conjuncts:
            self._const = True
            return
        self._root_slot = self._new_slot()
        self._conjuncts = conjuncts

    def _fold(self, node: Node):
        """Evaluate a column-free subtree once, at compile time."""
        value = node.evaluate({}, self._functions)
        if isinstance(value, np.ndarray) and value.ndim == 0:
            value = value.item()
        return value

    def _new_slot(self) -> int:
        self._num_slots += 1
        return self._num_slots - 1

    def _compile(self, node: Node) -> Tuple[Callable[[_Ctx], MaskLike], object]:
        """Closure for one subtree, plus its folded value when constant."""
        self._num_nodes += 1
        if not node.referenced_columns() and not isinstance(node, (Column,)):
            value = self._fold(node)
            return (lambda ctx: value), value
        if isinstance(node, Column):
            name = node.name

            def load(ctx: _Ctx):
                try:
                    return ctx.columns[name]
                except KeyError:
                    raise QueryValidationError(
                        f"unknown attribute {name!r}"
                    ) from None

            return load, _NOT_CONST
        if isinstance(node, Comparison):
            return self._compile_comparison(node), _NOT_CONST
        if isinstance(node, Between):
            return self._compile_between(node), _NOT_CONST
        if isinstance(node, InList):
            return self._compile_in(node), _NOT_CONST
        if isinstance(node, And):
            return self._compile_chain(node.terms, is_and=True), _NOT_CONST
        if isinstance(node, Or):
            return self._compile_chain(node.terms, is_and=False), _NOT_CONST
        if isinstance(node, Not):
            return self._compile_not(node), _NOT_CONST
        if isinstance(node, FunctionCall):
            return self._compile_call(node), _NOT_CONST
        # Unknown node type (an extension subclass): defer to its own
        # interpreted evaluate, which is by definition the oracle.
        functions = self._functions
        return (lambda ctx: node.evaluate(ctx.columns, functions)), _NOT_CONST

    def _compile_comparison(self, node: Comparison):
        op = _CMP[node.op]
        left, _ = self._compile(node.left)
        right, _ = self._compile(node.right)

        def run(ctx: _Ctx):
            return op(left(ctx), right(ctx))

        return run

    def _compile_between(self, node: Between):
        operand, _ = self._compile(node.operand)
        lo, hi = node.lo, node.hi

        def run(ctx: _Ctx):
            data = operand(ctx)
            low = data >= lo
            high = data <= hi
            if (
                isinstance(low, np.ndarray)
                and low.dtype == np.bool_
                and isinstance(high, np.ndarray)
            ):
                # ``low`` is a fresh comparison result, safe to reuse.
                return np.logical_and(low, high, out=low)
            return low & high

        return run

    def _compile_in(self, node: InList):
        operand, _ = self._compile(node.operand)
        values = node.values

        def run(ctx: _Ctx):
            return in_list_mask(np.asarray(operand(ctx)), values)

        return run

    def _compile_not(self, node: Not):
        term, _ = self._compile(node.term)
        slot = self._new_slot()

        def run(ctx: _Ctx):
            arr = np.asarray(term(ctx))
            if arr.ndim == 0:
                return not bool(arr)
            if arr.dtype != np.bool_:
                return ~arr  # mirror the interpreted bitwise ~
            return np.logical_not(arr, out=ctx.buffer(slot, arr.shape[0]))

        return run

    def _compile_chain(self, terms: Sequence[Node], is_and: bool):
        """A nested AND/OR: in-place combination with early exit, source
        order (only the *root* conjunction reorders by selectivity)."""
        fns = []
        for term in terms:
            fn, const = self._compile(term)
            if const is not _NOT_CONST:
                if bool(const) != is_and:
                    # False in an AND / True in an OR decides the chain.
                    decided = not is_and
                    return lambda ctx: decided
                continue  # neutral element
            fns.append(fn)
        if not fns:
            neutral = is_and
            return lambda ctx: neutral
        if len(fns) == 1:
            return fns[0]
        slot = self._new_slot()
        combine = np.logical_and if is_and else np.logical_or

        def run(ctx: _Ctx):
            out = None
            for fn in fns:
                arr = np.asarray(fn(ctx))
                if arr.ndim == 0:
                    if bool(arr) != is_and:
                        return not is_and
                    continue
                if arr.dtype != np.bool_:
                    raise _NonBooleanTerm
                if out is None:
                    out = ctx.buffer(slot, arr.shape[0])
                    np.copyto(out, arr)
                else:
                    combine(out, arr, out=out)
                # Early exit: a drained AND / saturated OR is decided.
                if is_and:
                    if not out.any():
                        return out
                elif out.all():
                    return out
            if out is None:
                return is_and
            return out

        return run

    def _compile_call(self, node: FunctionCall):
        func = self._functions.get(node.name)
        if self._functions.is_vectorized(node.name):
            call = func
        else:
            # Batched elementwise adapter: correct for any pure scalar
            # function, but one Python call per row — the visible
            # regression RT309/kernel.scalar_udf_calls report.
            call = np.vectorize(func)
            self.scalar_udfs.append(node.name.upper())
        args = [self._compile(arg)[0] for arg in node.args]

        def run(ctx: _Ctx):
            return call(*[fn(ctx) for fn in args])

        return run

    # -- evaluation ----------------------------------------------------------

    @property
    def num_conjuncts(self) -> int:
        return len(self._conjuncts)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def is_constant(self) -> bool:
        return self._const is not _NOT_CONST

    def _buffers(self) -> List[Optional[np.ndarray]]:
        bufs = getattr(self._tls, "bufs", None)
        if bufs is None or len(bufs) != self._num_slots:
            bufs = [None] * self._num_slots
            self._tls.bufs = bufs
        return bufs

    def evaluate(
        self,
        columns: Mapping[str, np.ndarray],
        num_rows: int,
        tracer=NULL_TRACER,
    ) -> MaskLike:
        """The predicate's mask over one block: a bool array of
        ``num_rows`` (possibly aliasing a per-thread buffer) or a scalar
        bool meaning all/no rows pass."""
        if self._const is not _NOT_CONST:
            return bool(self._const)
        if num_rows == 0:
            return np.zeros(0, dtype=bool)
        ctx = _Ctx(columns, num_rows, self._buffers())
        conjuncts = self._conjuncts
        if len(conjuncts) > 1:
            # Most selective first: stable sort keeps source order for
            # ties and for the first, unobserved block.
            conjuncts = sorted(conjuncts, key=lambda c: c.ewma)
        try:
            return self._evaluate_ordered(ctx, conjuncts, num_rows, tracer)
        except _NonBooleanTerm:
            # Degenerate tree (non-boolean term): the interpreted
            # evaluator IS the semantics; defer the whole block.
            return np.asarray(self._where.evaluate(columns, self._functions))

    def _evaluate_ordered(self, ctx, conjuncts, num_rows, tracer) -> MaskLike:
        out: Optional[np.ndarray] = None
        for index, conjunct in enumerate(conjuncts):
            value = conjunct.fn(ctx)
            arr = np.asarray(value)
            if arr.ndim == 0:
                if not arr:
                    return False
                continue
            if arr.dtype != np.bool_:
                raise _NonBooleanTerm
            conjunct.observe(np.count_nonzero(arr) / num_rows)
            if out is None:
                out = ctx.buffer(self._root_slot, arr.shape[0])
                np.copyto(out, arr)
            else:
                np.logical_and(out, arr, out=out)
            if not out.any():
                if tracer.enabled and index + 1 < len(conjuncts):
                    tracer.metrics.record("kernel.early_exits")
                return out
        if out is None:
            return True
        return out


class KernelCache:
    """Bounded LRU of compiled predicates, keyed by the (hashable,
    rewrite-canonicalized) WHERE node.  One cache per consumer, bound to
    that consumer's function registry; thread safe."""

    def __init__(self, functions: FunctionRegistry, capacity: int = 256):
        self.functions = functions
        self.capacity = capacity
        self._lock = threading.Lock()
        self._kernels: "OrderedDict[Node, CompiledPredicate]" = OrderedDict()

    def get(self, where: Node, tracer=NULL_TRACER) -> CompiledPredicate:
        with self._lock:
            kernel = self._kernels.get(where)
            if kernel is not None:
                self._kernels.move_to_end(where)
                return kernel
        # Compile outside the lock: a racing duplicate compile is
        # harmless (last one wins) and compilation may call UDFs
        # (constant folding) that must not serialize other queries.
        if tracer.enabled:
            with tracer.span("kernel_compile") as span:
                kernel = CompiledPredicate(where, self.functions)
                span.tag(
                    conjuncts=kernel.num_conjuncts,
                    nodes=kernel.num_nodes,
                    scalar_udfs=len(kernel.scalar_udfs),
                )
            tracer.metrics.record("kernel.compiles")
            for name in kernel.scalar_udfs:
                tracer.metrics.record("kernel.scalar_udf_calls")
                tracer.event("kernel_scalar_udf", function=name)
        else:
            kernel = CompiledPredicate(where, self.functions)
        with self._lock:
            self._kernels[where] = kernel
            while len(self._kernels) > self.capacity:
                self._kernels.popitem(last=False)
        return kernel

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)


class BlockPipeline:
    """Fuses small per-AFC column blocks into large kernel evaluations.

    ``add`` buffers one AFC's needed columns; once ``block_rows`` rows
    are pending, the pipeline concatenates each needed column once,
    evaluates the kernel once, and gathers each output column with one
    fancy index — appending owned, serially-ordered pieces to
    :attr:`pieces`.  ``finish`` flushes the remainder.  Row order is the
    ``add`` order throughout, identical to per-AFC filtering.
    """

    def __init__(
        self,
        kernel: CompiledPredicate,
        needed: Sequence[str],
        output: Sequence[str],
        block_rows: int = KERNEL_BLOCK_ROWS,
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
    ):
        self.kernel = kernel
        self.needed = list(needed)
        self.output = list(output)
        self.block_rows = max(1, block_rows)
        self.stats = stats
        self.tracer = tracer
        self.pieces: Dict[str, List[np.ndarray]] = {n: [] for n in self.output}
        self.rows_selected = 0
        self._pending: List[Tuple[Mapping[str, np.ndarray], int]] = []
        self._pending_rows = 0

    def add(self, columns: Mapping[str, np.ndarray], num_rows: int) -> None:
        self._pending.append((columns, num_rows))
        self._pending_rows += num_rows
        if self._pending_rows >= self.block_rows:
            self._flush()

    def finish(self) -> None:
        self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        num_rows = self._pending_rows
        if len(self._pending) == 1:
            block = dict(self._pending[0][0])
        else:
            block = {
                name: np.concatenate(
                    [columns[name] for columns, _ in self._pending]
                )
                for name in self.needed
            }
        self._pending = []
        self._pending_rows = 0
        if self.stats is not None:
            self.stats.rows_vectorized += num_rows
        if self.tracer.enabled:
            with self.tracer.span(
                "filter", rows=num_rows, vectorized=True
            ) as span:
                count = self._filter_block(block, num_rows)
                span.tag(out=count)
            self.tracer.metrics.record("kernel.blocks")
        else:
            count = self._filter_block(block, num_rows)
        if self.stats is not None:
            self.stats.rows_output += count
        self.rows_selected += count

    def _filter_block(self, block: Dict[str, np.ndarray], num_rows: int) -> int:
        mask = self.kernel.evaluate(block, num_rows, tracer=self.tracer)
        if isinstance(mask, (bool, np.bool_)):
            if not mask:
                return 0
            for name in self.output:
                self.pieces[name].append(own_column(block[name]))
            return num_rows
        count = int(np.count_nonzero(mask))
        if count:
            for name in self.output:
                # Fancy indexing copies, so the piece is owned and the
                # kernel's mask buffer is free for the next block.
                self.pieces[name].append(own_column(block[name][mask]))
        return count
