"""Unified execution options for every query entry point.

Before this module, execution knobs drifted apart per method:
``QueryService.submit`` took ``num_clients/partitioner/remote/parallel``,
``Virtualizer.query_iter`` took ``batch_rows``, and tracing had no surface
at all.  :class:`ExecOptions` is the single carrier accepted by
``Virtualizer.query`` / ``query_iter`` and ``QueryService.submit`` (and
``Catalog.submit``); the old per-method keywords still work through a
deprecation shim in each method.

The dataclass is frozen: derive variants with :meth:`replace`, e.g.
``LOCAL = ExecOptions(remote=False); LOCAL.replace(trace=True)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..obs.tracer import NullTracer, Tracer, as_tracer

if TYPE_CHECKING:  # storm imports core; never the other way around
    from ..storm.partition import Partitioner


@dataclass(frozen=True)
class ExecOptions:
    """How a query runs — transport, parallelism, batching, tracing.

    ``remote``      charge result transfer to the network (the paper's
                    client/server mode); ``False`` models a co-located
                    client and skips partition/mover entirely.
    ``parallel``    extract on one thread per node.
    ``num_clients`` destination processors for partition generation.
    ``partitioner`` row-distribution scheme (default round-robin).
    ``batch_rows``  target rows per batch for streaming execution.
    ``trace``       ``True`` for a fresh tracer, a :class:`Tracer` to
                    collect into, or ``None``/``False`` for the no-op
                    tracer (the near-zero-overhead default).
    """

    remote: bool = True
    parallel: bool = True
    num_clients: int = 1
    partitioner: Optional["Partitioner"] = None
    batch_rows: int = 65536
    trace: Union[bool, Tracer, None] = None

    def replace(self, **changes) -> "ExecOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def tracer(self) -> Union[Tracer, NullTracer]:
        """Resolve :attr:`trace` to a tracer instance (see ``as_tracer``)."""
        return as_tracer(self.trace)


#: Shared defaults, so call sites can write ``DEFAULT_OPTIONS.replace(...)``.
DEFAULT_OPTIONS = ExecOptions()
