"""Unified execution options for every query entry point.

Before this module, execution knobs drifted apart per method:
``QueryService.submit`` took ``num_clients/partitioner/remote/parallel``,
``Virtualizer.query_iter`` took ``batch_rows``, and tracing had no surface
at all.  :class:`ExecOptions` is the single carrier accepted by
``Virtualizer.query`` / ``query_iter`` and ``QueryService.submit`` (and
``Catalog.submit``); the old per-method keywords still work through a
deprecation shim in each method.

The dataclass is frozen: derive variants with :meth:`replace`, e.g.
``LOCAL = ExecOptions(remote=False); LOCAL.replace(trace=True)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..obs.tracer import NullTracer, Tracer, as_tracer

if TYPE_CHECKING:  # storm imports core; never the other way around
    from ..storm.partition import Partitioner


@dataclass(frozen=True)
class ExecOptions:
    """How a query runs — transport, parallelism, batching, tracing.

    ``remote``      charge result transfer to the network (the paper's
                    client/server mode); ``False`` models a co-located
                    client and skips partition/mover entirely.
    ``parallel``    extract on one thread per node.
    ``num_clients`` destination processors for partition generation.
    ``partitioner`` row-distribution scheme (default round-robin).
    ``batch_rows``  target rows per batch for streaming execution.
    ``trace``       ``True`` for a fresh tracer, a :class:`Tracer` to
                    collect into, or ``None``/``False`` for the no-op
                    tracer (the near-zero-overhead default).

    I/O shape (see docs/architecture.md, "The I/O path"):

    ``coalesce_gap_bytes``  chunk reads against one file that are
                      adjacent or separated by at most this many bytes
                      are merged into a single ``read()`` call (the gap
                      bytes are read and discarded).  ``0`` disables
                      coalescing entirely — every chunk pays its own
                      read, the paper's Section 4.2 access pattern.
    ``intra_node_workers``  threads extracting one node's AFCs
                      concurrently.  ``1`` (the default) keeps per-node
                      extraction serial; higher values overlap chunk
                      I/O and decode within a node while output row
                      order stays identical to serial execution.

    Resilience (see docs/architecture.md, "Failure model and degraded
    execution"):

    ``retries``       extra attempts per failed node extraction (and per
                      failed result transfer) before giving up on it.
    ``retry_backoff`` seconds slept before the first retry; doubles each
                      further retry (exponential backoff).
    ``node_timeout``  seconds one extraction attempt may run before it is
                      abandoned as hung; timeouts count as failed
                      attempts and are retried like any other failure.
    ``allow_partial`` when a node is still failing after all retries,
                      return a degraded result (``QueryResult.degraded``
                      True, the node listed in ``failed_nodes``) instead
                      of raising :class:`~repro.errors.NodeFailureError`.

    Static analysis (see docs/diagnostics.md):

    ``strict``        run the ``repro.diag`` analyzers before executing and
                      refuse the query when the descriptor or the query has
                      any finding — warnings are escalated to errors.  Off
                      by default: warnings then only flow to the tracer
                      (``diag`` events, ``diag.warnings`` counter).

    Network transport (see docs/architecture.md, "Deployment"; used only
    when the query service reaches real node-server processes over
    ``tcp://``, ignored by the in-process ``local://`` path):

    ``connect_timeout``  seconds one TCP dial (plus handshake) to a node
                      server may take before the attempt fails with a
                      retryable connection error.
    ``max_connections_per_node``  size of the coordinator's connection
                      pool per node server; concurrent requests beyond
                      it queue for a pooled connection.
    ``inflight_limit``  admission control: total requests the
                      coordinator allows on the wire at once across all
                      nodes; excess submits queue until a slot frees.

    Aggregation (see docs/architecture.md, "Aggregate pushdown"):

    ``agg_pushdown``  compute partial aggregates on the data-source
                      nodes and merge the per-node state frames at the
                      coordinator (the default).  ``False`` is the
                      ablation: nodes ship full filtered rows and the
                      coordinator aggregates client-side — results are
                      identical, only the bytes moved change (diag RO308
                      notes the ablation).  Coordinator-side only; node
                      servers never see this flag.

    Vectorized execution (see docs/architecture.md, "Vectorized
    execution"):

    ``vectorize``     ``"on"`` (the default) compiles each query's
                      residual WHERE once into a fused numpy batch
                      kernel (``repro.core.kernels``) and batches small
                      chunk sets into shared evaluation blocks —
                      results are bit-identical to the interpreted
                      walk, only faster.  ``"off"`` is the ablation
                      oracle: the per-node interpreted AST evaluator,
                      exactly as before kernels existed (diag RO314
                      notes the ablation).  Honoured by every path —
                      local extraction, per-node services (the flag
                      crosses the wire to ``tcp://`` node servers), and
                      cache-subsumption refiltering.

    Caching (see docs/architecture.md, "Caching & reuse"):

    ``cache_mode``    ``"off"`` (default) runs every query cold, exactly
                      as before caching existed.  ``"exact"`` serves
                      repeats of an identical normalized query from the
                      result cache; ``"subsume"`` additionally answers a
                      query whose ranges are contained in a cached
                      entry's by re-filtering the cached superset.  Both
                      warm modes also memoize extraction plans.
    ``result_cache_bytes``  byte budget of the shared LRU result cache
                      (per Virtualizer / QueryService); results larger
                      than the budget are never cached.
    ``plan_cache_entries``  entry budget of the plan cache; ``0``
                      disables plan memoization while leaving result
                      caching on.

    Scheduling (see docs/architecture.md, "Scheduling & admission";
    these fields are read by :class:`repro.sched.Scheduler` — plain
    ``QueryService.submit`` honours only the quotas/deadline/run_state
    group):

    ``tenant``        fair-share accounting identity of the submitter;
                      each tenant gets its own weighted queue.
    ``priority``      ``> 0`` routes the query onto the priority lane,
                      which is served before any fair-share queue and
                      has a reserved worker (higher values first).
    ``scheduler``     ``"fair"`` (default) weighted fair-share across
                      tenants; ``"fifo"`` one global arrival-order
                      queue (priority lane still honoured); ``"off"``
                      bypasses scheduling entirely — the ablation mode
                      used by the latency benchmarks.
    ``scheduler_workers``  concurrent queries the scheduler dispatches
                      (and the size of the query service's shared node
                      fan-out pool); ``0`` picks an automatic size.
    ``admission``     what happens to a query predicted over its
                      ``admission_budget``: ``"reject"`` (default)
                      raises :class:`~repro.errors.AdmissionError`,
                      ``"queue"`` parks it on the backfill lane, served
                      only when every other lane is empty.
    ``admission_budget``  cost ceiling in *simulated seconds* (the
                      deterministic ``storm/cost.py`` scale, not wall
                      time); ``None`` disables admission control.
    ``row_quota``     max filtered rows the query may produce;
                      enforced cooperatively at data-source partial
                      boundaries, tripping with
                      :class:`~repro.errors.QuotaExceededError`.
    ``byte_quota``    max bytes the query may read from disk; same
                      cooperative enforcement.
    ``deadline``      seconds after submission at which the query is
                      auto-cancelled (queued work immediately,
                      in-flight work at its next boundary).
    ``run_state``     internal: the scheduler's live cancel/quota state
                      for this submission.  Never set by callers and
                      never serialised to node servers.
    """

    remote: bool = True
    parallel: bool = True
    num_clients: int = 1
    partitioner: Optional["Partitioner"] = None
    batch_rows: int = 65536
    trace: Union[bool, Tracer, None] = None
    coalesce_gap_bytes: int = 64 * 1024
    intra_node_workers: int = 1
    retries: int = 0
    retry_backoff: float = 0.0
    node_timeout: Optional[float] = None
    allow_partial: bool = False
    strict: bool = False
    agg_pushdown: bool = True
    vectorize: str = "on"
    connect_timeout: float = 5.0
    max_connections_per_node: int = 4
    inflight_limit: int = 64
    cache_mode: str = "off"
    result_cache_bytes: int = 64 * 1024 * 1024
    plan_cache_entries: int = 128
    tenant: str = "default"
    priority: int = 0
    scheduler: str = "fair"
    scheduler_workers: int = 0
    admission: str = "reject"
    admission_budget: Optional[float] = None
    row_quota: Optional[int] = None
    byte_quota: Optional[int] = None
    deadline: Optional[float] = None
    run_state: Optional[object] = dataclasses.field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.vectorize not in ("off", "on"):
            raise ValueError(
                f"vectorize must be 'off' or 'on', not {self.vectorize!r}"
            )
        if self.cache_mode not in ("off", "exact", "subsume"):
            raise ValueError(
                f"cache_mode must be 'off', 'exact', or 'subsume', "
                f"not {self.cache_mode!r}"
            )
        if self.result_cache_bytes < 0:
            raise ValueError("result_cache_bytes must be >= 0")
        if self.plan_cache_entries < 0:
            raise ValueError("plan_cache_entries must be >= 0")
        if self.scheduler not in ("fair", "fifo", "off"):
            raise ValueError(
                f"scheduler must be 'fair', 'fifo', or 'off', "
                f"not {self.scheduler!r}"
            )
        if self.admission not in ("reject", "queue"):
            raise ValueError(
                f"admission must be 'reject' or 'queue', "
                f"not {self.admission!r}"
            )

    def replace(self, **changes) -> "ExecOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def tracer(self) -> Union[Tracer, NullTracer]:
        """Resolve :attr:`trace` to a tracer instance (see ``as_tracer``)."""
        return as_tracer(self.trace)


def resolve_workers(requested: int) -> int:
    """Concrete worker count for ``ExecOptions.scheduler_workers``.

    ``0`` (auto) sizes generously — enough lanes that a lone client
    never queues behind an idle machine — while staying bounded; any
    positive value is taken as-is.
    """
    if requested > 0:
        return requested
    import os

    return min(32, 4 * (os.cpu_count() or 2))


#: Shared defaults, so call sites can write ``DEFAULT_OPTIONS.replace(...)``.
DEFAULT_OPTIONS = ExecOptions()
