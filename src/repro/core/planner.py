"""Query planning: descriptor + SQL -> extraction plan.

:class:`CompiledDataset` is the interpreted realisation of the paper's
two-phase design.  At construction ("compile time") it enumerates every
physical file with its strip geometry, forms all consistent file groups,
and computes each group's static alignment.  At query time it only
evaluates integer range checks and emits aligned file chunks — no
meta-data parsing or expression evaluation happens per query.

The code generator (:mod:`repro.core.codegen`) emits a specialised module
with the same query-time interface but all tables constant-folded; this
class doubles as the semantics reference the generated code is tested
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle (diag imports sql)
    from ..diag.core import Collector

from ..errors import PlanningError, QueryValidationError
from ..metadata.descriptor import Descriptor, parse_descriptor
from ..obs.tracer import NULL_TRACER
from ..sql.ast import Query
from ..sql.parser import parse_query
from ..sql.ranges import RangeMap, extract_ranges, query_is_unsatisfiable
from ..sql.rewrite import rewrite_query
from .afc import AlignedFileChunkSet, ExtractionPlan
from .analysis import (
    Alignment,
    ChunkSummaries,
    compute_alignment,
    enumerate_afcs,
    match_file,
)
from .strips import PhysicalFile, enumerate_files, row_variable_order


@dataclass
class StaticGroup:
    """One precomputed consistent file group with its chunk geometry."""

    files: Tuple[PhysicalFile, ...]
    env: Dict[str, int]
    alignment: Alignment


class CompiledDataset:
    """A descriptor compiled into query-ready planning tables."""

    #: ``QueryService`` passes a tracer to ``plan`` only when this is set,
    #: so duck-typed datasets (hand-written planners with a bare
    #: ``plan(sql)``) keep working unchanged.
    supports_tracing = True

    def __init__(
        self,
        descriptor: Union[Descriptor, str],
        summaries: Optional[ChunkSummaries] = None,
        chunk_row_cap: Optional[int] = None,
        lazy_groups: bool = False,
    ):
        if isinstance(descriptor, str):
            descriptor = parse_descriptor(descriptor)
        self.descriptor = descriptor
        #: Optional cap on rows per aligned chunk; plans split larger AFCs
        #: (see repro.core.afc.split_afc).  None keeps natural granularity.
        self.chunk_row_cap = chunk_row_cap
        self.schema = descriptor.schema
        self.files = enumerate_files(descriptor)
        self.row_var_order = row_variable_order(descriptor)
        self.leaf_order = [leaf.name for leaf in descriptor.leaves()]
        self.index_attrs = descriptor.index_attrs
        self.summaries = summaries

        stored_attrs = self._stored_attrs()
        #: DATAINDEX attributes that are physically stored (Titan's X/Y/Z):
        #: these need the chunk-summary index; implicit ones prune for free.
        self.stored_index_attrs = tuple(
            a for a in self.index_attrs if a in stored_attrs
        )
        self.stored_index_leaves = self._stored_index_leaves()
        self._groups: Optional[List[StaticGroup]] = None
        self._warnings: Optional[List[str]] = None
        self._diagnostics = None
        if not lazy_groups:
            _ = self.groups  # surface group/alignment errors at load time

    @property
    def groups(self) -> List["StaticGroup"]:
        """Consistent file groups with their alignments (built lazily when
        a cached generated module makes the analysis unnecessary)."""
        if self._groups is None:
            self._groups = self._build_groups()
        return self._groups

    @property
    def warnings(self) -> List[str]:
        """Performance diagnostics discovered at compile time (never
        errors — the plans are correct, just slow)."""
        if self._warnings is None:
            self._warnings = self._collect_warnings()
        return self._warnings

    @property
    def diagnostics(self) -> "Collector":
        """Static-analysis findings for the descriptor (a
        :class:`repro.diag.Collector`), computed lazily.  The descriptor
        already validated at load, so these are warnings/infos in
        practice; ``ExecOptions(strict=True)`` refuses queries when any
        are present."""
        if self._diagnostics is None:
            from ..diag.linter import lint_descriptor

            self._diagnostics = lint_descriptor(self.descriptor)
        return self._diagnostics

    # -- compile-time -----------------------------------------------------------

    def _stored_attrs(self) -> Set[str]:
        out: Set[str] = set()
        for file in self.files:
            for strip in file.strips:
                out.update(strip.attrs)
        return out

    def _stored_index_leaves(self) -> Tuple[str, ...]:
        """Leaves that store at least one DATAINDEX attribute."""
        index_set = set(self.stored_index_attrs)
        names: List[str] = []
        for file in self.files:
            if file.leaf_name in names:
                continue
            for strip in file.strips:
                if index_set & set(strip.attrs):
                    names.append(file.leaf_name)
                    break
        return tuple(names)

    def _build_groups(self) -> List[StaticGroup]:
        """All consistent file groups, via an incremental consistency join.

        A naive cartesian product across leaves is exponential (the paper's
        L0 layout has 18 leaves); joining one leaf at a time and rejecting
        inconsistent partial groups early keeps the work proportional to
        the number of *surviving* groups.
        """
        classes: List[List[PhysicalFile]] = [
            [f for f in self.files if f.leaf_name == name]
            for name in self.leaf_order
        ]
        for name, cls in zip(self.leaf_order, classes):
            if not cls:
                raise PlanningError(f"leaf {name!r} enumerates no files")

        # partial: (files tuple, merged env, merged geometry)
        partials: List[Tuple[Tuple[PhysicalFile, ...], Dict[str, int], Dict]] = [
            ((), {}, {})
        ]
        for cls in classes:
            extended = []
            for files, env, geometry in partials:
                for file in cls:
                    merged_env = _merge_env(env, file.env)
                    if merged_env is None:
                        continue
                    merged_geo = _merge_geometry(geometry, file.loop_geometry())
                    if merged_geo is None:
                        continue
                    if not _env_within_geometry(merged_env, merged_geo):
                        continue
                    extended.append((files + (file,), merged_env, merged_geo))
            partials = extended
            if not partials:
                break

        groups: List[StaticGroup] = []
        for files, env, _ in partials:
            strips = [s for f in files for s in f.strips]
            alignment = compute_alignment(
                strips, self.index_attrs, self.stored_index_leaves
            )
            groups.append(StaticGroup(files, env, alignment))
        if not groups:
            raise PlanningError(
                "no consistent file groups exist; check that shared loop "
                "variables iterate identical ranges across leaves"
            )
        return groups

    def _collect_warnings(self) -> List[str]:
        out: List[str] = []
        degenerate = [
            g for g in self.groups if g.alignment.num_rows == 1
            and any(s.dims for f in g.files for s in f.strips)
        ]
        if degenerate:
            sample = degenerate[0]
            names = ", ".join(f.relpath for f in sample.files)
            out.append(
                f"{len(degenerate)} file group(s) have no common dense loop "
                f"suffix (e.g. {{{names}}}); every row becomes its own "
                "aligned chunk set, which is correct but slow — consider "
                "matching the innermost loop order across leaves"
            )
        if not self.index_attrs:
            big = sum(f.expected_size for f in self.files)
            if big > 64 * 1024 * 1024:
                out.append(
                    f"no DATAINDEX declared on a {big / 1e6:.0f} MB dataset: "
                    "every query will scan all chunks"
                )
        chunky = [
            g for g in self.groups
            if g.alignment.num_rows * max(
                (s.record_size for f in g.files for s in f.strips),
                default=0,
            ) > 256 * 1024 * 1024
        ]
        if chunky:
            out.append(
                f"{len(chunky)} group(s) have aligned chunks over 256 MB; "
                "consider chunk_row_cap to bound extraction buffers"
            )
        return out

    # -- query-time ---------------------------------------------------------------

    def resolve_query(self, query: Union[Query, str]) -> Query:
        if isinstance(query, str):
            query = parse_query(query)
        if query.table != self.descriptor.name:
            raise QueryValidationError(
                f"query targets table {query.table!r}, but this dataset is "
                f"{self.descriptor.name!r}"
            )
        return query

    def needed_columns(self, query: Query) -> Tuple[List[str], List[str]]:
        """(needed, output) column lists, validated against the schema.

        For aggregate queries both lists describe the *base row plan*:
        the group keys and aggregate arguments extraction must
        materialise, not the computed output labels (those come from the
        plan's :class:`~repro.core.aggregate.AggregateSpec`).
        """
        if query.is_aggregate:
            from .aggregate import aggregate_spec

            spec = aggregate_spec(query, self.schema.names)
            output = list(spec.group_by)
            for item in spec.items:
                if item.column is not None and item.column not in output:
                    output.append(item.column)
        else:
            output = query.projected_names(self.schema.names)
        needed = list(output)
        for name in query.referenced_columns():
            if name not in self.schema:
                raise QueryValidationError(
                    f"WHERE references unknown attribute {name!r} "
                    f"(schema {self.schema.name!r} has {self.schema.names})"
                )
            if name not in needed:
                needed.append(name)
        return needed, output

    def index(self, ranges: RangeMap) -> List[AlignedFileChunkSet]:
        """The paper's *index function*: query ranges -> matching AFCs."""
        afcs: List[AlignedFileChunkSet] = []
        for group in self.groups:
            if not all(match_file(f, ranges) for f in group.files):
                continue
            afcs.extend(
                enumerate_afcs(
                    group.files,
                    group.env,
                    group.alignment,
                    self.row_var_order,
                    ranges,
                    summaries=self.summaries,
                    summary_attrs=self.stored_index_attrs,
                )
            )
        return afcs

    def plan(self, query: Union[Query, str], tracer=NULL_TRACER) -> ExtractionPlan:
        """Full planning: parse/validate, derive ranges, emit the plan."""
        with tracer.span("plan", dataset=self.descriptor.name) as span:
            query = self.resolve_query(query)
            with tracer.span("rewrite") as rewrite_span:
                query, rewrite_steps = rewrite_query(query)
                rewrite_span.tag(steps=len(rewrite_steps))
                if tracer.enabled:
                    for step in rewrite_steps:
                        tracer.event(
                            "rewrite", code=step.code, detail=step.detail
                        )
            needed, output = self.needed_columns(query)
            spec = None
            if query.is_aggregate:
                from .aggregate import aggregate_spec

                spec = aggregate_spec(query, self.schema.names)
            ranges = extract_ranges(query.where)
            dtypes = {a.name: a.dtype for a in self.schema}
            if query_is_unsatisfiable(ranges):
                span.tag(unsatisfiable=True, afcs=0)
                return ExtractionPlan(
                    [], needed, output, query.where, dtypes, aggregate=spec
                )
            # Note: no ``len(self.groups)`` tag here — touching ``groups``
            # would defeat the lazy analysis on the cached-codegen path.
            with tracer.span("index") as index_span:
                afcs = self.index(ranges)
                index_span.tag(afcs=len(afcs))
            if self.chunk_row_cap is not None:
                from .afc import split_afc

                afcs = [
                    piece
                    for afc in afcs
                    for piece in split_afc(afc, self.chunk_row_cap)
                ]
            span.tag(afcs=len(afcs))
            return ExtractionPlan(
                afcs, needed, output, query.where, dtypes, aggregate=spec
            )

    # -- introspection ------------------------------------------------------------

    def explain(self, query: Union[Query, str]) -> str:
        """Human-readable plan summary (for the examples and debugging)."""
        plan = self.plan(query)
        lines = [
            f"dataset: {self.descriptor.name}",
            f"groups: {len(self.groups)} static, AFCs planned: {len(plan.afcs)}",
            f"rows planned: {plan.planned_rows}, bytes planned: {plan.planned_bytes}",
            f"needed columns: {plan.needed}",
            f"output columns: {plan.output}",
        ]
        if plan.aggregate is not None:
            spec = plan.aggregate
            lines.append(
                f"aggregate: {', '.join(spec.output)}"
                + (f" GROUP BY {', '.join(spec.group_by)}" if spec.group_by else "")
            )
        for afc in plan.afcs[:5]:
            lines.append(f"  {afc}")
        if len(plan.afcs) > 5:
            lines.append(f"  ... {len(plan.afcs) - 5} more")
        return "\n".join(lines)

    @property
    def total_data_bytes(self) -> int:
        return sum(f.expected_size for f in self.files)


def _merge_env(a: Dict[str, int], b: Dict[str, int]) -> Optional[Dict[str, int]]:
    """Merge binding environments; None when a shared variable differs."""
    for name, value in b.items():
        if name in a and a[name] != value:
            return None
    out = dict(a)
    out.update(b)
    return out


def _merge_geometry(a: Dict, b: Dict) -> Optional[Dict]:
    """Merge loop geometries; None when a shared loop iterates differently."""
    for name, geo in b.items():
        if name in a and a[name] != geo:
            return None
    out = dict(a)
    out.update(b)
    return out


def _env_within_geometry(env: Dict[str, int], geometry: Dict) -> bool:
    """A binding constant shared with a loop must lie on the loop's lattice."""
    for name, value in env.items():
        geo = geometry.get(name)
        if geo is None:
            continue
        start, stop, step = geo
        if not (start <= value <= stop and (value - start) % step == 0):
            return False
    return True
