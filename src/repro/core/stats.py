"""I/O and processing statistics.

Every extraction path — interpreted, generated, hand-written, and the
row-store baseline — counts its work through an :class:`IOStats` object.
The STORM cost model converts these counts into deterministic simulated
time, which is what lets a single-machine reproduction exhibit the paper's
cluster-scale performance shapes (DESIGN.md, substitutions table).

``IOStats`` implements the :class:`repro.obs.metrics.StatsSink` protocol
(``record(name, value)``); the open-ended generalisation — named metrics
created on demand, gauges, histograms — is
:class:`repro.obs.metrics.MetricsRegistry`, which can ingest an
``IOStats`` via ``record_stats`` so flat counters surface in query traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union


@dataclass
class IOStats:
    """Mutable operation counters for one query execution on one node."""

    files_opened: int = 0
    seeks: int = 0
    read_calls: int = 0
    bytes_read: int = 0
    cache_hits: int = 0
    chunks_read: int = 0
    #: Chunk reads satisfied by a wider coalesced read instead of their
    #: own ``read()`` call (I/O coalescing; see docs/architecture.md).
    reads_coalesced: int = 0
    #: Gap bytes read by coalesced reads that belong to no requested
    #: chunk — the price paid for merging nearby reads.  Included in
    #: ``bytes_read`` (they did cross the disk interface).
    readahead_waste_bytes: int = 0
    #: Bytes of chunks that live on a different node than the one
    #: processing them (cross-node groups); the cost model charges these
    #: to the network instead of the local disk.
    remote_bytes_read: int = 0
    afcs_processed: int = 0
    afcs_pruned: int = 0
    rows_extracted: int = 0
    rows_output: int = 0
    #: Base rows folded into partial aggregate state (aggregate pushdown);
    #: the cost model charges these at ``agg_cpu``.  ``rows_output`` still
    #: counts the filtered base rows — that is what a non-pushdown run
    #: would have shipped, which makes the pushdown ablation measurable.
    rows_aggregated: int = 0
    #: State-frame rows this node (or the coordinator merge) emitted —
    #: one per (node, group); the rows that actually cross the wire under
    #: aggregate pushdown.
    groups_emitted: int = 0
    bytes_sent: int = 0
    #: Queries answered verbatim by the result cache (exact key match;
    #: no planning, extraction, or filtering ran at all).
    result_cache_hits: int = 0
    #: Queries answered by re-filtering a cached strictly-broader result
    #: (see docs/architecture.md, "Caching & reuse").
    subsumption_hits: int = 0
    #: Bytes the original cold execution read to produce a result this
    #: query got from the cache instead — the I/O a hit avoided.  NOT
    #: part of ``bytes_read`` (nothing crossed the disk interface).
    cache_saved_bytes: int = 0
    #: Rows of cached superset tables pushed back through the filtering
    #: service to serve subsumption hits; the cost model charges these
    #: at ``filter_cpu`` like any other filtered row.
    rows_refiltered: int = 0
    #: Rows whose residual WHERE ran through a compiled vectorized
    #: kernel (``repro.core.kernels``) instead of the interpreted
    #: per-node AST walk.  A subset of ``rows_extracted`` +
    #: ``rows_refiltered``; the cost model charges these at
    #: ``vector_filter_cpu`` instead of ``filter_cpu``.
    rows_vectorized: int = 0

    def merge(self, other: "IOStats") -> None:
        """Accumulate another stats object into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def record(self, name: str, value: Union[int, float] = 1) -> None:
        """StatsSink protocol: add ``value`` to the named counter.

        Unknown names are ignored — the fixed field set is the point of
        this class; use a ``MetricsRegistry`` for open-ended metrics.
        """
        if name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + value)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return "IOStats(" + ", ".join(parts) + ")"
