"""I/O and processing statistics.

Every extraction path — interpreted, generated, hand-written, and the
row-store baseline — counts its work through an :class:`IOStats` object.
The STORM cost model converts these counts into deterministic simulated
time, which is what lets a single-machine reproduction exhibit the paper's
cluster-scale performance shapes (DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IOStats:
    """Mutable operation counters for one query execution on one node."""

    files_opened: int = 0
    seeks: int = 0
    read_calls: int = 0
    bytes_read: int = 0
    cache_hits: int = 0
    chunks_read: int = 0
    #: Bytes of chunks that live on a different node than the one
    #: processing them (cross-node groups); the cost model charges these
    #: to the network instead of the local disk.
    remote_bytes_read: int = 0
    afcs_processed: int = 0
    afcs_pruned: int = 0
    rows_extracted: int = 0
    rows_output: int = 0
    bytes_sent: int = 0

    def merge(self, other: "IOStats") -> None:
        """Accumulate another stats object into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return "IOStats(" + ", ".join(parts) + ")"
