"""Linearisation of dataspaces into *strips* and physical file enumeration.

A **strip** is an innermost attribute group of a leaf dataspace together
with its concrete, per-file loop geometry: for every enclosing loop, the
value range and the *byte stride* between consecutive iterations.  Strips
are the unit the alignment analysis (:mod:`repro.core.analysis`) reasons
about: record layouts ("tuples") put several attributes in one strip, while
"each variable stored as an array" layouts put several strips in one file.

The byte address of the record at loop ordinals ``(i_1, ..., i_k)``
(outermost first, 0-based) is::

    base_offset + sum(i_j * byte_stride_j)

which the code generator inlines as constant arithmetic.

A **physical file** is one concrete file enumerated from a leaf's DATA
clause: a binding environment, the resolved directory/path, the implicit
attribute values that environment induces, and the strips instantiated
under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MetadataValidationError
from ..metadata.descriptor import Descriptor
from ..metadata.layout import AttrGroup, DatasetNode, LoopNode, SpaceItem
from ..sql.ranges import Interval


@dataclass(frozen=True)
class LoopDim:
    """One concrete loop dimension of a strip (outermost first)."""

    var: str
    start: int
    stop: int  # inclusive
    step: int
    byte_stride: int

    @property
    def count(self) -> int:
        return (self.stop - self.start) // self.step + 1

    def values(self) -> range:
        return range(self.start, self.stop + 1, self.step)

    def ordinal(self, value: int) -> int:
        return (value - self.start) // self.step

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.stop)

    def geometry(self) -> Tuple[str, int, int, int]:
        """Identity for alignment: same var iterated identically."""
        return (self.var, self.start, self.stop, self.step)

    def __str__(self) -> str:
        return f"{self.var}[{self.start}:{self.stop}:{self.step}]@{self.byte_stride}B"


@dataclass(frozen=True)
class Strip:
    """A concrete attribute strip within one physical file."""

    leaf_name: str
    strip_index: int
    attrs: Tuple[str, ...]
    attr_offsets: Tuple[int, ...]
    attr_formats: Tuple[str, ...]  # numpy dtype strings, e.g. '<f4'
    record_size: int
    base_offset: int
    dims: Tuple[LoopDim, ...]

    @property
    def num_records(self) -> int:
        n = 1
        for dim in self.dims:
            n *= dim.count
        return n

    @property
    def total_bytes(self) -> int:
        return self.num_records * self.record_size

    def record_dtype(self, needed: Optional[Sequence[str]] = None) -> np.dtype:
        """Structured dtype decoding one record, optionally projecting.

        The dtype's itemsize always equals ``record_size`` (unselected
        attributes become padding) so a chunk buffer can be viewed
        without copying.
        """
        if needed is None:
            names = list(self.attrs)
        else:
            wanted = set(needed)
            names = [a for a in self.attrs if a in wanted]
        offsets = [self.attr_offsets[self.attrs.index(n)] for n in names]
        formats = [self.attr_formats[self.attrs.index(n)] for n in names]
        return np.dtype(
            {"names": names, "formats": formats, "offsets": offsets,
             "itemsize": self.record_size}
        )

    def dense_suffix_length(self) -> int:
        """Longest suffix of ``dims`` forming one contiguous record run.

        Contiguity requirement (innermost outward): the innermost dim's
        stride equals the record size, and each next dim's stride equals
        the inner dim's stride times its count.
        """
        expected = self.record_size
        length = 0
        for dim in reversed(self.dims):
            if dim.byte_stride != expected:
                break
            length += 1
            expected *= dim.count
        return length

    def offset_of(self, ordinals: Dict[str, int]) -> int:
        """Byte offset of the record at the given per-var ordinals.

        Vars absent from ``ordinals`` are taken at ordinal zero.
        """
        offset = self.base_offset
        for dim in self.dims:
            offset += ordinals.get(dim.var, 0) * dim.byte_stride
        return offset

    def __str__(self) -> str:
        dims = ", ".join(str(d) for d in self.dims)
        return (
            f"Strip({self.leaf_name}#{self.strip_index} {'/'.join(self.attrs)} "
            f"base={self.base_offset} rec={self.record_size}B dims=[{dims}])"
        )


@dataclass
class PhysicalFile:
    """One enumerated data file of a leaf dataset."""

    leaf_name: str
    env: Dict[str, int]
    dir_index: int
    node: str
    relpath: str
    strips: Tuple[Strip, ...] = ()
    expected_size: int = 0
    _geometry: Optional[Dict[str, Tuple[int, int, int]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def implicit_values(self) -> Dict[str, int]:
        """Binding variables: exact per-file constants."""
        return self.env

    def implicit_intervals(self) -> Dict[str, Interval]:
        """All implicit attributes as intervals (constants are points,
        loop variables are their min..max hulls)."""
        out: Dict[str, Interval] = {
            name: Interval(value, value) for name, value in self.env.items()
        }
        for strip in self.strips:
            for dim in strip.dims:
                iv = dim.interval
                if dim.var in out:
                    out[dim.var] = out[dim.var].hull(iv)
                else:
                    out[dim.var] = iv
        return out

    def loop_geometry(self) -> Dict[str, Tuple[int, int, int]]:
        """var -> (start, stop, step); identical across strips by checking.

        Cached after the first call — group construction consults this
        repeatedly during the consistency join.
        """
        if self._geometry is not None:
            return self._geometry
        out: Dict[str, Tuple[int, int, int]] = {}
        for strip in self.strips:
            for dim in strip.dims:
                geo = (dim.start, dim.stop, dim.step)
                if dim.var in out and out[dim.var] != geo:
                    raise MetadataValidationError(
                        f"file {self.relpath!r}: loop {dim.var!r} has two "
                        f"different geometries {out[dim.var]} vs {geo}; "
                        "a variable must iterate identically everywhere "
                        "within one file"
                    )
                out[dim.var] = geo
        self._geometry = out
        return out

    def __str__(self) -> str:
        return f"{self.node}:DIR[{self.dir_index}]/{self.relpath}"


# ---------------------------------------------------------------------------
# Building strips from a dataspace
# ---------------------------------------------------------------------------


def build_strips(
    leaf: DatasetNode,
    schema,
    env: Dict[str, int],
) -> Tuple[Tuple[Strip, ...], int]:
    """Instantiate the strips of ``leaf`` under a binding environment.

    Returns (strips, total file size in bytes).
    """
    attr_size = {a.name: a.size for a in schema}
    attr_format = {a.name: a.dtype.str for a in schema}

    def item_size(item: SpaceItem) -> int:
        if isinstance(item, AttrGroup):
            return sum(attr_size[name] for name in item.names)
        assert isinstance(item, LoopNode)
        body = sum(item_size(child) for child in item.body)
        return body * item.range.count(env)

    strips: List[Strip] = []
    counter = [0]

    def walk(
        items: Sequence[SpaceItem],
        offset: int,
        loops: List[Tuple[str, range, int]],
    ) -> int:
        for item in items:
            if isinstance(item, AttrGroup):
                record_size = sum(attr_size[name] for name in item.names)
                offsets, acc = [], 0
                for name in item.names:
                    offsets.append(acc)
                    acc += attr_size[name]
                dims = tuple(
                    LoopDim(var, rng.start, rng[-1], rng.step, stride)
                    for var, rng, stride in loops
                )
                strips.append(
                    Strip(
                        leaf_name=leaf.name,
                        strip_index=counter[0],
                        attrs=item.names,
                        attr_offsets=tuple(offsets),
                        attr_formats=tuple(attr_format[n] for n in item.names),
                        record_size=record_size,
                        base_offset=offset,
                        dims=dims,
                    )
                )
                counter[0] += 1
                offset += record_size
            else:
                assert isinstance(item, LoopNode)
                values = item.range.evaluate(env)
                body_size = sum(item_size(child) for child in item.body)
                walk(item.body, offset, loops + [(item.var, values, body_size)])
                offset += body_size * len(values)
        return offset

    total = walk(leaf.dataspace, 0, [])
    return tuple(strips), total


def enumerate_files(descriptor: Descriptor) -> List[PhysicalFile]:
    """Enumerate every physical file of the dataset with its strips.

    This is the descriptor-load-time ("compile time") half of the paper's
    two-phase design: all per-file geometry is computed here, once, so that
    query-time planning only evaluates integer comparisons.
    """
    files: List[PhysicalFile] = []
    for leaf in descriptor.leaves():
        for env in leaf.data.binding_env_iter():
            for pattern in leaf.data.patterns:
                dir_index, relpath = pattern.expand(env)
                entry = descriptor.storage.dir(dir_index)
                strips, size = build_strips(leaf, descriptor.schema, env)
                files.append(
                    PhysicalFile(
                        leaf_name=leaf.name,
                        env=dict(env),
                        dir_index=dir_index,
                        node=entry.node,
                        relpath=(
                            f"{entry.path}/{relpath}" if entry.path else relpath
                        ),
                        strips=strips,
                        expected_size=size,
                    )
                )
    return files


def row_variable_order(descriptor: Descriptor) -> List[str]:
    """Canonical global ordering of loop variables across all leaves.

    Used to enumerate chunk (outer) variables deterministically so every
    implementation — interpreted, generated, hand-written — produces rows
    in the same order.
    """
    order: List[str] = []

    def walk(items: Sequence[SpaceItem]) -> None:
        for item in items:
            if isinstance(item, LoopNode):
                if item.var not in order:
                    order.append(item.var)
                walk(item.body)

    for leaf in descriptor.leaves():
        walk(leaf.dataspace)
    return order
