"""The virtual relational table produced by a query.

A :class:`VirtualTable` is a thin, immutable wrapper around a dict of
column-name -> numpy array.  It is the "relational table view" the paper's
data virtualization exposes; all columns have equal length and rows are
materialised lazily only when callers iterate.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError


class VirtualTable:
    """Columnar query result."""

    def __init__(self, columns: Mapping[str, np.ndarray], order: Optional[Sequence[str]] = None):
        names = list(order) if order is not None else list(columns)
        self._columns: Dict[str, np.ndarray] = {}
        length = None
        for name in names:
            col = np.asarray(columns[name])
            if length is None:
                length = len(col)
            elif len(col) != length:
                raise ReproError(
                    f"column {name!r} has {len(col)} values, expected {length}"
                )
            self._columns[name] = col
        self._length = length or 0

    # -- shape -----------------------------------------------------------------

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        """Total payload bytes across columns (the result-cache charge)."""
        return sum(col.nbytes for col in self._columns.values())

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    # -- access ------------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise ReproError(
                f"no column {name!r}; have {list(self._columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def rows(self) -> Iterator[tuple]:
        """Iterate rows as tuples in column order."""
        cols = list(self._columns.values())
        for i in range(self._length):
            yield tuple(col[i] for col in cols)

    def to_structured(self) -> np.ndarray:
        """Convert to a numpy structured array (copies)."""
        dtype = np.dtype(
            [(name, col.dtype) for name, col in self._columns.items()]
        )
        out = np.empty(self._length, dtype=dtype)
        for name, col in self._columns.items():
            out[name] = col
        return out

    def sort_key(self) -> np.ndarray:
        """Row indices of the lexicographic sort over all columns.

        Used by tests to compare results as multisets regardless of the
        producing implementation's row order.
        """
        keys = [self._columns[name] for name in reversed(list(self._columns))]
        return np.lexsort(keys) if keys else np.arange(0)

    def canonical(self) -> "VirtualTable":
        """Rows sorted lexicographically — canonical form for comparisons."""
        idx = self.sort_key()
        return VirtualTable(
            {name: col[idx] for name, col in self._columns.items()},
            order=list(self._columns),
        )

    def head(self, n: int = 10) -> List[tuple]:
        return [row for _, row in zip(range(n), self.rows())]

    # -- export -------------------------------------------------------------------

    def to_csv(self, stream, header: bool = True, limit: Optional[int] = None) -> int:
        """Write rows as CSV to a text stream; returns rows written."""
        if header:
            stream.write(",".join(self._columns) + "\n")
        count = 0
        for row in self.rows():
            if limit is not None and count >= limit:
                break
            stream.write(",".join(_csv_cell(v) for v in row) + "\n")
            count += 1
        return count

    def save_npz(self, path: str) -> None:
        """Persist to a compressed .npz archive (column order preserved)."""
        np.savez_compressed(
            path, __order__=np.array(list(self._columns)), **self._columns
        )

    @classmethod
    def load_npz(cls, path: str) -> "VirtualTable":
        data = np.load(path, allow_pickle=False)
        order = [str(n) for n in data["__order__"]]
        return cls({n: data[n] for n in order}, order=order)

    def __repr__(self) -> str:
        return (
            f"<VirtualTable {self._length} rows x "
            f"{len(self._columns)} cols {list(self._columns)}>"
        )


def _csv_cell(value) -> str:
    if isinstance(value, (bytes, np.bytes_)):
        return value.decode("latin1")
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    return str(value)


def own_column(arr: np.ndarray) -> np.ndarray:
    """A contiguous column that is safe to hand to callers.

    ``np.frombuffer`` decodes over cached chunk payloads are read-only,
    and for single-attribute strips ``np.ascontiguousarray`` passes such
    views through unchanged — emitting them would hand out immutable
    aliases of segment-cache memory.  This copies exactly when that
    happens (the array is still read-only after the contiguity pass) and
    is otherwise as cheap as ``np.ascontiguousarray``.
    """
    out = np.ascontiguousarray(arr)
    if not out.flags.writeable:
        out = out.copy()
    return out


def concat_tables(tables: Sequence[VirtualTable]) -> VirtualTable:
    """Concatenate tables with identical column sets, preserving order."""
    tables = [t for t in tables if t is not None]
    if not tables:
        return VirtualTable({})
    names = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != names:
            raise ReproError(
                f"cannot concatenate tables with columns {t.column_names} "
                f"and {names}"
            )
    return VirtualTable(
        {n: np.concatenate([t.column(n) for t in tables]) for n in names},
        order=list(names),
    )


def empty_table(names: Sequence[str], dtypes: Mapping[str, np.dtype]) -> VirtualTable:
    return VirtualTable(
        {n: np.empty(0, dtype=dtypes[n]) for n in names}, order=list(names)
    )
