"""High-level automatic data virtualization API.

:class:`Virtualizer` is the user-facing entry point of the library: give
it a meta-data descriptor and a mount (where the dataset's nodes live on
disk), and it answers SQL queries with relational tables::

    from repro import Virtualizer, local_mount

    v = Virtualizer(descriptor_text, local_mount("/data/cluster"))
    table = v.query("SELECT X, Y, SOIL FROM IparsData WHERE TIME > 100")

By default the index function is *generated* (compiled Python specialised
to the descriptor, as in the paper); pass ``use_codegen=False`` to run the
interpreted reference planner instead.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Union

from ..metadata.descriptor import Descriptor, parse_descriptor
from ..metadata.schema import Schema
from ..obs.tracer import NULL_TRACER, Tracer
from ..sql.ast import Query
from ..sql.functions import DEFAULT_REGISTRY, FunctionRegistry
from .afc import ExtractionPlan
from .analysis import ChunkSummaries
from .codegen import GeneratedDataset
from .extractor import Extractor, Mount, local_mount
from .options import ExecOptions
from .planner import CompiledDataset
from .stats import IOStats
from .table import VirtualTable


class Virtualizer:
    """SQL over flat-file scientific datasets, from a meta-data descriptor."""

    def __init__(
        self,
        descriptor: Union[Descriptor, str],
        mount: Mount,
        functions: Optional[FunctionRegistry] = None,
        use_codegen: bool = True,
        summaries: Optional[ChunkSummaries] = None,
        codegen_path: Optional[Union[str, "os.PathLike"]] = None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        chunk_row_cap: Optional[int] = None,
    ):
        if isinstance(descriptor, str):
            descriptor = parse_descriptor(descriptor)
        if codegen_path is not None:
            codegen_path = os.fspath(codegen_path)
        if use_codegen:
            self.dataset: CompiledDataset = GeneratedDataset(
                descriptor,
                summaries,
                source_path=codegen_path,
                chunk_row_cap=chunk_row_cap,
            )
        else:
            self.dataset = CompiledDataset(descriptor, summaries, chunk_row_cap)
        self.functions = functions or DEFAULT_REGISTRY
        self.extractor = Extractor(
            mount, self.functions, segment_cache_bytes=segment_cache_bytes
        )
        self.stats = IOStats()

    # -- querying -------------------------------------------------------------

    def plan(
        self, sql: Union[Query, str], options: Optional[ExecOptions] = None
    ) -> ExtractionPlan:
        """Plan a query without executing it."""
        tracer = options.tracer() if options is not None else NULL_TRACER
        self._run_diagnostics(sql, options, tracer)
        return self.dataset.plan(sql, tracer=tracer)

    def _run_diagnostics(
        self,
        sql: Union[Query, str],
        options: Optional[ExecOptions],
        tracer: "Tracer",
    ) -> None:
        """Same strict/observability contract as ``QueryService.submit``:
        findings flow to the tracer (``diag`` events, ``diag.warnings``
        counter); strict mode refuses queries with errors or warnings."""
        strict = options is not None and options.strict
        if not (strict or tracer.enabled):
            return
        from ..diag.query import analyze_query
        from ..errors import QueryValidationError

        findings = list(self.dataset.diagnostics)
        findings.extend(
            analyze_query(self.dataset.descriptor, sql, self.functions)
        )
        if tracer.enabled:
            for diag in findings:
                tracer.event(
                    "diag",
                    code=diag.code,
                    severity=str(diag.severity),
                    message=diag.message,
                )
                if str(diag.severity) == "warning":
                    tracer.metrics.record("diag.warnings")
        if strict:
            blocking = [
                d for d in findings if str(d.severity) in ("error", "warning")
            ]
            if blocking:
                details = "; ".join(d.format(show_source=False) for d in blocking)
                raise QueryValidationError(
                    f"strict mode: {len(blocking)} static-analysis finding(s) "
                    f"block execution: {details}"
                )

    def query(
        self,
        sql: Union[Query, str],
        stats: Optional[IOStats] = None,
        options: Optional[ExecOptions] = None,
    ) -> VirtualTable:
        """Execute a query and return the virtual table.

        ``options`` carries the unified execution knobs (only
        ``batch_rows`` and ``trace`` apply to this local path; transport
        options belong to ``QueryService.submit``).
        """
        tracer = options.tracer() if options is not None else NULL_TRACER
        self._run_diagnostics(sql, options, tracer)
        with tracer.span("query", sql=_sql_tag(sql)):
            plan = self.dataset.plan(sql, tracer=tracer)
            return self.extractor.execute(
                plan, stats if stats is not None else self.stats, tracer
            )

    def query_iter(
        self,
        sql: Union[Query, str],
        batch_rows: Optional[int] = None,
        stats: Optional[IOStats] = None,
        options: Optional[ExecOptions] = None,
    ):
        """Stream query results as VirtualTable batches (bounded memory).

        The batch size comes from ``options.batch_rows``; the positional
        ``batch_rows`` argument is deprecated.
        """
        if batch_rows is not None:
            warnings.warn(
                "Virtualizer.query_iter(batch_rows=...) is deprecated; "
                "pass options=ExecOptions(batch_rows=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            options = (options or ExecOptions()).replace(batch_rows=batch_rows)
        opts = options or ExecOptions()
        tracer = opts.tracer()
        self._run_diagnostics(sql, opts, tracer)
        plan = self.dataset.plan(sql, tracer=tracer)
        return self.extractor.execute_iter(
            plan,
            opts.batch_rows,
            stats if stats is not None else self.stats,
            tracer,
        )

    def explain(self, sql: Union[Query, str]) -> str:
        return self.dataset.explain(sql)

    # -- introspection -----------------------------------------------------------

    @property
    def schema(self) -> "Schema":
        return self.dataset.schema

    @property
    def generated_source(self) -> Optional[str]:
        """Source of the generated index module (None when interpreted)."""
        return getattr(self.dataset, "source", None)

    def close(self) -> None:
        self.extractor.close()

    def __enter__(self) -> "Virtualizer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _sql_tag(sql: Union[Query, str]) -> str:
    """A bounded string form of the query for span tags."""
    return str(sql)[:200]


def open_dataset(
    descriptor: Union[Descriptor, str],
    root: Union[str, "os.PathLike"],
    **kwargs,
) -> Virtualizer:
    """Convenience constructor: mount a virtual cluster rooted at ``root``.

    Node ``osu0``'s directories are expected under ``root/osu0/...``;
    ``root`` may be a ``str`` or a ``pathlib.Path``.
    """
    return Virtualizer(descriptor, local_mount(root), **kwargs)
