"""High-level automatic data virtualization API.

:class:`Virtualizer` is the user-facing entry point of the library: give
it a meta-data descriptor and a mount (where the dataset's nodes live on
disk), and it answers SQL queries with relational tables::

    from repro import Virtualizer, local_mount

    v = Virtualizer(descriptor_text, local_mount("/data/cluster"))
    table = v.query("SELECT X, Y, SOIL FROM IparsData WHERE TIME > 100")

By default the index function is *generated* (compiled Python specialised
to the descriptor, as in the paper); pass ``use_codegen=False`` to run the
interpreted reference planner instead.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Dict, Optional, Union

from ..errors import ExtractionError
from ..metadata.descriptor import Descriptor, parse_descriptor
from ..metadata.schema import Schema
from ..obs.tracer import NULL_TRACER, Tracer
from ..sql.ast import Query
from ..sql.functions import DEFAULT_REGISTRY, FunctionRegistry
from .afc import ExtractionPlan
from .analysis import ChunkSummaries
from .codegen import GeneratedDataset
from .extractor import Extractor, Mount, local_mount
from .options import DEFAULT_OPTIONS, ExecOptions
from .planner import CompiledDataset
from .stats import IOStats
from .table import VirtualTable


class Virtualizer:
    """SQL over flat-file scientific datasets, from a meta-data descriptor."""

    def __init__(
        self,
        descriptor: Union[Descriptor, str],
        mount: Mount,
        functions: Optional[FunctionRegistry] = None,
        use_codegen: bool = True,
        summaries: Optional[ChunkSummaries] = None,
        codegen_path: Optional[Union[str, "os.PathLike"]] = None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        chunk_row_cap: Optional[int] = None,
    ):
        if isinstance(descriptor, str):
            descriptor = parse_descriptor(descriptor)
        if codegen_path is not None:
            codegen_path = os.fspath(codegen_path)
        if use_codegen:
            self.dataset: CompiledDataset = GeneratedDataset(
                descriptor,
                summaries,
                source_path=codegen_path,
                chunk_row_cap=chunk_row_cap,
            )
        else:
            self.dataset = CompiledDataset(descriptor, summaries, chunk_row_cap)
        self.functions = functions or DEFAULT_REGISTRY
        self.extractor = Extractor(
            mount, self.functions, segment_cache_bytes=segment_cache_bytes
        )
        self.stats = IOStats()
        #: Result/plan caches, created lazily by the first query whose
        #: options enable caching and shared by every later query.
        self._query_cache = None
        self._cache_lock = threading.Lock()
        self._filtering = None

    # -- caching --------------------------------------------------------------

    def _cache_for(self, options: Optional[ExecOptions]):
        """The shared QueryCache, or None when this query runs uncached."""
        if options is None or options.cache_mode == "off":
            return None
        with self._cache_lock:
            if self._query_cache is None:
                from ..cache import QueryCache

                self._query_cache = QueryCache.for_dataset(
                    self.dataset,
                    options.result_cache_bytes,
                    options.plan_cache_entries,
                )
            elif self._query_cache is not None:
                self._query_cache.configure(
                    options.result_cache_bytes, options.plan_cache_entries
                )
            return self._query_cache

    def _filtering_service(self):
        """Lazy FilteringService for serving subsumption hits (the storm
        import stays out of core's module graph; see docs layering)."""
        if self._filtering is None:
            from ..storm.filtering import FilteringService

            self._filtering = FilteringService(self.functions)
        return self._filtering

    def drop_caches(self) -> None:
        """Cold-run mode: forget cached results, plans, and segments."""
        with self._cache_lock:
            cache = self._query_cache
        if cache is not None:
            cache.drop()
        self.extractor.drop_caches()

    def cache_stats(self) -> Optional[Dict[str, Dict[str, int]]]:
        """Result/plan cache counters, or None before any cached query."""
        with self._cache_lock:
            cache = self._query_cache
        return cache.stats() if cache is not None else None

    # -- querying -------------------------------------------------------------

    def plan(
        self, sql: Union[Query, str], options: Optional[ExecOptions] = None
    ) -> ExtractionPlan:
        """Plan a query without executing it."""
        tracer = options.tracer() if options is not None else NULL_TRACER
        query = self.dataset.resolve_query(sql)
        self._run_diagnostics(query, options, tracer)
        cache = self._cache_for(options)
        if cache is not None:
            key, _ = cache.key_and_needed(query)
            return cache.plan_for(query, key, tracer)
        return self.dataset.plan(query, tracer=tracer)

    def _run_diagnostics(
        self,
        sql: Union[Query, str],
        options: Optional[ExecOptions],
        tracer: "Tracer",
    ) -> None:
        """Same strict/observability contract as ``QueryService.submit``:
        findings flow to the tracer (``diag`` events, ``diag.warnings``
        counter); strict mode refuses queries with errors or warnings."""
        strict = options is not None and options.strict
        if not (strict or tracer.enabled):
            return
        from ..diag.options import analyze_options
        from ..diag.query import analyze_query
        from ..errors import QueryValidationError

        findings = list(self.dataset.diagnostics)
        findings.extend(
            analyze_query(self.dataset.descriptor, sql, self.functions)
        )
        if options is not None:
            findings.extend(analyze_options(options))
        if tracer.enabled:
            for diag in findings:
                tracer.event(
                    "diag",
                    code=diag.code,
                    severity=str(diag.severity),
                    message=diag.message,
                )
                if str(diag.severity) == "warning":
                    tracer.metrics.record("diag.warnings")
        if strict:
            blocking = [
                d for d in findings if str(d.severity) in ("error", "warning")
            ]
            if blocking:
                details = "; ".join(d.format(show_source=False) for d in blocking)
                raise QueryValidationError(
                    f"strict mode: {len(blocking)} static-analysis finding(s) "
                    f"block execution: {details}"
                )

    def query(
        self,
        sql: Union[Query, str],
        stats: Optional[IOStats] = None,
        options: Optional[ExecOptions] = None,
    ) -> VirtualTable:
        """Execute a query and return the virtual table.

        ``options`` carries the unified execution knobs (only
        ``batch_rows``, ``trace``, and the ``cache_*`` fields apply to
        this local path; transport options belong to
        ``QueryService.submit``).
        """
        tracer = options.tracer() if options is not None else NULL_TRACER
        query = self.dataset.resolve_query(sql)
        self._run_diagnostics(query, options, tracer)
        target = stats if stats is not None else self.stats
        cache = self._cache_for(options)
        vectorize = _vectorize_on(options)
        with tracer.span("query", sql=_sql_tag(query)):
            if cache is None:
                plan = self.dataset.plan(query, tracer=tracer)
                if plan.aggregate is not None:
                    return self._execute_aggregate(
                        plan, target, tracer, vectorize
                    )
                return self.extractor.execute(
                    plan, target, tracer, vectorize=vectorize
                )
            key, needed = cache.key_and_needed(query)
            run = IOStats()
            served = cache.serve(
                key, query, needed, self._filtering_service(), run,
                tracer, options.cache_mode, vectorize=vectorize,
            )
            if served is not None:
                target.merge(run)
                return served.table
            from ..cache import project, widen_plan

            plan = cache.plan_for(query, key, tracer)
            if plan.aggregate is not None:
                # Aggregates cache the final labelled table verbatim
                # (exact hits only; no widening, nothing to project).
                table = self._execute_aggregate(plan, run, tracer, vectorize)
                target.merge(run)
                cache.store(key, table, run.bytes_read, len(plan.afcs), tracer)
                return table
            # Execute with every needed column emitted (same reads, same
            # filtering) so the cached table can answer later narrower
            # queries filtering on WHERE-only attributes.
            full = self.extractor.execute(
                widen_plan(plan), run, tracer, vectorize=vectorize
            )
            target.merge(run)
            cache.store(key, full, run.bytes_read, len(plan.afcs), tracer)
            return project(full, plan.output)

    def _execute_aggregate(
        self,
        plan: ExtractionPlan,
        stats: IOStats,
        tracer: "Tracer",
        vectorize: bool = True,
    ) -> VirtualTable:
        """Run an aggregate plan on the local (single-process) path.

        Tries the summary fast path first — a predicate-free ungrouped
        COUNT/MIN/MAX fully covered by plan metadata and chunk summaries
        is answered with zero data-chunk reads; otherwise extracts the
        base rows and folds them through the aggregation kernel.
        """
        from . import aggregate as agg

        spec = plan.aggregate
        answer = agg.summary_answer(
            plan, getattr(self.dataset, "summaries", None)
        )
        if answer is not None:
            stats.afcs_pruned += len(plan.afcs)
            stats.groups_emitted += answer.num_rows
            if tracer.enabled:
                tracer.metrics.record("agg.summary_answers")
                tracer.event("summary_answer", afcs=len(plan.afcs))
            return answer
        # A pure COUNT(*) plan materialises no columns, so the row count
        # comes from the filter's rows_output (exact on this single-pass
        # local path), counted in an isolated stats object.
        local = IOStats()
        rows = self.extractor.execute(plan, local, tracer, vectorize=vectorize)
        num_rows = local.rows_output
        local.rows_aggregated += num_rows
        table = agg.aggregate_rows(spec, rows, plan.dtypes, num_rows=num_rows)
        local.groups_emitted += table.num_rows
        stats.merge(local)
        return table

    def query_iter(
        self,
        sql: Union[Query, str],
        batch_rows: Optional[int] = None,
        stats: Optional[IOStats] = None,
        options: Optional[ExecOptions] = None,
    ):
        """Stream query results as VirtualTable batches (bounded memory).

        The batch size comes from ``options.batch_rows``; the positional
        ``batch_rows`` argument is deprecated.  Cache hits (when the
        options enable caching) are served as batch-sized slices of the
        cached table; streaming executions never *populate* the result
        cache — that would require buffering the whole result, defeating
        the bounded-memory contract.
        """
        if batch_rows is not None:
            warnings.warn(
                "Virtualizer.query_iter(batch_rows=...) is deprecated; "
                "pass options=ExecOptions(batch_rows=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            options = (options or ExecOptions()).replace(batch_rows=batch_rows)
        opts = options or ExecOptions()
        tracer = opts.tracer()
        query = self.dataset.resolve_query(sql)
        self._run_diagnostics(query, opts, tracer)
        target = stats if stats is not None else self.stats
        cache = self._cache_for(opts)

        vectorize = _vectorize_on(opts)

        def iterate():
            # The span wraps planning AND iteration: an iterator query's
            # trace was previously invisible (query() got a span, this
            # path none), and spanning only the eager prefix would stop
            # the clock before any extraction happened.
            with tracer.span("query", sql=_sql_tag(query), streaming=True):
                if cache is not None:
                    key, needed = cache.key_and_needed(query)
                    run = IOStats()
                    served = cache.serve(
                        key, query, needed, self._filtering_service(), run,
                        tracer, opts.cache_mode, vectorize=vectorize,
                    )
                    if served is not None:
                        target.merge(run)
                        yield from _batched(served.table, opts.batch_rows)
                        return
                    plan = cache.plan_for(query, key, tracer)
                else:
                    plan = self.dataset.plan(query, tracer=tracer)
                if plan.aggregate is not None:
                    # Aggregate results are group-count sized, so the
                    # bounded-memory concern streaming exists for does
                    # not apply: materialise, then slice into batches.
                    table = self._execute_aggregate(
                        plan, target, tracer, vectorize
                    )
                    yield from _batched(table, opts.batch_rows)
                    return
                yield from self.extractor.execute_iter(
                    plan, opts.batch_rows, target, tracer,
                    vectorize=vectorize,
                )

        return iterate()

    def explain(self, sql: Union[Query, str]) -> str:
        return self.dataset.explain(sql)

    # -- introspection -----------------------------------------------------------

    @property
    def schema(self) -> "Schema":
        return self.dataset.schema

    @property
    def generated_source(self) -> Optional[str]:
        """Source of the generated index module (None when interpreted)."""
        return getattr(self.dataset, "source", None)

    def close(self) -> None:
        self.extractor.close()

    def __enter__(self) -> "Virtualizer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _sql_tag(sql: Union[Query, str]) -> str:
    """A bounded string form of the query for span tags."""
    return str(sql)[:200]


def _vectorize_on(options: Optional[ExecOptions]) -> bool:
    """Resolve the ``vectorize`` knob; kernels are the default path."""
    opts = options if options is not None else DEFAULT_OPTIONS
    return opts.vectorize == "on"


def _batched(table: VirtualTable, batch_rows: int):
    """Slice a materialised table into batch_rows-sized views.

    Matches ``Extractor.execute_iter``'s contract on the cache-hit path
    (same validation error, nothing yielded for empty results).  The
    slices are zero-copy views of the cached frozen arrays, hence
    read-only like an exact full-table hit.
    """
    if batch_rows < 1:
        raise ExtractionError("batch_rows must be positive")
    names = list(table.column_names)
    for start in range(0, table.num_rows, batch_rows):
        yield VirtualTable(
            {n: table.column(n)[start:start + batch_rows] for n in names},
            order=names,
        )


def open_dataset(
    descriptor: Union[Descriptor, str],
    root: Union[str, "os.PathLike"],
    **kwargs,
) -> Virtualizer:
    """Convenience constructor: mount a virtual cluster rooted at ``root``.

    Node ``osu0``'s directories are expected under ``root/osu0/...``;
    ``root`` may be a ``str`` or a ``pathlib.Path``.
    """
    return Virtualizer(descriptor, local_mount(root), **kwargs)
