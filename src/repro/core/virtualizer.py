"""High-level automatic data virtualization API.

:class:`Virtualizer` is the user-facing entry point of the library: give
it a meta-data descriptor and a mount (where the dataset's nodes live on
disk), and it answers SQL queries with relational tables::

    from repro import Virtualizer, local_mount

    v = Virtualizer(descriptor_text, local_mount("/data/cluster"))
    table = v.query("SELECT X, Y, SOIL FROM IparsData WHERE TIME > 100")

By default the index function is *generated* (compiled Python specialised
to the descriptor, as in the paper); pass ``use_codegen=False`` to run the
interpreted reference planner instead.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from ..metadata.descriptor import Descriptor, parse_descriptor
from ..sql.ast import Query
from ..sql.functions import DEFAULT_REGISTRY, FunctionRegistry
from .afc import ExtractionPlan
from .analysis import ChunkSummaries
from .codegen import GeneratedDataset
from .extractor import Extractor, Mount, local_mount
from .planner import CompiledDataset
from .stats import IOStats
from .table import VirtualTable


class Virtualizer:
    """SQL over flat-file scientific datasets, from a meta-data descriptor."""

    def __init__(
        self,
        descriptor: Union[Descriptor, str],
        mount: Mount,
        functions: Optional[FunctionRegistry] = None,
        use_codegen: bool = True,
        summaries: Optional[ChunkSummaries] = None,
        codegen_path: Optional[str] = None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        chunk_row_cap: Optional[int] = None,
    ):
        if isinstance(descriptor, str):
            descriptor = parse_descriptor(descriptor)
        if use_codegen:
            self.dataset: CompiledDataset = GeneratedDataset(
                descriptor,
                summaries,
                source_path=codegen_path,
                chunk_row_cap=chunk_row_cap,
            )
        else:
            self.dataset = CompiledDataset(descriptor, summaries, chunk_row_cap)
        self.functions = functions or DEFAULT_REGISTRY
        self.extractor = Extractor(
            mount, self.functions, segment_cache_bytes=segment_cache_bytes
        )
        self.stats = IOStats()

    # -- querying -------------------------------------------------------------

    def plan(self, sql: Union[Query, str]) -> ExtractionPlan:
        """Plan a query without executing it."""
        return self.dataset.plan(sql)

    def query(
        self, sql: Union[Query, str], stats: Optional[IOStats] = None
    ) -> VirtualTable:
        """Execute a query and return the virtual table."""
        plan = self.dataset.plan(sql)
        return self.extractor.execute(plan, stats if stats is not None else self.stats)

    def query_iter(
        self,
        sql: Union[Query, str],
        batch_rows: int = 65536,
        stats: Optional[IOStats] = None,
    ):
        """Stream query results as VirtualTable batches (bounded memory)."""
        plan = self.dataset.plan(sql)
        return self.extractor.execute_iter(
            plan, batch_rows, stats if stats is not None else self.stats
        )

    def explain(self, sql: Union[Query, str]) -> str:
        return self.dataset.explain(sql)

    # -- introspection -----------------------------------------------------------

    @property
    def schema(self):
        return self.dataset.schema

    @property
    def generated_source(self) -> Optional[str]:
        """Source of the generated index module (None when interpreted)."""
        return getattr(self.dataset, "source", None)

    def close(self) -> None:
        self.extractor.close()

    def __enter__(self) -> "Virtualizer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_dataset(
    descriptor: Union[Descriptor, str],
    root: str,
    **kwargs,
) -> Virtualizer:
    """Convenience constructor: mount a virtual cluster rooted at ``root``.

    Node ``osu0``'s directories are expected under ``root/osu0/...``.
    """
    return Virtualizer(descriptor, local_mount(root), **kwargs)
