"""Synthetic workload generators for the paper's motivating applications:
IPARS (oil reservoir), Titan (satellite), and MRI (cancer studies)."""

from . import ipars, mri, titan
from .ipars import ALL_LAYOUTS, IparsConfig, STATE_VARS, figure8_queries
from .mri import MODALITIES, MriConfig
from .titan import SENSORS, TitanConfig, figure7_queries
from .writers import ValueFn, hash01, render_file, write_dataset

__all__ = [
    "ALL_LAYOUTS",
    "IparsConfig",
    "MODALITIES",
    "MriConfig",
    "SENSORS",
    "STATE_VARS",
    "TitanConfig",
    "ValueFn",
    "figure7_queries",
    "figure8_queries",
    "hash01",
    "ipars",
    "mri",
    "render_file",
    "titan",
    "write_dataset",
]
