"""Synthetic IPARS oil-reservoir simulation dataset (paper Section 2.2).

IPARS output is a collection of *realizations* (REL), each a time series
over a 3-D grid partitioned across cluster nodes.  Every (REL, TIME, cell)
carries 17 state variables; the grid's X/Y/Z coordinates are constant over
time and realizations.  The generator is deterministic: each value is a
pure function of (attribute, REL, TIME, GRID), so every layout of the
Figure 9 experiment materialises the *same* virtual table.

The module provides descriptor builders for the paper's seven layouts:

* ``L0`` — the application's original layout: coordinates in one file,
  every state variable in its own file per realization (18 files per
  aligned chunk set);
* ``I``  — one file per node, full tuples sorted by time;
* ``II`` — one file per node, time-step chunks, variable-as-array inside;
* ``III``— one file per time step, tuples;
* ``IV`` — one file per time step, variable-as-array;
* ``V``  — 7 files: coordinates + state variables split 3/3/3/3/3/2, tuples;
* ``VI`` — the 7-file split with variable-as-array inside.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.extractor import Mount
from ..core.planner import CompiledDataset
from ..errors import ReproError
from .writers import ValueFn, hash01, write_dataset

#: The 17 per-cell state variables (paper: "the value of seventeen separate
#: variables ... for each cell in the grid").
STATE_VARS: Tuple[str, ...] = (
    "SOIL", "SGAS", "SWAT",
    "POIL", "PGAS", "PWAT",
    "OILVX", "OILVY", "OILVZ",
    "GASVX", "GASVY", "GASVZ",
    "WATVX", "WATVY", "WATVZ",
    "COIL", "CGAS",
)

#: Value scaling per variable family: (offset, span).
_SCALES: Dict[str, Tuple[float, float]] = {}
for _name in ("SOIL", "SGAS", "SWAT", "COIL", "CGAS"):
    _SCALES[_name] = (0.0, 1.0)  # saturations / concentrations in [0, 1)
for _name in ("POIL", "PGAS", "PWAT"):
    _SCALES[_name] = (500.0, 4500.0)  # pressures in [500, 5000)
for _name in STATE_VARS:
    if _name.endswith(("VX", "VY", "VZ")):
        _SCALES[_name] = (-20.0, 40.0)  # velocities in [-20, 20)

ALL_LAYOUTS: Tuple[str, ...] = ("L0", "I", "II", "III", "IV", "V", "VI")

#: Layout V/VI grouping of the 17 state variables into 6 files.
V_GROUPS: Tuple[Tuple[str, ...], ...] = (
    STATE_VARS[0:3],
    STATE_VARS[3:6],
    STATE_VARS[6:9],
    STATE_VARS[9:12],
    STATE_VARS[12:15],
    STATE_VARS[15:17],
)


@dataclass(frozen=True)
class IparsConfig:
    """Shape of a synthetic IPARS study."""

    num_rels: int = 4
    num_times: int = 100
    cells_per_node: int = 1000
    num_nodes: int = 4
    seed: int = 7
    dirname: str = "ipars"

    @property
    def total_cells(self) -> int:
        return self.cells_per_node * self.num_nodes

    @property
    def total_rows(self) -> int:
        return self.num_rels * self.num_times * self.total_cells

    @property
    def row_bytes(self) -> int:
        # REL(2) + TIME(4) + 20 floats
        return 2 + 4 + 4 * (3 + len(STATE_VARS))

    @property
    def grid_side(self) -> int:
        """Cells sit on a cubic lattice of this side length."""
        return max(1, math.ceil(self.total_cells ** (1.0 / 3.0)))


# ---------------------------------------------------------------------------
# Descriptor builders
# ---------------------------------------------------------------------------


def schema_text() -> str:
    lines = ["[IPARS]", "REL = short int", "TIME = int",
             "X = float", "Y = float", "Z = float"]
    lines.extend(f"{name} = float" for name in STATE_VARS)
    return "\n".join(lines) + "\n"


def storage_text(config: IparsConfig) -> str:
    lines = ["[IparsData]", "DatasetDescription = IPARS"]
    for i in range(config.num_nodes):
        lines.append(f"DIR[{i}] = osu{i}/{config.dirname}")
    return "\n".join(lines) + "\n"


def _grid_bounds(config: IparsConfig) -> str:
    g = config.cells_per_node
    return f"($DIRID*{g}+1):(($DIRID+1)*{g}):1"


def _dir_binding(config: IparsConfig) -> str:
    return f"DIRID = 0:{config.num_nodes - 1}:1"


def _rel_binding(config: IparsConfig) -> str:
    return f"REL = 0:{config.num_rels - 1}:1"


def layout_text(config: IparsConfig, layout: str) -> str:
    """The DATASET blocks for one of the seven layouts."""
    builder = _LAYOUT_BUILDERS.get(layout)
    if builder is None:
        raise ReproError(
            f"unknown IPARS layout {layout!r}; have {ALL_LAYOUTS}"
        )
    return builder(config)


def descriptor_text(config: IparsConfig, layout: str = "L0") -> str:
    """Full three-component descriptor for the chosen layout."""
    return "\n".join(
        [schema_text(), storage_text(config), layout_text(config, layout)]
    )


def _layout_l0(config: IparsConfig) -> str:
    grid = _grid_bounds(config)
    parts = [
        'DATASET "IparsData" {',
        "  DATATYPE { IPARS }",
        "  DATAINDEX { REL TIME }",
        "  DATA { DATASET coords "
        + " ".join(f"DATASET var_{name}" for name in STATE_VARS)
        + " }",
        '  DATASET "coords" {',
        f"    DATASPACE {{ LOOP GRID {grid} {{ X Y Z }} }}",
        f"    DATA {{ DIR[$DIRID]/COORDS {_dir_binding(config)} }}",
        "  }",
    ]
    for name in STATE_VARS:
        parts.extend([
            f'  DATASET "var_{name}" {{',
            "    DATASPACE {",
            f"      LOOP TIME 1:{config.num_times}:1 {{",
            f"        LOOP GRID {grid} {{ {name} }}",
            "      }",
            "    }",
            f"    DATA {{ DIR[$DIRID]/{name}$REL {_rel_binding(config)} "
            f"{_dir_binding(config)} }}",
            "  }",
        ])
    parts.append("}")
    return "\n".join(parts) + "\n"


def _tuple_body(attrs) -> str:
    return " ".join(attrs)


def _layout_i(config: IparsConfig) -> str:
    grid = _grid_bounds(config)
    attrs = _tuple_body(("X", "Y", "Z") + STATE_VARS)
    return f"""
DATASET "IparsData" {{
  DATATYPE {{ IPARS }}
  DATAINDEX {{ REL TIME }}
  DATASPACE {{
    LOOP REL 0:{config.num_rels - 1}:1 {{
      LOOP TIME 1:{config.num_times}:1 {{
        LOOP GRID {grid} {{ {attrs} }}
      }}
    }}
  }}
  DATA {{ DIR[$DIRID]/all.bin {_dir_binding(config)} }}
}}
"""


def _layout_ii(config: IparsConfig) -> str:
    grid = _grid_bounds(config)
    arrays = "\n        ".join(
        f"LOOP GRID {grid} {{ {name} }}"
        for name in ("X", "Y", "Z") + STATE_VARS
    )
    return f"""
DATASET "IparsData" {{
  DATATYPE {{ IPARS }}
  DATAINDEX {{ REL TIME }}
  DATASPACE {{
    LOOP REL 0:{config.num_rels - 1}:1 {{
      LOOP TIME 1:{config.num_times}:1 {{
        {arrays}
      }}
    }}
  }}
  DATA {{ DIR[$DIRID]/all.bin {_dir_binding(config)} }}
}}
"""


def _layout_iii(config: IparsConfig) -> str:
    grid = _grid_bounds(config)
    attrs = _tuple_body(("X", "Y", "Z") + STATE_VARS)
    return f"""
DATASET "IparsData" {{
  DATATYPE {{ IPARS }}
  DATAINDEX {{ REL TIME }}
  DATASPACE {{
    LOOP GRID {grid} {{ {attrs} }}
  }}
  DATA {{ DIR[$DIRID]/rel$REL-time$TIME.bin TIME = 1:{config.num_times}:1
         {_rel_binding(config)} {_dir_binding(config)} }}
}}
"""


def _layout_iv(config: IparsConfig) -> str:
    grid = _grid_bounds(config)
    arrays = "\n    ".join(
        f"LOOP GRID {grid} {{ {name} }}"
        for name in ("X", "Y", "Z") + STATE_VARS
    )
    return f"""
DATASET "IparsData" {{
  DATATYPE {{ IPARS }}
  DATAINDEX {{ REL TIME }}
  DATASPACE {{
    {arrays}
  }}
  DATA {{ DIR[$DIRID]/rel$REL-time$TIME.bin TIME = 1:{config.num_times}:1
         {_rel_binding(config)} {_dir_binding(config)} }}
}}
"""


def _layout_v(config: IparsConfig) -> str:
    grid = _grid_bounds(config)
    parts = [
        'DATASET "IparsData" {',
        "  DATATYPE { IPARS }",
        "  DATAINDEX { REL TIME }",
        "  DATA { DATASET coords "
        + " ".join(f"DATASET grp{i}" for i in range(len(V_GROUPS)))
        + " }",
        '  DATASET "coords" {',
        f"    DATASPACE {{ LOOP GRID {grid} {{ X Y Z }} }}",
        f"    DATA {{ DIR[$DIRID]/COORDS {_dir_binding(config)} }}",
        "  }",
    ]
    for i, group in enumerate(V_GROUPS):
        parts.extend([
            f'  DATASET "grp{i}" {{',
            "    DATASPACE {",
            f"      LOOP REL 0:{config.num_rels - 1}:1 {{",
            f"        LOOP TIME 1:{config.num_times}:1 {{",
            f"          LOOP GRID {grid} {{ {_tuple_body(group)} }}",
            "        }",
            "      }",
            "    }",
            f"    DATA {{ DIR[$DIRID]/group{i}.bin {_dir_binding(config)} }}",
            "  }",
        ])
    parts.append("}")
    return "\n".join(parts) + "\n"


def _layout_vi(config: IparsConfig) -> str:
    grid = _grid_bounds(config)
    parts = [
        'DATASET "IparsData" {',
        "  DATATYPE { IPARS }",
        "  DATAINDEX { REL TIME }",
        "  DATA { DATASET coords "
        + " ".join(f"DATASET grp{i}" for i in range(len(V_GROUPS)))
        + " }",
        '  DATASET "coords" {',
        f"    DATASPACE {{ LOOP GRID {grid} {{ X Y Z }} }}",
        f"    DATA {{ DIR[$DIRID]/COORDS {_dir_binding(config)} }}",
        "  }",
    ]
    for i, group in enumerate(V_GROUPS):
        arrays = "\n          ".join(
            f"LOOP GRID {grid} {{ {name} }}" for name in group
        )
        parts.extend([
            f'  DATASET "grp{i}" {{',
            "    DATASPACE {",
            f"      LOOP REL 0:{config.num_rels - 1}:1 {{",
            f"        LOOP TIME 1:{config.num_times}:1 {{",
            f"          {arrays}",
            "        }",
            "      }",
            "    }",
            f"    DATA {{ DIR[$DIRID]/group{i}.bin {_dir_binding(config)} }}",
            "  }",
        ])
    parts.append("}")
    return "\n".join(parts) + "\n"


_LAYOUT_BUILDERS = {
    "L0": _layout_l0,
    "I": _layout_i,
    "II": _layout_ii,
    "III": _layout_iii,
    "IV": _layout_iv,
    "V": _layout_v,
    "VI": _layout_vi,
}


# ---------------------------------------------------------------------------
# Value function
# ---------------------------------------------------------------------------


def _var(name: str, env: Dict[str, int], coords: Dict[str, np.ndarray]):
    """A variable's value(s): loop meshgrid array or binding constant."""
    if name in coords:
        return coords[name]
    if name in env:
        return np.int64(env[name])
    raise ReproError(
        f"value function needs variable {name!r}, but the layout supplies "
        f"only {sorted(coords)} (loops) and {sorted(env)} (bindings)"
    )


def make_value_fn(config: IparsConfig) -> ValueFn:
    """The deterministic IPARS field generator.

    Coordinates depend only on GRID (a cubic lattice with 10.0 spacing);
    state variables mix (REL, TIME, GRID) through :func:`hash01` with a
    per-attribute salt, scaled to the variable family's physical range.
    """
    side = config.grid_side
    salts = {name: config.seed * 1000 + i for i, name in enumerate(STATE_VARS)}

    def value_fn(attr: str, env: Dict[str, int], coords: Dict[str, np.ndarray]):
        grid = _var("GRID", env, coords)
        cell = np.asarray(grid, dtype=np.int64) - 1
        if attr == "X":
            return (cell % side) * 10.0
        if attr == "Y":
            return ((cell // side) % side) * 10.0
        if attr == "Z":
            return (cell // (side * side)) * 10.0
        if attr in salts:
            rel = _var("REL", env, coords)
            time = _var("TIME", env, coords)
            key = (
                (np.asarray(rel, dtype=np.int64) * (config.num_times + 1) + time)
                * (config.total_cells + 1)
                + grid
            )
            lo, span = _SCALES[attr]
            return lo + span * hash01(key, salts[attr])
        raise ReproError(f"unknown IPARS attribute {attr!r}")

    return value_fn


def generate(
    config: IparsConfig, layout: str, mount: Mount, only_missing: bool = False
) -> Tuple[str, int]:
    """Write the dataset for a layout; returns (descriptor text, bytes)."""
    text = descriptor_text(config, layout)
    dataset = CompiledDataset(text)
    written = write_dataset(dataset, mount, make_value_fn(config), only_missing)
    return text, written


# ---------------------------------------------------------------------------
# The paper's evaluation queries (Figure 8)
# ---------------------------------------------------------------------------


def figure8_queries(config: IparsConfig, lo_frac: float = 0.5, width_frac: float = 0.1) -> List[str]:
    """The five IPARS queries, scaled to a config's TIME extent.

    The paper uses TIME in (1000, 1100) of a long run; we place a window
    of ``width_frac`` of the run starting at ``lo_frac``.
    """
    t_lo = max(1, int(config.num_times * lo_frac))
    t_hi = min(config.num_times, t_lo + max(2, int(config.num_times * width_frac)))
    t_lo = min(t_lo, t_hi - 2)  # keep the open window (t_lo, t_hi) non-empty
    t_mid = t_lo + max(1, (t_hi - t_lo) // 2)
    return [
        "SELECT * FROM IparsData",
        f"SELECT * FROM IparsData WHERE TIME>{t_lo} AND TIME<{t_hi}",
        f"SELECT * FROM IparsData WHERE TIME>{t_lo} AND TIME<{t_hi} "
        "AND SOIL>0.7",
        f"SELECT * FROM IparsData WHERE TIME>{t_lo} AND TIME<{t_hi} "
        "AND SPEED(OILVX, OILVY, OILVZ)<30",
        f"SELECT * FROM IparsData WHERE TIME>{t_lo} AND TIME<{t_mid}",
    ]
