"""Synthetic MRI study dataset (paper §2.2's "cancer studies using MRI").

A study archive holds many patient studies; each study is a 3-D volume
(slices × rows × columns) acquired in several modalities (T1, T2, FLAIR),
stored the way scanners write them: one raw 16-bit volume file per
modality per study, studies distributed round-robin across archive nodes
(``DIR[$STUDY % N]/study$STUDY/T1.vol``).

The virtual table view is one row per (STUDY, SLICE, ROW, COL) voxel with
all modality intensities — which makes "find lesion candidates across the
archive" a SQL query instead of a per-format script.

The generator plants a synthetic hyper-intense ellipsoidal *lesion* in a
deterministic subset of studies; intensities elsewhere are smooth noise.
That gives threshold queries real spatial structure to find (and the
example script something to show).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.extractor import Mount
from ..core.planner import CompiledDataset
from ..errors import ReproError
from .writers import ValueFn, hash01, write_dataset

MODALITIES: Tuple[str, ...] = ("T1", "T2", "FLAIR")

#: Background tissue intensity scale (12-bit-ish values in a 16-bit range).
_BASE = 800.0
_NOISE = 300.0
_LESION_BOOST = 1800.0


@dataclass(frozen=True)
class MriConfig:
    """Shape of a synthetic MRI study archive."""

    num_studies: int = 6
    slices: int = 8
    rows: int = 32
    cols: int = 32
    num_nodes: int = 2
    #: Every ``lesion_every``-th study carries a lesion (study 0, k, 2k...).
    lesion_every: int = 3
    seed: int = 23
    dirname: str = "mri"

    @property
    def voxels_per_study(self) -> int:
        return self.slices * self.rows * self.cols

    @property
    def total_rows(self) -> int:
        return self.num_studies * self.voxels_per_study

    @property
    def row_bytes(self) -> int:
        # STUDY i2 + SLICE/ROW/COL i2 each + 3 modalities u2
        return 4 * 2 + len(MODALITIES) * 2

    def has_lesion(self, study: int) -> bool:
        return study % self.lesion_every == 0

    def lesion_center(self, study: int) -> Tuple[float, float, float]:
        """Deterministic lesion position within a study's volume."""
        u = hash01(np.array([study], dtype=np.int64), self.seed + 100)[0]
        v = hash01(np.array([study], dtype=np.int64), self.seed + 200)[0]
        w = hash01(np.array([study], dtype=np.int64), self.seed + 300)[0]
        return (
            (0.25 + 0.5 * u) * self.slices,
            (0.25 + 0.5 * v) * self.rows,
            (0.25 + 0.5 * w) * self.cols,
        )

    @property
    def lesion_radii(self) -> Tuple[float, float, float]:
        return (
            max(1.0, self.slices / 5.0),
            max(2.0, self.rows / 6.0),
            max(2.0, self.cols / 6.0),
        )


def schema_text() -> str:
    lines = ["[MRI]", "STUDY = short int", "SLICE = short int",
             "ROW = short int", "COL = short int"]
    lines.extend(f"{m} = unsigned short" for m in MODALITIES)
    return "\n".join(lines) + "\n"


def storage_text(config: MriConfig) -> str:
    lines = ["[MriArchive]", "DatasetDescription = MRI"]
    for i in range(config.num_nodes):
        lines.append(f"DIR[{i}] = node{i}/{config.dirname}")
    return "\n".join(lines) + "\n"


def layout_text(config: MriConfig) -> str:
    """One volume file per modality per study, round-robin over nodes."""
    parts = [
        'DATASET "MriArchive" {',
        "  DATATYPE { MRI }",
        "  DATAINDEX { STUDY SLICE }",
        "  DATA { " + " ".join(f"DATASET vol_{m}" for m in MODALITIES) + " }",
    ]
    space = (
        f"      LOOP SLICE 0:{config.slices - 1}:1 {{\n"
        f"        LOOP ROW 0:{config.rows - 1}:1 {{\n"
        f"          LOOP COL 0:{config.cols - 1}:1 {{ %s }}\n"
        "        }\n"
        "      }"
    )
    for modality in MODALITIES:
        parts.extend([
            f'  DATASET "vol_{modality}" {{',
            "    DATASPACE {",
            space % modality,
            "    }",
            f"    DATA {{ DIR[$STUDY%{config.num_nodes}]/study$STUDY/"
            f"{modality}.vol STUDY = 0:{config.num_studies - 1}:1 }}",
            "  }",
        ])
    parts.append("}")
    return "\n".join(parts) + "\n"


def descriptor_text(config: MriConfig) -> str:
    return "\n".join([schema_text(), storage_text(config), layout_text(config)])


def make_value_fn(config: MriConfig) -> ValueFn:
    """Voxel intensities: smooth noise + the planted lesion."""
    salts = {m: config.seed + i for i, m in enumerate(MODALITIES)}

    def value_fn(attr: str, env: Dict[str, int], coords: Dict[str, np.ndarray]):
        if attr not in salts:
            raise ReproError(f"unknown MRI attribute {attr!r}")
        study = int(env["STUDY"])
        s = coords["SLICE"].astype(np.float64)
        r = coords["ROW"].astype(np.float64)
        c = coords["COL"].astype(np.float64)
        key = (
            (np.int64(study) * (config.slices + 1) + coords["SLICE"])
            * (config.rows + 1)
            + coords["ROW"]
        ) * (config.cols + 1) + coords["COL"]
        intensity = _BASE + _NOISE * hash01(key, salts[attr])
        if config.has_lesion(study):
            cs, cr, cc = config.lesion_center(study)
            rs, rr, rc = config.lesion_radii
            dist2 = (
                ((s - cs) / rs) ** 2
                + ((r - cr) / rr) ** 2
                + ((c - cc) / rc) ** 2
            )
            # T1 hypo-intense, T2/FLAIR hyper-intense — the classic
            # appearance of edema; broadcasting fills the volume.
            inside = dist2 <= 1.0
            if attr == "T1":
                intensity = np.where(inside, intensity * 0.5, intensity)
            else:
                intensity = intensity + np.where(inside, _LESION_BOOST, 0.0)
        return intensity

    return value_fn


def generate(
    config: MriConfig, mount: Mount, only_missing: bool = False
) -> Tuple[str, int]:
    """Write the archive; returns (descriptor text, bytes written)."""
    text = descriptor_text(config)
    dataset = CompiledDataset(text)
    written = write_dataset(dataset, mount, make_value_fn(config), only_missing)
    return text, written


def lesion_query(config: MriConfig, study: int) -> str:
    """The archive's bread-and-butter question: lesion candidate voxels."""
    threshold = _BASE + _NOISE + _LESION_BOOST / 2
    return (
        f"SELECT SLICE, ROW, COL, T2, FLAIR FROM MriArchive "
        f"WHERE STUDY = {study} AND T2 > {threshold:.0f} "
        f"AND FLAIR > {threshold:.0f}"
    )
