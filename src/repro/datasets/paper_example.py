"""The paper's Figure 4 running example, scaled for tests and demos.

4 directories x 4 realizations x 20 time steps x 10 grid cells per node:
the COORDS + DATA<rel> layout exactly as printed in the paper, with a
deterministic value function so the dataset is byte-reproducible.
"""

from __future__ import annotations

import numpy as np

from .writers import hash01

PAPER_DESCRIPTOR = """
[IPARS]
REL = short int
TIME = int
X = float
Y = float
Z = float
SOIL = float
SGAS = float

[IparsData]
DatasetDescription = IPARS
DIR[0] = osu0/ipars
DIR[1] = osu1/ipars
DIR[2] = osu2/ipars
DIR[3] = osu3/ipars

DATASET "IparsData" {
  DATATYPE { IPARS }
  DATAINDEX { REL TIME }
  DATA { DATASET ipars1 DATASET ipars2 }

  DATASET "ipars1" {
    DATASPACE {
      LOOP GRID ($DIRID*10+1):(($DIRID+1)*10):1 { X Y Z }
    }
    DATA { DIR[$DIRID]/COORDS DIRID = 0:3:1 }
  }

  DATASET "ipars2" {
    DATASPACE {
      LOOP TIME 1:20:1 {
        LOOP GRID ($DIRID*10+1):(($DIRID+1)*10):1 { SOIL SGAS }
      }
    }
    DATA { DIR[$DIRID]/DATA$REL REL = 0:3:1 DIRID = 0:3:1 }
  }
}
"""

#: Geometry constants of PAPER_DESCRIPTOR.
PAPER_DIRS = 4
PAPER_RELS = 4
PAPER_TIMES = 20
PAPER_CELLS = 10


def paper_value_fn(attr, env, coords):
    """Deterministic values: coordinates are grid multiples; SOIL/SGAS
    hash (REL, TIME, GRID)."""

    def var(name):
        if name in coords:
            return coords[name]
        return np.int64(env[name])

    grid = var("GRID")
    if attr == "X":
        return grid * 1.0
    if attr == "Y":
        return grid * 2.0
    if attr == "Z":
        return grid * 3.0
    rel = var("REL")
    time = var("TIME")
    key = (np.asarray(rel, dtype=np.int64) * 1000 + time) * 10000 + grid
    if attr == "SOIL":
        return hash01(key, 1)
    if attr == "SGAS":
        return hash01(key, 2)
    raise AssertionError(attr)


def paper_rows():
    """All (rel, time, grid) row identities of the example's virtual table."""
    rows = []
    for dirid in range(PAPER_DIRS):
        for rel in range(PAPER_RELS):
            for t in range(1, PAPER_TIMES + 1):
                for g in range(dirid * 10 + 1, (dirid + 1) * 10 + 1):
                    rows.append((rel, t, g))
    return rows
