"""Synthetic Titan satellite dataset (paper Section 2.2).

A Titan dataset is a stream of sensor readings, each with spatial
coordinates, a time stamp, and five sensor values.  For query performance
the processed data is partitioned into *chunks*, each covering a sub-region
of the space-time domain, with a spatial index over chunk bounding boxes.

Our generator decomposes the domain into a 4-D lattice of chunk cells
(x, y, z, time); every chunk holds ``elems_per_chunk`` readings scattered
uniformly inside its cell.  Values are pure functions of (CHUNK, ELEM), so
the dataset is byte-reproducible.

Sensor ``S1`` is approximately uniform in [0, 1) *marginally* but is
clustered at chunk granularity (a per-chunk base value plus small
per-reading noise), the way real instrument readings correlate along the
orbit.  This clustering is what makes the paper's Q4 (``S1 < 0.01``)
index-friendly for PostgreSQL — the ~1% of qualifying tuples sit on ~1% of
the heap pages, so a B-tree index scan touches few pages, while STORM
(which has no S1 index) must scan everything.  Q5 (``S1 < 0.5``) remains a
~50% selection where no index helps.  Sensors S2-S5 are i.i.d. uniform.

The descriptor declares ``DATAINDEX { X Y Z TIME }`` on *stored*
attributes, which makes the planner keep the CHUNK loop outside the
aligned-chunk extent and enables pruning through persisted per-chunk
min/max summaries — the reproduction of the paper's spatial chunk index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.extractor import Mount
from ..core.planner import CompiledDataset
from ..errors import ReproError
from .writers import ValueFn, hash01, write_dataset

SENSORS: Tuple[str, ...] = ("S1", "S2", "S3", "S4", "S5")


@dataclass(frozen=True)
class TitanConfig:
    """Shape of a synthetic Titan dataset."""

    #: Chunk lattice: nx * ny * nz * nt chunks in total.
    chunks_x: int = 8
    chunks_y: int = 8
    chunks_z: int = 4
    chunks_t: int = 4
    elems_per_chunk: int = 500
    #: Spatial extent of the full domain (paper queries use coordinates
    #: in the tens of thousands).
    extent: Tuple[float, float, float] = (40000.0, 40000.0, 400.0)
    #: Time stamps span [0, time_extent).
    time_extent: int = 10000
    num_nodes: int = 1
    seed: int = 11
    dirname: str = "titan"

    @property
    def chunks_per_node(self) -> int:
        total = self.chunks_x * self.chunks_y * self.chunks_z * self.chunks_t
        if total % self.num_nodes:
            raise ReproError(
                f"{total} chunks do not divide evenly over "
                f"{self.num_nodes} nodes"
            )
        return total // self.num_nodes

    @property
    def total_chunks(self) -> int:
        return self.chunks_x * self.chunks_y * self.chunks_z * self.chunks_t

    @property
    def total_rows(self) -> int:
        return self.total_chunks * self.elems_per_chunk

    @property
    def row_bytes(self) -> int:
        return 4 + 4 * (3 + len(SENSORS))  # TIME + X/Y/Z + sensors


def schema_text() -> str:
    lines = ["[TITAN]", "TIME = int", "X = float", "Y = float", "Z = float"]
    lines.extend(f"{name} = float" for name in SENSORS)
    return "\n".join(lines) + "\n"


def storage_text(config: TitanConfig) -> str:
    lines = ["[TitanData]", "DatasetDescription = TITAN"]
    for i in range(config.num_nodes):
        lines.append(f"DIR[{i}] = osu{i}/{config.dirname}")
    return "\n".join(lines) + "\n"


def layout_text(config: TitanConfig) -> str:
    per_node = config.chunks_per_node
    attrs = "TIME X Y Z " + " ".join(SENSORS)
    return f"""
DATASET "TitanData" {{
  DATATYPE {{ TITAN }}
  DATAINDEX {{ X Y Z TIME }}
  DATASPACE {{
    LOOP CHUNK ($DIRID*{per_node}):((($DIRID+1)*{per_node})-1):1 {{
      LOOP ELEM 0:{config.elems_per_chunk - 1}:1 {{ {attrs} }}
    }}
  }}
  DATA {{ DIR[$DIRID]/chunks.bin DIRID = 0:{config.num_nodes - 1}:1 }}
}}
"""


def descriptor_text(config: TitanConfig) -> str:
    return "\n".join([schema_text(), storage_text(config), layout_text(config)])


def chunk_cell(config: TitanConfig, chunk) -> Tuple:
    """Decompose chunk ids into (cx, cy, cz, ct) lattice coordinates."""
    chunk = np.asarray(chunk, dtype=np.int64)
    cx = chunk % config.chunks_x
    rest = chunk // config.chunks_x
    cy = rest % config.chunks_y
    rest = rest // config.chunks_y
    cz = rest % config.chunks_z
    ct = rest // config.chunks_z
    return cx, cy, cz, ct


def make_value_fn(config: TitanConfig) -> ValueFn:
    """Deterministic reading generator with per-chunk spatial locality."""
    cell_w = (
        config.extent[0] / config.chunks_x,
        config.extent[1] / config.chunks_y,
        config.extent[2] / config.chunks_z,
    )
    cell_t = config.time_extent / config.chunks_t
    base_salt = config.seed * 1000

    def value_fn(attr: str, env: Dict[str, int], coords: Dict[str, np.ndarray]):
        chunk = coords["CHUNK"]
        elem = coords["ELEM"]
        cx, cy, cz, ct = chunk_cell(config, chunk)
        key = chunk * np.int64(config.elems_per_chunk + 1) + elem
        if attr == "X":
            return (cx + hash01(key, base_salt + 1)) * cell_w[0]
        if attr == "Y":
            return (cy + hash01(key, base_salt + 2)) * cell_w[1]
        if attr == "Z":
            return (cz + hash01(key, base_salt + 3)) * cell_w[2]
        if attr == "TIME":
            return ((ct + hash01(key, base_salt + 4)) * cell_t).astype(np.int64)
        if attr == "S1":
            # Chunk-clustered: per-chunk base + 2% per-reading noise.
            base = hash01(np.asarray(chunk, dtype=np.int64), base_salt + 10)
            noise = hash01(key, base_salt + 20)
            return (base + 0.02 * noise) / 1.02
        for i, sensor in enumerate(SENSORS):
            if attr == sensor:
                return hash01(key, base_salt + 10 + i)
        raise ReproError(f"unknown Titan attribute {attr!r}")

    return value_fn


def generate(
    config: TitanConfig, mount: Mount, only_missing: bool = False
) -> Tuple[str, int]:
    """Write the dataset; returns (descriptor text, bytes written)."""
    text = descriptor_text(config)
    dataset = CompiledDataset(text)
    written = write_dataset(dataset, mount, make_value_fn(config), only_missing)
    return text, written


# ---------------------------------------------------------------------------
# The paper's evaluation queries (Figure 7)
# ---------------------------------------------------------------------------


def figure7_queries(config: TitanConfig) -> List[str]:
    """The five Titan queries, scaled to the config's spatial extent.

    Q2 selects roughly one quarter of X, one quarter of Y, and one quarter
    of Z (the paper's 0..10000 box of a larger domain); Q3's distance
    filter catches points near the origin; Q4/Q5 filter on S1.
    """
    x_hi = config.extent[0] / 4.0
    y_hi = config.extent[1] / 4.0
    z_hi = config.extent[2] / 4.0
    radius = config.extent[0] / 8.0
    return [
        "SELECT * FROM TitanData",
        f"SELECT * FROM TitanData WHERE X>=0 AND X<={x_hi:.0f} "
        f"AND Y>=0 AND Y<={y_hi:.0f} AND Z>=0 AND Z<={z_hi:.0f}",
        f"SELECT * FROM TitanData WHERE DISTANCE(X, Y, Z)<{radius:.0f}",
        "SELECT * FROM TitanData WHERE S1 < 0.01",
        "SELECT * FROM TitanData WHERE S1 < 0.5",
    ]
