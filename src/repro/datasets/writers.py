"""Descriptor-driven dataset materialisation.

:func:`write_dataset` renders a synthetic dataset onto disk for *any*
layout descriptor: it walks the compiled strips of every physical file and
fills each attribute with values from a single deterministic value
function.  Because the byte placement comes from the same strip geometry
the planner reads with, one value function materialises every layout of
the paper's Figure 9 experiment identically — the layout-equivalence tests
rely on this.

The value function receives the attribute name, the file's binding
environment (e.g. ``{"REL": 2, "DIRID": 0}``), and a sparse meshgrid of
loop-variable values; it returns an array broadcastable to the strip's
full dimension shape.  Attributes must therefore be pure functions of
``(binding vars, loop vars)`` — which is exactly the condition for two
layouts to encode the same virtual table.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

import numpy as np

from ..core.extractor import Mount
from ..core.planner import CompiledDataset
from ..core.strips import PhysicalFile, Strip

#: value_fn(attr_name, env, coords) -> array broadcastable to the dim shape.
ValueFn = Callable[[str, Dict[str, int], Dict[str, np.ndarray]], np.ndarray]


def strip_coords(strip: Strip) -> Dict[str, np.ndarray]:
    """Sparse meshgrid (numpy broadcasting shapes) of a strip's loop values."""
    ndim = len(strip.dims)
    coords: Dict[str, np.ndarray] = {}
    for axis, dim in enumerate(strip.dims):
        shape = [1] * ndim
        shape[axis] = dim.count
        coords[dim.var] = np.asarray(dim.values(), dtype=np.int64).reshape(shape)
    return coords


def render_file(file: PhysicalFile, value_fn: ValueFn) -> bytearray:
    """Render one physical file's bytes in memory."""
    buf = bytearray(file.expected_size)
    for strip in file.strips:
        shape = tuple(dim.count for dim in strip.dims)
        strides = tuple(dim.byte_stride for dim in strip.dims)
        coords = strip_coords(strip)
        for attr, offset, fmt in zip(
            strip.attrs, strip.attr_offsets, strip.attr_formats
        ):
            dtype = np.dtype(fmt)
            view = np.ndarray(
                shape=shape,
                dtype=dtype,
                buffer=buf,
                offset=strip.base_offset + offset,
                strides=strides,
            )
            values = value_fn(attr, file.env, coords)
            view[...] = np.broadcast_to(np.asarray(values, dtype=dtype), shape)
    return buf


def write_dataset(
    dataset: CompiledDataset,
    mount: Mount,
    value_fn: ValueFn,
    only_missing: bool = False,
) -> int:
    """Materialise every physical file of the dataset; returns total bytes.

    ``only_missing`` skips files that already exist with the expected size
    (cheap idempotent re-runs for benchmarks).
    """
    total = 0
    for file in dataset.files:
        path = mount(file.node, file.relpath)
        if (
            only_missing
            and os.path.exists(path)
            and os.path.getsize(path) == file.expected_size
        ):
            total += file.expected_size
            continue
        os.makedirs(os.path.dirname(path), exist_ok=True)
        buf = render_file(file, value_fn)
        with open(path, "wb") as handle:
            handle.write(buf)
        total += len(buf)
    return total


def hash01(values: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic uniform [0, 1) floats from integer coordinates.

    A vectorised splitmix64-style mixer: good enough dispersion for
    synthetic workloads, fully reproducible across platforms, and pure —
    the same (value, salt) always maps to the same float, which is what
    lets different layouts materialise identical tables.
    """
    x = np.asarray(values, dtype=np.uint64)
    salt64 = np.uint64(salt & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        x = x + np.uint64(0x9E3779B97F4A7C15) * (salt64 + np.uint64(1))
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


def combine_coords(
    coords: Dict[str, np.ndarray], names, weights
) -> np.ndarray:
    """Linear integer combination of loop variables (broadcasts)."""
    acc: Optional[np.ndarray] = None
    for name, weight in zip(names, weights):
        term = coords[name].astype(np.int64) * int(weight)
        acc = term if acc is None else acc + term
    assert acc is not None
    return acc
