"""Static analysis of descriptors and queries (``repro check``).

Public surface:

* :class:`Diagnostic`, :class:`Severity`, :class:`Collector`, and the
  :data:`CODES` registry — the reporting vocabulary,
* :func:`lint_descriptor` / :func:`lint_text` — the descriptor linter,
* :func:`analyze_query` — query-vs-descriptor analysis,
* :func:`analyze_options` — execution-option (ExecOptions) analysis,
* :class:`Span` — re-exported source positions.
"""

from ..metadata.spans import Span
from .core import CODES, Collector, Diagnostic, Severity, sarif_log
from .linter import lint_descriptor, lint_text
from .options import analyze_options
from .query import analyze_query

__all__ = [
    "CODES",
    "Collector",
    "Diagnostic",
    "Severity",
    "Span",
    "analyze_options",
    "analyze_query",
    "lint_descriptor",
    "lint_text",
    "sarif_log",
]
