"""Diagnostics core: codes, severities, findings, and the collector.

The validator used to raise on the first inconsistency it met; real
static analysis wants *all* findings at once, each pointing at the
offending source region.  A :class:`Diagnostic` is one finding — a stable
code (``RV1xx`` for descriptor lints, ``RQ2xx`` for query analyses), a
severity, a message, an optional :class:`~repro.metadata.spans.Span`, and
an optional suggested fix.  A :class:`Collector` gathers many of them;
:func:`~repro.metadata.validate.validate_descriptor` is now a thin
raising shim over it.

Every code must be registered in :data:`CODES`; ``docs/diagnostics.md``
catalogues them and ``tests/test_diag.py`` checks both stay in sync.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..metadata.spans import Span


class Severity(enum.Enum):
    """How bad a finding is; ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: Registry of every diagnostic code: code -> (default severity, title).
#: RV0xx: the descriptor could not be analysed at all.
#: RV1xx: descriptor (schema/storage/layout) lints.
#: RQ2xx: query-vs-descriptor analyses.
#: RO3xx: execution-option (ExecOptions) analyses.
#: RT3xx: query type inference/checking (repro.sql.typecheck).
#: RW4xx: equivalence-preserving rewrite explain entries
#:        (repro.sql.rewrite; informational audit trail).
CODES: Dict[str, Tuple["Severity", str]] = {
    "RV001": (Severity.ERROR, "descriptor syntax error"),
    "RV002": (Severity.ERROR, "descriptor assembly error"),
    "RV101": (Severity.ERROR, "no leaf dataset"),
    "RV102": (Severity.ERROR, "leaf dataset without files"),
    "RV103": (Severity.ERROR, "empty dataset"),
    "RV104": (Severity.ERROR, "file patterns on a non-leaf dataset"),
    "RV105": (Severity.ERROR, "undefined schema reference"),
    "RV106": (Severity.ERROR, "stored attribute not in schema"),
    "RV107": (Severity.ERROR, "attribute stored twice in one leaf"),
    "RV108": (Severity.ERROR, "attribute stored by two leaves"),
    "RV109": (Severity.ERROR, "binding variable bound twice"),
    "RV110": (Severity.ERROR, "LOOP variable shadows an enclosing loop"),
    "RV111": (Severity.ERROR, "LOOP variable collides with a binding"),
    "RV112": (Severity.ERROR, "loop bound uses a non-binding variable"),
    "RV113": (Severity.ERROR, "file pattern uses unbound variables"),
    "RV114": (Severity.ERROR, "pattern references an undeclared DIR index"),
    "RV115": (Severity.ERROR, "pattern expands to an invalid path"),
    "RV116": (Severity.ERROR, "schema attribute neither stored nor implicit"),
    "RV117": (Severity.ERROR, "implicit attribute must have integer type"),
    "RV118": (Severity.ERROR, "DATAINDEX attribute not in schema"),
    "RV119": (Severity.ERROR, "provably empty range"),
    "RV120": (Severity.ERROR, "non-positive range stride"),
    "RV121": (Severity.ERROR, "range expression cannot be evaluated"),
    "RV122": (Severity.WARNING, "unused binding variable"),
    "RV123": (Severity.ERROR, "duplicate file binding across leaves"),
    "RV124": (Severity.WARNING, "implicit attribute type too narrow"),
    "RV125": (Severity.INFO, "stride never reaches the upper bound"),
    "RV126": (Severity.INFO, "no DATAINDEX declared"),
    "RV127": (Severity.WARNING, "storage DIR never referenced"),
    "RQ200": (Severity.ERROR, "query syntax error"),
    "RQ201": (Severity.ERROR, "query targets a different dataset"),
    "RQ202": (Severity.ERROR, "SELECT references an unknown attribute"),
    "RQ203": (Severity.ERROR, "WHERE references an unknown attribute"),
    "RQ204": (Severity.ERROR, "unknown filter function"),
    "RQ205": (Severity.ERROR, "filter function arity mismatch"),
    "RQ206": (Severity.ERROR, "type mismatch in comparison"),
    "RQ207": (Severity.WARNING, "WHERE clause is provably empty"),
    "RQ208": (Severity.WARNING, "predicate excludes the declared dataspace"),
    "RQ209": (Severity.WARNING, "predicate defeats index pruning"),
    "RQ210": (Severity.WARNING, "duplicate SELECT column"),
    "RQ211": (Severity.ERROR, "bare attribute not in GROUP BY"),
    "RQ212": (Severity.ERROR, "GROUP BY references an unknown attribute"),
    "RQ213": (Severity.ERROR, "aggregate of an unknown attribute"),
    "RQ214": (Severity.INFO, "GROUP BY without aggregates (DISTINCT)"),
    "RO300": (Severity.ERROR, "inflight_limit must be positive"),
    "RO301": (Severity.ERROR, "max_connections_per_node must be positive"),
    "RO302": (Severity.ERROR, "connect_timeout must be positive"),
    "RO303": (Severity.WARNING, "retry_backoff without retries"),
    "RO304": (Severity.ERROR, "retries must be non-negative"),
    "RO305": (Severity.ERROR, "batch_rows must be positive"),
    "RO306": (Severity.WARNING, "inflight_limit below per-node pool size"),
    "RO307": (Severity.ERROR, "node_timeout must be positive"),
    "RO308": (Severity.INFO, "aggregate pushdown disabled"),
    "RO309": (Severity.ERROR, "scheduler_workers must be non-negative"),
    "RO310": (Severity.ERROR, "admission_budget admits nothing"),
    "RO311": (Severity.ERROR, "quota must be positive"),
    "RO312": (Severity.ERROR, "deadline must be positive"),
    "RO313": (Severity.WARNING, "scheduling knobs with scheduler off"),
    "RO314": (Severity.INFO, "vectorized execution disabled"),
    "RT301": (Severity.ERROR, "incomparable operand types"),
    "RT302": (Severity.ERROR, "function argument type mismatch"),
    "RT303": (Severity.ERROR, "IN/BETWEEN value type mismatch"),
    "RT304": (Severity.ERROR, "aggregate over a non-numeric attribute"),
    "RT305": (Severity.WARNING, "integer SUM may overflow"),
    "RT306": (Severity.WARNING, "literal unrepresentable in attribute type"),
    "RT307": (Severity.WARNING, "literal outside the attribute's range"),
    "RT308": (Severity.INFO, "function result type assumed numeric"),
    "RT309": (Severity.INFO, "scalar UDF falls back to per-row calls"),
    "RW400": (Severity.INFO, "constant folded"),
    "RW401": (Severity.INFO, "comparison canonicalized"),
    "RW402": (Severity.INFO, "NOT pushed inward"),
    "RW403": (Severity.INFO, "BETWEEN expanded to a range conjunction"),
    "RW404": (Severity.INFO, "IN list canonicalized"),
    "RW405": (Severity.INFO, "duplicate term eliminated"),
    "RW406": (Severity.INFO, "subsumed range conjunct merged"),
    "RW407": (Severity.INFO, "neutral or absorbing constant eliminated"),
    "RW408": (Severity.INFO, "contradiction folded to FALSE"),
    "RW409": (Severity.INFO, "term order canonicalized"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    #: A human-readable suggestion for repairing the finding, when one
    #: can be stated mechanically.
    fix: Optional[str] = None
    #: What was analysed (descriptor path, dataset name, or "query").
    source: Optional[str] = None

    @property
    def title(self) -> str:
        """The registered short title of this diagnostic's code."""
        entry = CODES.get(self.code)
        return entry[1] if entry else self.code

    def format(self, show_source: bool = True) -> str:
        """``source:line:col: severity[CODE]: message`` (parts optional)."""
        prefix = ""
        if show_source and self.source:
            prefix += f"{self.source}:"
        if self.span is not None:
            prefix += f"{self.span.line}:{self.span.column}:"
        text = f"{self.severity}[{self.code}]: {self.message}"
        return f"{prefix} {text}" if prefix else text

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": str(self.severity),
            "title": self.title,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = self.span.to_dict()
        if self.fix is not None:
            out["fix"] = self.fix
        if self.source is not None:
            out["source"] = self.source
        return out


class Collector:
    """Accumulates diagnostics instead of raising on the first one.

    Analyzers call :meth:`emit` with a registered code; the severity
    defaults to the code's registered severity.  ``strict=True`` (the
    ``repro check --strict`` / ``ExecOptions(strict=True)`` mode)
    escalates warnings to errors at *query* time — the collector itself
    always stores the registered severity so output stays stable.
    """

    def __init__(self, source: Optional[str] = None):
        self.source = source
        self.diagnostics: List[Diagnostic] = []

    # -- recording -----------------------------------------------------------

    def emit(
        self,
        code: str,
        message: str,
        span: Optional[Span] = None,
        fix: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        if severity is None:
            entry = CODES.get(code)
            if entry is None:
                raise KeyError(f"unregistered diagnostic code {code!r}")
            severity = entry[0]
        diag = Diagnostic(code, severity, message, span, fix, self.source)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "Collector") -> None:
        self.diagnostics.extend(other.diagnostics)

    # -- queries -------------------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def first_error(self) -> Optional[Diagnostic]:
        for diag in self.diagnostics:
            if diag.severity is Severity.ERROR:
                return diag
        return None

    def codes(self) -> List[str]:
        """Distinct codes present, in first-appearance order."""
        seen: List[str] = []
        for diag in self.diagnostics:
            if diag.code not in seen:
                seen.append(diag.code)
        return seen

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics in source order (span-less findings last)."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.span is None,
                (d.span.line, d.span.column) if d.span else (0, 0),
            ),
        )

    # -- rendering -----------------------------------------------------------

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )

    def format_text(self) -> str:
        lines = [d.format() for d in self.sorted()]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "source": self.source,
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }
        return json.dumps(payload, indent=indent)

    def to_sarif_run(self) -> Dict[str, Any]:
        """One SARIF 2.1.0 ``run`` object for these diagnostics."""
        level = {
            Severity.ERROR: "error",
            Severity.WARNING: "warning",
            Severity.INFO: "note",
        }
        rules = [
            {
                "id": code,
                "shortDescription": {"text": CODES[code][1]},
                "defaultConfiguration": {"level": level[CODES[code][0]]},
            }
            for code in sorted(set(self.codes()))
            if code in CODES
        ]
        results: List[Dict[str, Any]] = []
        for diag in self.sorted():
            result: Dict[str, Any] = {
                "ruleId": diag.code,
                "level": level[diag.severity],
                "message": {"text": diag.message},
            }
            location: Dict[str, Any] = {}
            if diag.source:
                location["physicalLocation"] = {
                    "artifactLocation": {"uri": diag.source}
                }
            if diag.span is not None:
                region: Dict[str, Any] = {
                    "startLine": diag.span.line,
                    "startColumn": diag.span.column,
                }
                if diag.span.end_line:
                    region["endLine"] = diag.span.end_line
                if diag.span.end_column:
                    region["endColumn"] = diag.span.end_column
                location.setdefault("physicalLocation", {})["region"] = region
            if location:
                result["locations"] = [location]
            results.append(result)
        return {
            "tool": {
                "driver": {
                    "name": "repro-check",
                    "informationUri": (
                        "https://example.invalid/repro/docs/diagnostics"
                    ),
                    "rules": rules,
                }
            },
            "results": results,
        }

    def to_sarif(self, indent: Optional[int] = 2) -> str:
        """A complete single-run SARIF 2.1.0 log (for CI annotations)."""
        return json.dumps(sarif_log([self]), indent=indent)


def sarif_log(collectors: List["Collector"]) -> Dict[str, Any]:
    """A SARIF 2.1.0 log document with one run per collector."""
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [collector.to_sarif_run() for collector in collectors],
    }
