"""The descriptor linter: collecting analyzers over assembled descriptors.

:func:`lint_descriptor` runs every analyzer and returns a
:class:`~repro.diag.core.Collector`.  The first block of analyzers mirrors
the historical fail-fast validator check-for-check **in the same order and
with the same message text** — :func:`repro.metadata.validate.validate_descriptor`
is now a shim that raises the collector's first error, so the mirrored
ordering is what keeps its observable behaviour unchanged.  The analyzers
after that are new: they only ever *append* findings, so they cannot
perturb the first error.

:func:`lint_text` lints raw descriptor text: parse failures become
``RV001`` (syntax) / ``RV002`` (assembly) diagnostics instead of
exceptions, and when the text parses, the descriptor analyzers run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from ..errors import (
    MetadataError,
    MetadataEvaluationError,
    MetadataSyntaxError,
    MetadataValidationError,
)
from ..metadata.expressions import RangeExpr
from ..metadata.layout import (
    AttrGroup,
    DatasetNode,
    LoopNode,
    iter_attr_names,
    iter_loop_vars,
)
from ..metadata.spans import Span
from .core import Collector

if TYPE_CHECKING:  # pragma: no cover
    from ..metadata.descriptor import Descriptor


def lint_descriptor(
    descriptor: "Descriptor", collector: Optional[Collector] = None
) -> Collector:
    """Run every descriptor analyzer; never raises on findings."""
    if collector is None:
        collector = Collector(source=descriptor.name)

    # ---- mirrored validator checks (order and messages preserved) ----------
    leaves = descriptor.layout.leaves()
    if not leaves:
        collector.emit(
            "RV101",
            f"dataset {descriptor.name!r} has no leaf DATASET with a DATASPACE",
            span=descriptor.layout.span,
            fix="add a DATASPACE clause to the innermost DATASET block",
        )
        return collector
    _lint_tree_shape(descriptor.layout, collector)
    attr_owner: Dict[str, Tuple[str, Optional[Span]]] = {}
    for leaf in leaves:
        _lint_leaf(descriptor, leaf, attr_owner, collector)
    _lint_schema_coverage(descriptor, leaves, collector)
    _lint_index_attrs(descriptor, collector)

    # ---- extended analyzers (new codes; append-only) ------------------------
    _lint_loop_ranges(leaves, collector)
    _lint_unused_bindings(descriptor, leaves, collector)
    _lint_duplicate_files(leaves, collector)
    _lint_implicit_widths(descriptor, leaves, collector)
    _lint_dir_usage(descriptor, leaves, collector)
    _lint_index_presence(descriptor, collector)
    return collector


def lint_text(
    text: str,
    dataset_name: Optional[str] = None,
    source: Optional[str] = None,
) -> Collector:
    """Lint raw descriptor text; parse errors become diagnostics."""
    from ..metadata.descriptor import build_descriptor
    from ..metadata.layout import parse_layout
    from ..metadata.schema import parse_schemas
    from ..metadata.storage import parse_storage

    collector = Collector(source=source)
    try:
        schemas = parse_schemas(text)
        storages = parse_storage(text)
        layouts = parse_layout(text)
    except MetadataSyntaxError as exc:
        span = None
        line = getattr(exc, "line", 0)
        if line:
            span = Span(line, getattr(exc, "column", 0) or 1)
        collector.emit("RV001", str(exc), span=span)
        return collector
    except MetadataError as exc:
        collector.emit("RV002", str(exc))
        return collector
    try:
        descriptor = build_descriptor(
            schemas, storages, layouts, dataset_name, validate=False
        )
    except MetadataError as exc:
        collector.emit("RV002", str(exc))
        return collector
    if collector.source is None:
        collector.source = descriptor.name
    return lint_descriptor(descriptor, collector)


# ---------------------------------------------------------------------------
# Mirrored validator analyzers
# ---------------------------------------------------------------------------


def _lint_tree_shape(root: DatasetNode, collector: Collector) -> None:
    for node in root.walk():
        if node.is_leaf:
            if not node.data.is_leaf:
                collector.emit(
                    "RV102",
                    f"leaf dataset {node.name!r} has a DATASPACE but its "
                    "DATA clause lists no files",
                    span=node.span,
                    fix="add DIR[...]/... file patterns to the DATA clause",
                )
        else:
            if not node.children:
                collector.emit(
                    "RV103",
                    f"dataset {node.name!r} has neither a DATASPACE nor "
                    "nested DATASETs",
                    span=node.span,
                )
            if node.data.patterns:
                collector.emit(
                    "RV104",
                    f"non-leaf dataset {node.name!r} lists file patterns",
                    span=node.data.patterns[0].span or node.span,
                    fix="move the file patterns into the leaf DATASET",
                )


def _lint_leaf(
    descriptor: "Descriptor",
    leaf: DatasetNode,
    attr_owner: Dict[str, Tuple[str, Optional[Span]]],
    collector: Collector,
) -> None:
    schema = descriptor.schema
    schema_name = leaf.effective_schema_name()
    if schema_name is not None and schema_name != descriptor.storage.schema_name:
        if schema_name not in descriptor.all_schemas:
            collector.emit(
                "RV105",
                f"leaf {leaf.name!r} references undefined schema {schema_name!r}",
                span=leaf.schema_span or leaf.span,
                fix=f"declare a [{schema_name}] schema section or fix the "
                "DATATYPE reference",
            )

    binding_vars = {b.var for b in leaf.data.bindings}
    _lint_bindings_unique(leaf, collector)

    seen_here: Set[str] = set()
    for name, span in _iter_attr_names_spans(leaf.dataspace):
        if name not in schema:
            collector.emit(
                "RV106",
                f"leaf {leaf.name!r} stores {name!r}, which is not an "
                f"attribute of schema {schema.name!r}",
                span=span,
                fix=f"declare {name} in the schema or remove it from the "
                "DATASPACE",
            )
        if name in seen_here:
            collector.emit(
                "RV107",
                f"leaf {leaf.name!r} stores attribute {name!r} twice",
                span=span,
            )
        seen_here.add(name)
        if name in attr_owner:
            owner, _ = attr_owner[name]
            if owner != leaf.name:
                collector.emit(
                    "RV108",
                    f"attribute {name!r} is stored by both {owner!r} "
                    f"and {leaf.name!r}; each attribute must live in one leaf",
                    span=span,
                )
        else:
            attr_owner[name] = (leaf.name, span)

    _lint_loops(leaf, binding_vars, collector)

    patterns_ok = True
    for pattern in leaf.data.patterns:
        unbound = pattern.free_vars() - binding_vars
        if unbound:
            patterns_ok = False
            collector.emit(
                "RV113",
                f"file pattern {pattern} in leaf {leaf.name!r} uses unbound "
                f"variables {sorted(unbound)}",
                span=pattern.span,
                fix="bind the variables in the DATA clause "
                "(VAR = lo:hi:stride)",
            )

    # The historical validator hits bad binding ranges while advancing
    # binding_env_iter() during the DIR check; surface the same message at
    # the same position, then skip enumeration for this leaf.
    bindings_ok = _lint_binding_ranges(leaf, collector)
    if not bindings_ok or not patterns_ok:
        return

    valid_dirs = {e.index for e in descriptor.storage.dirs}
    reported: Set[Tuple[int, str]] = set()
    for env in leaf.data.binding_env_iter():
        for pat_index, pattern in enumerate(leaf.data.patterns):
            try:
                dir_index, relpath = pattern.expand(env)
            except MetadataEvaluationError as exc:
                if (pat_index, "eval") not in reported:
                    reported.add((pat_index, "eval"))
                    collector.emit("RV121", str(exc), span=pattern.span)
                continue
            except MetadataValidationError as exc:
                if (pat_index, "expand") not in reported:
                    reported.add((pat_index, "expand"))
                    collector.emit("RV113", str(exc), span=pattern.span)
                continue
            if dir_index not in valid_dirs:
                if (pat_index, "dir") not in reported:
                    reported.add((pat_index, "dir"))
                    collector.emit(
                        "RV114",
                        f"pattern {pattern} in leaf {leaf.name!r} evaluates to "
                        f"DIR[{dir_index}] under {env}, but the storage section "
                        f"only declares indices {sorted(valid_dirs)}",
                        span=pattern.span,
                        fix=f"declare DIR[{dir_index}] in the storage section "
                        "or adjust the pattern's directory expression",
                    )
            if not relpath or relpath.startswith("/"):
                if (pat_index, "path") not in reported:
                    reported.add((pat_index, "path"))
                    collector.emit(
                        "RV115",
                        f"pattern {pattern} expands to invalid path {relpath!r}",
                        span=pattern.span,
                    )


def _lint_bindings_unique(leaf: DatasetNode, collector: Collector) -> None:
    seen: Set[str] = set()
    for binding in leaf.data.bindings:
        if binding.var in seen:
            collector.emit(
                "RV109",
                f"leaf {leaf.name!r} binds variable {binding.var!r} twice",
                span=binding.span,
            )
        seen.add(binding.var)


def _lint_loops(
    leaf: DatasetNode, binding_vars: Set[str], collector: Collector
) -> None:
    def recurse(items, path_vars: List[str]) -> None:
        for item in items:
            if isinstance(item, AttrGroup):
                continue
            assert isinstance(item, LoopNode)
            if item.var in path_vars:
                collector.emit(
                    "RV110",
                    f"leaf {leaf.name!r}: LOOP variable {item.var!r} shadows "
                    "an enclosing loop with the same name",
                    span=item.span,
                    fix="rename the inner loop variable",
                )
            if item.var in binding_vars:
                collector.emit(
                    "RV111",
                    f"leaf {leaf.name!r}: LOOP variable {item.var!r} collides "
                    "with a DATA binding variable",
                    span=item.span,
                )
            bad = item.range.free_vars() - binding_vars
            if bad:
                collector.emit(
                    "RV112",
                    f"leaf {leaf.name!r}: bounds of LOOP {item.var} use "
                    f"{sorted(bad)}; only DATA binding variables may appear "
                    "in loop bounds (chunk sizes must be per-file constants)",
                    span=item.range.span or item.span,
                )
            recurse(item.body, path_vars + [item.var])

    recurse(leaf.dataspace, [])


def _lint_binding_ranges(leaf: DatasetNode, collector: Collector) -> bool:
    """Check every binding range evaluates; mirror evaluator messages."""
    ok = True
    for binding in leaf.data.bindings:
        span = binding.range.span or binding.span
        try:
            binding.range.evaluate({})
        except MetadataEvaluationError as exc:
            ok = False
            collector.emit("RV121", str(exc), span=exc.span or span)
        except MetadataValidationError as exc:
            ok = False
            code = "RV120" if "stride" in str(exc) else "RV119"
            collector.emit(code, str(exc), span=span)
    return ok


def _lint_schema_coverage(
    descriptor: "Descriptor", leaves: List[DatasetNode], collector: Collector
) -> None:
    stored: Set[str] = set()
    implicit: Set[str] = set()
    for leaf in leaves:
        stored.update(iter_attr_names(leaf.dataspace))
        implicit.update(iter_loop_vars(leaf.dataspace))
        implicit.update(b.var for b in leaf.data.bindings)
    for attr in descriptor.schema:
        if attr.name in stored:
            continue
        if attr.name in implicit:
            if not attr.type.is_integer:
                collector.emit(
                    "RV117",
                    f"attribute {attr.name!r} is implicit (a loop or binding "
                    f"variable) and must have an integer type, not "
                    f"{attr.type.name!r}",
                    span=attr.span,
                    fix=f"change {attr.name}'s type to an integer type or "
                    "store it explicitly in a DATASPACE",
                )
            continue
        collector.emit(
            "RV116",
            f"schema attribute {attr.name!r} is neither stored in any leaf "
            "nor supplied implicitly by a loop or binding variable",
            span=attr.span,
            fix=f"add {attr.name} to a DATASPACE group or name a loop/"
            "binding variable after it",
        )


def _lint_index_attrs(descriptor: "Descriptor", collector: Collector) -> None:
    for node in descriptor.layout.walk():
        for i, attr in enumerate(node.index_attrs):
            if attr not in descriptor.schema:
                span = None
                if i < len(node.index_attr_spans):
                    span = node.index_attr_spans[i]
                collector.emit(
                    "RV118",
                    f"DATAINDEX attribute {attr!r} in dataset {node.name!r} "
                    f"is not in schema {descriptor.schema.name!r}",
                    span=span or node.span,
                )


# ---------------------------------------------------------------------------
# Extended analyzers
# ---------------------------------------------------------------------------


def _iter_attr_names_spans(items) -> Iterator[Tuple[str, Optional[Span]]]:
    """Like :func:`iter_attr_names` but paired with per-name spans."""
    for item in items:
        if isinstance(item, AttrGroup):
            for i, name in enumerate(item.names):
                yield name, item.name_span(i)
        else:
            yield from _iter_attr_names_spans(item.body)


def _iter_loops(items) -> Iterator[LoopNode]:
    for item in items:
        if isinstance(item, LoopNode):
            yield item
            yield from _iter_loops(item.body)


def _const_range(rng: RangeExpr) -> Optional[Tuple[int, int, int]]:
    """(lo, hi, stride) when all three bounds are variable-free and
    evaluate cleanly; None otherwise (deferred to runtime checks)."""
    if rng.free_vars():
        return None
    try:
        lo = rng.lo.evaluate({})
        hi = rng.hi.evaluate({})
        stride = rng.stride.evaluate({})
    except MetadataError:
        return None
    return lo, hi, stride


def _lint_loop_ranges(leaves: List[DatasetNode], collector: Collector) -> None:
    """RV119/RV120/RV121 for constant LOOP bounds.

    The historical validator never evaluated loop bounds — a descriptor
    with ``LOOP T 5:1:1`` loaded fine and only failed when strips were
    enumerated.  The linter proves these at check time.
    """
    for leaf in leaves:
        for loop in _iter_loops(leaf.dataspace):
            rng = loop.range
            if rng.free_vars():
                continue
            span = rng.span or loop.span
            try:
                lo = rng.lo.evaluate({})
                hi = rng.hi.evaluate({})
                stride = rng.stride.evaluate({})
            except MetadataEvaluationError as exc:
                collector.emit("RV121", str(exc), span=exc.span or span)
                continue
            if stride <= 0:
                collector.emit(
                    "RV120",
                    f"LOOP {loop.var} in leaf {leaf.name!r} has non-positive "
                    f"stride {stride} in range {rng}",
                    span=span,
                    fix="use a positive stride (ranges are lo:hi:stride)",
                )
                continue
            if hi < lo:
                collector.emit(
                    "RV119",
                    f"LOOP {loop.var} in leaf {leaf.name!r} has provably "
                    f"empty range {lo}:{hi}:{stride}",
                    span=span,
                    fix="swap the bounds or widen the range",
                )
                continue
            if stride > 1 and (hi - lo) % stride != 0:
                last = lo + ((hi - lo) // stride) * stride
                collector.emit(
                    "RV125",
                    f"LOOP {loop.var} stride {stride} never reaches upper "
                    f"bound {hi} (last iteration value is {last})",
                    span=span,
                )


def _lint_unused_bindings(
    descriptor: "Descriptor", leaves: List[DatasetNode], collector: Collector
) -> None:
    """RV122: a DATA binding variable nothing ever reads.

    A binding is *used* when a file pattern or a loop bound references it,
    or when it names a schema attribute (then it supplies that column
    implicitly).  An unused binding silently multiplies the file set.
    """
    for leaf in leaves:
        used: Set[str] = set()
        for pattern in leaf.data.patterns:
            used |= pattern.free_vars()
        for loop in _iter_loops(leaf.dataspace):
            used |= loop.range.free_vars()
        for binding in leaf.data.bindings:
            if binding.var in used or binding.var in descriptor.schema:
                continue
            collector.emit(
                "RV122",
                f"binding variable {binding.var!r} in leaf {leaf.name!r} is "
                "never used by a file pattern, loop bound, or schema "
                "attribute",
                span=binding.span,
                fix="remove the binding or reference it in a pattern",
            )


def _lint_duplicate_files(
    leaves: List[DatasetNode], collector: Collector
) -> None:
    """RV123: two enumerations produce the same physical file."""
    owners: Dict[Tuple[int, str], Tuple[str, Optional[Span]]] = {}
    reported: Set[Tuple[int, str]] = set()
    for leaf in leaves:
        try:
            envs = list(leaf.data.binding_env_iter())
        except MetadataError:
            continue  # bad bindings already reported
        for env in envs:
            for pattern in leaf.data.patterns:
                try:
                    key = pattern.expand(env)
                except MetadataError:
                    continue
                if key in owners and key not in reported:
                    reported.add(key)
                    other_leaf, other_span = owners[key]
                    where = (
                        "twice"
                        if other_leaf == leaf.name
                        else f"by both {other_leaf!r} and {leaf.name!r}"
                    )
                    collector.emit(
                        "RV123",
                        f"file DIR[{key[0]}]/{key[1]} is bound {where}; "
                        "each file must belong to exactly one enumeration",
                        span=pattern.span or other_span,
                    )
                else:
                    owners.setdefault(key, (leaf.name, pattern.span))


def _lint_implicit_widths(
    descriptor: "Descriptor", leaves: List[DatasetNode], collector: Collector
) -> None:
    """RV124: an implicit attribute's declared type cannot hold every
    value its loop/binding range produces (silent wraparound on extract)."""
    stored = set()
    for leaf in leaves:
        stored.update(iter_attr_names(leaf.dataspace))
    # Attainable constant hull per implicit variable name.
    hulls: Dict[str, Tuple[int, int]] = {}

    def widen(name: str, lo: int, hi: int) -> None:
        if name in hulls:
            old_lo, old_hi = hulls[name]
            hulls[name] = (min(old_lo, lo), max(old_hi, hi))
        else:
            hulls[name] = (lo, hi)

    for leaf in leaves:
        for binding in leaf.data.bindings:
            const = _const_range(binding.range)
            if const and const[2] > 0 and const[1] >= const[0]:
                widen(binding.var, const[0], const[1])
        for loop in _iter_loops(leaf.dataspace):
            const = _const_range(loop.range)
            if const and const[2] > 0 and const[1] >= const[0]:
                widen(loop.var, const[0], const[1])

    for attr in descriptor.schema:
        if attr.name in stored or attr.name not in hulls:
            continue
        if not attr.type.is_integer:
            continue  # RV117 already covers non-integer implicit attrs
        bits = attr.type.size * 8
        if attr.type.kind == "u":
            type_lo, type_hi = 0, (1 << bits) - 1
        else:
            type_lo, type_hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        lo, hi = hulls[attr.name]
        if lo < type_lo or hi > type_hi:
            collector.emit(
                "RV124",
                f"implicit attribute {attr.name!r} ranges over [{lo}, {hi}] "
                f"but its type {attr.type.name!r} only holds "
                f"[{type_lo}, {type_hi}]",
                span=attr.span,
                fix=f"widen {attr.name}'s type (e.g. to 'int' or 'long int')",
            )


def _lint_dir_usage(
    descriptor: "Descriptor", leaves: List[DatasetNode], collector: Collector
) -> None:
    """RV127: storage DIR entries no file pattern ever resolves to."""
    used: Set[int] = set()
    for leaf in leaves:
        try:
            envs = list(leaf.data.binding_env_iter())
        except MetadataError:
            return  # enumeration unreliable; skip the whole analyzer
        for env in envs:
            for pattern in leaf.data.patterns:
                try:
                    dir_index, _ = pattern.expand(env)
                except MetadataError:
                    return
                used.add(dir_index)
    if not used:
        return
    for entry in descriptor.storage.dirs:
        if entry.index not in used:
            collector.emit(
                "RV127",
                f"storage DIR[{entry.index}] ({entry.spec}) is never "
                "referenced by any file pattern",
                span=entry.span,
                fix="remove the entry or extend the pattern enumeration",
            )


def _lint_index_presence(
    descriptor: "Descriptor", collector: Collector
) -> None:
    """RV126: no DATAINDEX anywhere — every query scans every chunk."""
    for node in descriptor.layout.walk():
        if node.index_attrs:
            return
    collector.emit(
        "RV126",
        f"dataset {descriptor.name!r} declares no DATAINDEX; queries "
        "cannot prune chunks and will scan every file",
        span=descriptor.layout.span,
        fix="add a DATAINDEX clause naming the attributes queries filter on",
    )
