"""Execution-option analysis: the RO3xx diagnostics.

:class:`~repro.core.options.ExecOptions` keeps its constructor
permissive — a frozen dataclass you can build anywhere, including with
values that make no operational sense (``inflight_limit=0`` would
admit no request ever).  The judgement lives here instead, in the same
diagnostic vocabulary as the descriptor and query analyses, so
``ExecOptions(strict=True)`` refuses nonsense configurations at submit
time and ``repro check`` can explain them.
"""

from __future__ import annotations

from typing import List

from .core import Collector, Diagnostic


def analyze_options(options) -> List[Diagnostic]:
    """Findings about one :class:`~repro.core.options.ExecOptions`.

    The default options produce no findings; every RO3xx error marks a
    configuration that cannot execute sensibly (a query would hang,
    never be admitted, or retry forever), warnings mark knob
    combinations that silently do nothing.
    """
    out = Collector(source="options")
    if options.inflight_limit < 1:
        out.emit(
            "RO300",
            f"inflight_limit={options.inflight_limit} admits no request; "
            "it must be >= 1",
            fix="set inflight_limit to a positive request budget",
        )
    if options.max_connections_per_node < 1:
        out.emit(
            "RO301",
            f"max_connections_per_node={options.max_connections_per_node} "
            "leaves the per-node pool empty; it must be >= 1",
            fix="set max_connections_per_node to a positive pool size",
        )
    if options.connect_timeout is not None and options.connect_timeout <= 0:
        out.emit(
            "RO302",
            f"connect_timeout={options.connect_timeout} fails every dial "
            "immediately; it must be > 0",
            fix="set connect_timeout to a positive number of seconds",
        )
    if options.retry_backoff > 0 and options.retries == 0:
        out.emit(
            "RO303",
            f"retry_backoff={options.retry_backoff} has no effect with "
            "retries=0 (no retry ever sleeps)",
            fix="set retries >= 1 or drop retry_backoff",
        )
    if options.retries < 0:
        out.emit(
            "RO304",
            f"retries={options.retries} is negative; use 0 for "
            "no retries",
            fix="set retries to 0 or more",
        )
    if options.batch_rows < 1:
        out.emit(
            "RO305",
            f"batch_rows={options.batch_rows} can never emit a batch; "
            "it must be >= 1",
            fix="set batch_rows to a positive row count",
        )
    if (
        options.inflight_limit >= 1
        and options.max_connections_per_node >= 1
        and options.inflight_limit < options.max_connections_per_node
    ):
        out.emit(
            "RO306",
            f"inflight_limit={options.inflight_limit} is below "
            f"max_connections_per_node={options.max_connections_per_node}; "
            "the extra pooled connections can never be used",
            fix="raise inflight_limit or shrink the per-node pool",
        )
    if options.node_timeout is not None and options.node_timeout <= 0:
        out.emit(
            "RO307",
            f"node_timeout={options.node_timeout} abandons every attempt "
            "instantly; use None for no timeout",
            fix="set node_timeout to a positive number of seconds or None",
        )
    if not options.agg_pushdown:
        out.emit(
            "RO308",
            "agg_pushdown=False aggregates at the coordinator: every "
            "filtered base row crosses the wire instead of per-node "
            "partial aggregates (ablation/debugging mode)",
            fix="leave agg_pushdown at its default of True",
        )
    if options.vectorize == "off":
        out.emit(
            "RO314",
            "vectorize='off' evaluates the WHERE through the interpreted "
            "AST walker on every block instead of the compiled batch "
            "kernel (ablation/debugging mode; results are identical, "
            "only slower)",
            fix="leave vectorize at its default of 'on'",
        )
    if options.scheduler_workers < 0:
        out.emit(
            "RO309",
            f"scheduler_workers={options.scheduler_workers} is negative; "
            "use 0 for automatic sizing",
            fix="set scheduler_workers to 0 (auto) or a positive count",
        )
    if options.admission_budget is not None and options.admission_budget <= 0:
        out.emit(
            "RO310",
            f"admission_budget={options.admission_budget} admits no query "
            "ever (every plan costs more than nothing); use None to "
            "disable admission control",
            fix="set admission_budget to a positive number of simulated "
            "seconds or None",
        )
    for name, quota in (
        ("row_quota", options.row_quota),
        ("byte_quota", options.byte_quota),
    ):
        if quota is not None and quota <= 0:
            out.emit(
                "RO311",
                f"{name}={quota} trips on the first partial produced; "
                "use None for no quota",
                fix=f"set {name} to a positive budget or None",
            )
    if options.deadline is not None and options.deadline <= 0:
        out.emit(
            "RO312",
            f"deadline={options.deadline} cancels the query before it "
            "starts; use None for no deadline",
            fix="set deadline to a positive number of seconds or None",
        )
    if options.scheduler == "off" and (
        options.tenant != "default"
        or options.priority != 0
        or options.admission_budget is not None
    ):
        out.emit(
            "RO313",
            "scheduler='off' bypasses the scheduler: tenant, priority, "
            "and admission_budget have no effect on this query",
            fix="drop the scheduling knobs or use scheduler='fair'",
        )
    return list(out)
