"""Static analysis of queries against a descriptor.

:func:`analyze_query` checks a ``SELECT`` statement against a loaded
descriptor *before* execution, reusing the interval algebra of
:mod:`repro.sql.ranges` to prove facts the runtime would only discover
after scanning: a WHERE clause that cannot match any row, a predicate
that contradicts the dataspace bounds declared in the descriptor, or a
filter shape that defeats index pruning entirely.

Spans point into the SQL text.  The query AST is slotted and span-free
(it is also built programmatically, where no source exists), so spans
are recovered by locating the offending token in the original text —
approximate, but good enough to carry line/column into editors.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Set, Tuple, Union

from ..errors import QueryError, QuerySyntaxError
from ..metadata.spans import Span
from ..sql.ast import (
    Aggregate,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    Node,
    Query,
)
from ..sql.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..sql.parser import parse_query
from ..sql.ranges import (
    IntervalSet,
    _FALSE_KEY,
    extract_ranges,
)
from ..sql.rewrite import rewrite_query
from ..sql.typecheck import typecheck_query
from .core import Collector
from .linter import _const_range, _iter_loops

if TYPE_CHECKING:  # pragma: no cover
    from ..metadata.descriptor import Descriptor


def analyze_query(
    descriptor: "Descriptor",
    sql: Union[Query, str],
    functions: Optional[FunctionRegistry] = None,
    collector: Optional[Collector] = None,
    explain: bool = False,
) -> Collector:
    """Run every query analyzer; never raises on findings.

    Analyzers run over the query as written (span fidelity), then the
    equivalence-preserving rewrite pass normalizes it: a canonical form
    that folds to FALSE is reported as RQ207 even when the contradiction
    is invisible to plain interval extraction (e.g. it involves function
    operands).  With ``explain=True``, every applied rewrite is emitted
    as an informational ``RW4xx`` diagnostic — the audit trail behind
    ``repro check --explain``.
    """
    if collector is None:
        collector = Collector(source="query")
    if functions is None:
        functions = DEFAULT_REGISTRY
    text = sql if isinstance(sql, str) else str(sql)
    if isinstance(sql, str):
        try:
            query = parse_query(sql)
        except QuerySyntaxError as exc:
            span = None
            line = getattr(exc, "line", 0)
            if line:
                span = Span(line, getattr(exc, "column", 0) or 1)
            collector.emit("RQ200", str(exc), span=span)
            return collector
        except QueryError as exc:
            collector.emit("RQ200", str(exc))
            return collector
    else:
        query = sql

    _check_table(descriptor, query, text, collector)
    _check_select(descriptor, query, text, collector)
    _check_grouping(descriptor, query, text, collector)
    _check_where_columns(descriptor, query, text, collector)
    _check_functions(query, functions, text, collector)
    _check_literal_types(descriptor, query, text, collector)
    _check_satisfiability(descriptor, query, text, collector)
    _check_index_pruning(descriptor, query, text, collector)
    typecheck_query(
        descriptor,
        query,
        functions,
        collector,
        span_of=lambda token: _sql_span(text, token),
    )

    canonical, steps = rewrite_query(query)
    if (
        isinstance(canonical.where, BoolLiteral)
        and not canonical.where.value
        and "RQ207" not in collector.codes()
    ):
        collector.emit(
            "RQ207",
            "WHERE clause is provably false (the rewrite pass reduced it "
            "to FALSE); the query selects no rows",
            span=None,
        )
    if explain:
        for step in steps:
            collector.emit(step.code, step.detail)
    return collector


# ---------------------------------------------------------------------------
# Span recovery
# ---------------------------------------------------------------------------


def _sql_span(text: str, token: str, occurrence: int = 0) -> Optional[Span]:
    """Approximate span of ``token`` in the SQL text (word-boundary match)."""
    if not token:
        return None
    pattern = re.compile(rf"\b{re.escape(token)}\b", re.IGNORECASE)
    for i, match in enumerate(pattern.finditer(text)):
        if i == occurrence:
            before = text[: match.start()]
            line = before.count("\n") + 1
            column = match.start() - (before.rfind("\n") + 1) + 1
            return Span(
                line, column, line, column + (match.end() - match.start())
            )
    return None


# ---------------------------------------------------------------------------
# AST walking
# ---------------------------------------------------------------------------


def _walk(node: Optional[Node]) -> Iterator[Node]:
    if node is None:
        return
    yield node
    for attr in ("terms", "args"):
        children = getattr(node, attr, None)
        if children is not None:
            for child in children:
                yield from _walk(child)
    for attr in ("term", "left", "right", "operand"):
        child = getattr(node, attr, None)
        if isinstance(child, Node):
            yield from _walk(child)


# ---------------------------------------------------------------------------
# Analyzers
# ---------------------------------------------------------------------------


def _check_table(
    descriptor: "Descriptor", query: Query, text: str, collector: Collector
) -> None:
    if query.table.upper() != descriptor.name.upper():
        collector.emit(
            "RQ201",
            f"query targets table {query.table!r} but the descriptor "
            f"declares dataset {descriptor.name!r}",
            span=_sql_span(text, query.table),
            fix=f"change FROM {query.table} to FROM {descriptor.name}",
        )


def _check_select(
    descriptor: "Descriptor", query: Query, text: str, collector: Collector
) -> None:
    if query.select is None:
        return
    seen: Set[str] = set()
    for item in query.select:
        if isinstance(item, Aggregate):
            label = item.label
            if (
                item.column is not None
                and item.column not in descriptor.schema
            ):
                collector.emit(
                    "RQ213",
                    f"{item.label} aggregates unknown attribute "
                    f"{item.column!r}; schema {descriptor.schema.name!r} "
                    f"has {list(descriptor.schema.names)}",
                    span=_sql_span(text, item.column),
                )
        else:
            label = item
            if item not in descriptor.schema:
                collector.emit(
                    "RQ202",
                    f"SELECT references unknown attribute {item!r}; schema "
                    f"{descriptor.schema.name!r} has "
                    f"{list(descriptor.schema.names)}",
                    span=_sql_span(text, item),
                )
        if label in seen:
            collector.emit(
                "RQ210",
                f"SELECT lists {label} more than once",
                span=_sql_span(
                    text, label if not isinstance(item, Aggregate)
                    else (item.column or item.func), occurrence=1,
                ),
                fix=f"drop the repeated {label}",
            )
        seen.add(label)


def _check_grouping(
    descriptor: "Descriptor", query: Query, text: str, collector: Collector
) -> None:
    """RQ211/RQ212/RQ214: the SQL grouping rules, checked statically
    (execution raises the same conditions as QueryValidationError)."""
    if not query.is_aggregate:
        return
    group_by = list(query.group_by or [])
    for name in group_by:
        if name not in descriptor.schema:
            collector.emit(
                "RQ212",
                f"GROUP BY references unknown attribute {name!r}; schema "
                f"{descriptor.schema.name!r} has {list(descriptor.schema.names)}",
                span=_sql_span(text, name),
            )
    for name in query.bare_select_names():
        if name not in group_by:
            collector.emit(
                "RQ211",
                f"bare attribute {name!r} in an aggregate SELECT must "
                "appear in GROUP BY; its value is ambiguous within a group",
                span=_sql_span(text, name),
                fix=f"add {name} to GROUP BY or wrap it in an aggregate",
            )
    if query.group_by is not None and not query.aggregates():
        collector.emit(
            "RQ214",
            "GROUP BY without aggregate functions returns the distinct "
            "group-key rows (DISTINCT semantics)",
            span=None,
        )


def _check_where_columns(
    descriptor: "Descriptor", query: Query, text: str, collector: Collector
) -> None:
    for name in query.referenced_columns():
        if name not in descriptor.schema:
            collector.emit(
                "RQ203",
                f"WHERE references unknown attribute {name!r}; schema "
                f"{descriptor.schema.name!r} has {list(descriptor.schema.names)}",
                span=_sql_span(text, name),
            )


def _check_functions(
    query: Query, functions: FunctionRegistry, text: str, collector: Collector
) -> None:
    for node in _walk(query.where):
        if not isinstance(node, FunctionCall):
            continue
        if node.name not in functions:
            collector.emit(
                "RQ204",
                f"filter function {node.name!r} is not registered; known "
                f"functions: {sorted(functions.names())}",
                span=_sql_span(text, node.name),
                fix="register it with FunctionRegistry.register "
                "before submitting the query",
            )
            continue
        minimum, maximum = functions.arity(node.name)
        got = len(node.args)
        if got < minimum or (maximum is not None and got > maximum):
            if maximum is None:
                expected = f"at least {minimum}"
            elif minimum == maximum:
                expected = str(minimum)
            else:
                expected = f"{minimum} to {maximum}"
            collector.emit(
                "RQ205",
                f"filter function {node.name!r} takes {expected} "
                f"argument(s) but the query passes {got}",
                span=_sql_span(text, node.name),
            )


def _check_literal_types(
    descriptor: "Descriptor", query: Query, text: str, collector: Collector
) -> None:
    """RQ206: a string literal compared against a numeric column (or the
    reverse) can never be a meaningful match in this storage model."""

    def check_pair(column: Node, value: object, op_desc: str) -> None:
        if not isinstance(column, Column) or column.name not in descriptor.schema:
            return
        attr = descriptor.schema.attribute(column.name)
        if attr.type.is_numeric and isinstance(value, str):
            collector.emit(
                "RQ206",
                f"attribute {column.name!r} has numeric type "
                f"{attr.type.name!r} but is {op_desc} string literal "
                f"{value!r}",
                span=_sql_span(text, column.name),
            )

    for node in _walk(query.where):
        if isinstance(node, Comparison):
            if isinstance(node.right, Literal):
                check_pair(node.left, node.right.value, "compared against")
            if isinstance(node.left, Literal):
                check_pair(node.right, node.left.value, "compared against")
        elif isinstance(node, Between):
            check_pair(node.operand, node.lo, "bounded below by")
            check_pair(node.operand, node.hi, "bounded above by")
        elif isinstance(node, InList):
            for value in node.values:
                check_pair(node.operand, value, "matched against")


def _declared_bounds(descriptor: "Descriptor") -> Dict[str, Tuple[int, int]]:
    """Constant [lo, hi] hulls the descriptor declares per implicit
    attribute (loop or binding variables that name schema attributes)."""
    stored: Set[str] = set()
    bounds: Dict[str, Tuple[int, int]] = {}

    def widen(name: str, lo: int, hi: int) -> None:
        if name in bounds:
            old_lo, old_hi = bounds[name]
            bounds[name] = (min(old_lo, lo), max(old_hi, hi))
        else:
            bounds[name] = (lo, hi)

    for leaf in descriptor.leaves():
        from ..metadata.layout import iter_attr_names

        stored.update(iter_attr_names(leaf.dataspace))
        for binding in leaf.data.bindings:
            const = _const_range(binding.range)
            if const and const[2] > 0 and const[1] >= const[0]:
                widen(binding.var, const[0], const[1])
        for loop in _iter_loops(leaf.dataspace):
            const = _const_range(loop.range)
            if const and const[2] > 0 and const[1] >= const[0]:
                widen(loop.var, const[0], const[1])
    return {
        name: hull
        for name, hull in bounds.items()
        if name in descriptor.schema and name not in stored
    }


def _check_satisfiability(
    descriptor: "Descriptor", query: Query, text: str, collector: Collector
) -> None:
    """RQ207 (self-contradictory WHERE) and RQ208 (contradicts the
    descriptor's declared dataspace bounds)."""
    try:
        ranges = extract_ranges(query.where)
    except QueryError:
        return
    for name, interval_set in ranges.items():
        if not interval_set.is_empty():
            continue
        if name == _FALSE_KEY:
            collector.emit(
                "RQ207",
                "WHERE clause is provably false; the query selects no rows",
                span=None,
            )
        else:
            collector.emit(
                "RQ207",
                f"WHERE constraints on {name!r} are contradictory "
                "(empty interval set); the query selects no rows",
                span=_sql_span(text, name),
            )
        return

    for name, (lo, hi) in _declared_bounds(descriptor).items():
        interval_set = ranges.get(name)
        if interval_set is None or interval_set.is_full():
            continue
        declared = IntervalSet.of(lo, hi)
        if declared.intersect(interval_set).is_empty():
            collector.emit(
                "RQ208",
                f"predicate restricts {name!r} to {interval_set}, but the "
                f"descriptor only produces values in [{lo}, {hi}]; the "
                "query selects no rows",
                span=_sql_span(text, name),
            )


def _check_index_pruning(
    descriptor: "Descriptor", query: Query, text: str, collector: Collector
) -> None:
    """RQ209: the WHERE clause mentions a DATAINDEX attribute but no
    range can be derived for it, so the predicate cannot prune chunks."""
    if query.where is None:
        return
    index_attrs = set(descriptor.index_attrs)
    if not index_attrs:
        return
    try:
        ranges = extract_ranges(query.where)
    except QueryError:
        return
    referenced = set(query.referenced_columns())
    for name in sorted(index_attrs & referenced):
        interval_set = ranges.get(name)
        if interval_set is None or interval_set.is_full():
            collector.emit(
                "RQ209",
                f"WHERE mentions DATAINDEX attribute {name!r} but no range "
                "can be derived from the predicate shape (e.g. it only "
                "appears inside a function call, a column-to-column "
                "comparison, or an OR with an unconstrained branch); index "
                "pruning is defeated and every chunk will be scanned",
                span=_sql_span(text, name),
                fix=f"add a direct range condition on {name} "
                "(AND-ed with the rest of the predicate)",
            )


__all__ = ["analyze_query"]
