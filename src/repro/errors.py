"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  Parsing errors carry source positions so
diagnostics can point at the offending token in a descriptor or query.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class MetadataError(ReproError):
    """Base class for errors in meta-data descriptors."""


class MetadataSyntaxError(MetadataError):
    """A descriptor failed to lex or parse.

    Parameters
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based source position of the offending token, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class MetadataValidationError(MetadataError):
    """A descriptor parsed but is semantically inconsistent.

    Examples: a layout references an undefined schema, a loop bound uses an
    unbound variable, a DATA clause enumerates zero files.
    """


class MetadataEvaluationError(MetadataValidationError):
    """Evaluating a descriptor expression failed at runtime.

    Raised when a LOOP-bound or file-enumeration expression divides by
    zero (or otherwise cannot produce a value) while being evaluated
    against concrete binding values.  Subclasses
    :class:`MetadataValidationError` so existing ``except`` clauses keep
    working; additionally carries the source ``span`` of the offending
    range expression when the descriptor was parsed from text.
    """

    def __init__(self, message: str, span=None):
        #: :class:`repro.metadata.spans.Span` of the expression, or None.
        self.span = span
        #: The message without the position prefix (diagnostics re-wrap it).
        self.bare_message = message
        if span is not None:
            message = f"line {span.line}, col {span.column}: {message}"
        super().__init__(message)


class SchemaError(MetadataError):
    """A schema is malformed (duplicate attribute, unknown type name...)."""


class QueryError(ReproError):
    """Base class for errors in SQL queries."""


class QuerySyntaxError(QueryError):
    """A query failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class QueryValidationError(QueryError):
    """A query parsed but does not match the schema it targets.

    Examples: unknown attribute in SELECT list, filter function not
    registered, type mismatch in a comparison.
    """


class PlanningError(ReproError):
    """The planner could not derive aligned file chunks for a query."""


class ExtractionError(ReproError):
    """Reading bytes for an aligned file chunk failed."""


class CodegenError(ReproError):
    """Generating or loading compiled index/extractor code failed."""


class InjectedFault(ExtractionError):
    """An artificial failure produced by the fault-injection harness.

    Subclasses :class:`ExtractionError` so the runtime's retry machinery
    treats injected faults exactly like real I/O failures — chaos tests
    exercise the same recovery paths production errors would.
    """


class StormError(ReproError):
    """Base class for errors in the STORM runtime services."""


class ClusterError(StormError):
    """A virtual cluster operation failed (unknown node, missing dir...)."""


class NodeTimeoutError(StormError):
    """One node's extraction exceeded ``ExecOptions.node_timeout``.

    Raised per attempt and retryable; if every attempt times out the
    query surfaces a :class:`NodeFailureError` instead.
    """

    def __init__(self, node: str, timeout: float):
        self.node = node
        self.timeout = timeout
        super().__init__(
            f"node {node!r} did not answer within {timeout:g}s"
        )


class NodeFailureError(StormError):
    """A node kept failing after every configured retry.

    Carries the failing ``node``, the number of ``attempts`` made, and the
    last underlying ``cause``.  Raised by ``QueryService.submit`` when
    ``ExecOptions.allow_partial`` is False; with ``allow_partial=True``
    the query instead returns a degraded result that lists the node.
    """

    def __init__(self, node: str, attempts: int, cause: "Optional[Exception]" = None):
        self.node = node
        self.attempts = attempts
        self.cause = cause
        message = f"node {node!r} failed after {attempts} attempt(s)"
        if cause is not None:
            message += f": {type(cause).__name__}: {cause}"
        super().__init__(message)


class FaultSpecError(StormError):
    """A fault rule or chaos profile specification is invalid."""


class TransportError(StormError):
    """The node wire protocol itself failed (handshake mismatch, bad
    frame, wrong dataset).  NOT retryable: a peer speaking the wrong
    protocol will not start speaking the right one on attempt two.
    """


class NodeConnectionError(ExtractionError):
    """A network operation against a data-source node failed.

    Covers refused/timed-out dials, connections reset mid-response, and
    truncated frames.  Subclasses :class:`ExtractionError` so the query
    service's retry machinery treats a flaky network exactly like a
    flaky disk: retried per ``ExecOptions.retries``, degradable under
    ``allow_partial``.
    """

    def __init__(self, node: str, cause: "Optional[BaseException]" = None):
        self.node = node
        self.cause = cause
        message = f"connection to node {node!r} failed"
        if cause is not None:
            message += f": {type(cause).__name__}: {cause}"
        super().__init__(message)


class RemoteError(StormError):
    """A node server reported a failure that is not a known I/O error.

    Carries the remote exception's type name and message.  Programming
    errors (planning bugs, bad plans) must propagate un-retried, exactly
    as they would in-process.
    """

    def __init__(self, etype: str, message: str, node: str = ""):
        self.etype = etype
        self.node = node
        prefix = f"node {node!r}: " if node else ""
        super().__init__(f"{prefix}remote {etype}: {message}")


class PartitionError(StormError):
    """Partition generation was asked for an unknown or invalid scheme."""


class SchedulerError(StormError):
    """Base class for errors raised by the workload scheduler.

    Deliberately NOT a subclass of :class:`ExtractionError`: scheduler
    decisions (admission refusals, quota trips, cancellations) are
    verdicts about the query, not transient I/O faults — they are never
    retried and never degraded away under ``allow_partial``.
    """


class AdmissionError(SchedulerError):
    """Admission control refused a query predicted over its cost budget.

    Raised by ``Scheduler.submit`` when ``ExecOptions.admission_budget``
    is set, the cost model predicts more simulated seconds than the
    budget, and ``ExecOptions.admission == "reject"`` (with
    ``"queue"`` the query is queued on the backfill lane instead).
    """

    def __init__(self, predicted_seconds: float, budget_seconds: float,
                 sql: str = ""):
        self.predicted_seconds = predicted_seconds
        self.budget_seconds = budget_seconds
        self.sql = sql
        suffix = f" for {sql[:120]!r}" if sql else ""
        super().__init__(
            f"admission refused: predicted {predicted_seconds:.3f}s exceeds "
            f"budget {budget_seconds:g}s{suffix}"
        )


class QueryCancelledError(SchedulerError):
    """A query was cancelled before it produced a result.

    ``reason`` distinguishes explicit ``handle.cancel()`` calls
    (``"cancelled"``) from deadline-based auto-cancel (``"deadline"``)
    and scheduler shutdown (``"scheduler closed"``).
    """

    def __init__(self, reason: str = "cancelled"):
        self.reason = reason
        super().__init__(f"query cancelled ({reason})")


class QuotaExceededError(SchedulerError):
    """A query tripped its cooperative row or byte quota mid-execution.

    Checked at data-source partial boundaries (per AFC locally, per node
    partial over ``tcp://``), so a query may briefly overshoot by at
    most one partial before the trip surfaces.
    """

    def __init__(self, kind: str, used: int, quota: int):
        self.kind = kind
        self.used = used
        self.quota = quota
        super().__init__(
            f"{kind} quota exceeded: {used} > {quota}"
        )


class RowStoreError(ReproError):
    """Base class for errors in the baseline relational row store."""
