"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  Parsing errors carry source positions so
diagnostics can point at the offending token in a descriptor or query.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class MetadataError(ReproError):
    """Base class for errors in meta-data descriptors."""


class MetadataSyntaxError(MetadataError):
    """A descriptor failed to lex or parse.

    Parameters
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based source position of the offending token, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class MetadataValidationError(MetadataError):
    """A descriptor parsed but is semantically inconsistent.

    Examples: a layout references an undefined schema, a loop bound uses an
    unbound variable, a DATA clause enumerates zero files.
    """


class SchemaError(MetadataError):
    """A schema is malformed (duplicate attribute, unknown type name...)."""


class QueryError(ReproError):
    """Base class for errors in SQL queries."""


class QuerySyntaxError(QueryError):
    """A query failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class QueryValidationError(QueryError):
    """A query parsed but does not match the schema it targets.

    Examples: unknown attribute in SELECT list, filter function not
    registered, type mismatch in a comparison.
    """


class PlanningError(ReproError):
    """The planner could not derive aligned file chunks for a query."""


class ExtractionError(ReproError):
    """Reading bytes for an aligned file chunk failed."""


class CodegenError(ReproError):
    """Generating or loading compiled index/extractor code failed."""


class StormError(ReproError):
    """Base class for errors in the STORM runtime services."""


class ClusterError(StormError):
    """A virtual cluster operation failed (unknown node, missing dir...)."""


class PartitionError(StormError):
    """Partition generation was asked for an unknown or invalid scheme."""


class RowStoreError(ReproError):
    """Base class for errors in the baseline relational row store."""
