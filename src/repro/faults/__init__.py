"""Deterministic fault injection for the STORM runtime (``repro.faults``).

The paper's STORM middleware is a distributed service suite; this package
makes the virtual cluster misbehave on purpose — per-node/per-file rules
for failed opens, short reads, stalls, mid-scan disk deaths, and dead
nodes — so the retry/timeout/degraded-execution machinery in
``QueryService`` can be exercised deterministically (fixed rules + seed
replay the same fault sequence).

Typical use::

    from repro.faults import FaultInjector, FaultRule

    injector = FaultInjector([FaultRule("node-down", node="osu1")], seed=7)
    service = QueryService(dataset, cluster, fault_injector=injector)
    result = service.submit(sql, ExecOptions(retries=2, allow_partial=True))
    assert result.degraded and result.failed_nodes == ["osu1"]

See also the ``repro chaos`` CLI command and docs/architecture.md,
"Failure model and degraded execution".
"""

from .injector import FaultInjector, FaultyMount
from .rules import KINDS, PROFILES, FaultRule, parse_rule, profile_rules

__all__ = [
    "FaultInjector",
    "FaultRule",
    "FaultyMount",
    "KINDS",
    "PROFILES",
    "parse_rule",
    "profile_rules",
]
