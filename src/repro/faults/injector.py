"""The fault injector: deterministic, seedable failure injection.

The injector plugs in at the ``Mount`` boundary — :meth:`FaultInjector.
wrap` turns any mount function into a :class:`FaultyMount` that the
extractor recognises — and at the data mover (transfer faults).  All
firing state (per-rule counters, the RNG) lives here, guarded by one
lock, so a fixed ``(rules, seed)`` pair replays the same fault sequence
for the same workload: chaos tests are regular deterministic tests.

Injection points, in the order a chunk read hits them:

1. ``on_mount``     — path resolution; ``node-down`` rules fire here, so a
                      dead node fails before any file is touched.
2. ``on_open``      — called only when the extractor actually opens a file
                      (handle-cache misses); ``raise-on-open`` rules.
3. ``on_read``      — after the real read; ``slow-read`` stalls,
                      ``short-read`` truncates the payload (surfacing
                      through the extractor's real short-read check), and
                      ``fail-after-chunks`` counts successes then raises.
4. ``on_transfer``  — the data mover checks the pseudo-node
                      ``client:<i>`` per delivery; ``node-down`` rules
                      against it model an unreachable destination.

The out-of-process transport (:mod:`repro.net`) adds two socket-level
points:

5. ``on_connect``   — the coordinator consults this before dialing (or
                      reusing a pooled connection to) a node; ``node-
                      down`` rules fire here so a dead node fails before
                      any bytes move.
6. ``on_response``  — a node server consults this before each result
                      frame; ``conn-reset`` rules make it slam the
                      socket shut instead of answering, so the
                      coordinator sees a raw connection reset.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import InjectedFault
from .rules import FaultRule


class FaultInjector:
    """Applies a rule set to extraction and transfer operations."""

    def __init__(
        self,
        rules: Sequence[FaultRule],
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._fired = [0] * len(self.rules)
        self._chunks_seen = [0] * len(self.rules)
        #: Total faults injected so far (all rules).
        self.injected = 0
        #: One dict per injected fault: kind/node/path/op, in firing order.
        self.log: List[Dict[str, str]] = []

    # -- firing state (all called under self._lock) ---------------------------

    def _armed(self, index: int, rule: FaultRule) -> bool:
        """Whether the rule may still fire, consuming a probability roll."""
        if rule.times is not None and self._fired[index] >= rule.times:
            return False
        if rule.probability < 1.0 and self._rng.random() >= rule.probability:
            return False
        return True

    def _fire(self, index: int, rule: FaultRule, node: str, path: str, op: str):
        self._fired[index] += 1
        self.injected += 1
        self.log.append(
            {"kind": rule.kind, "node": node, "path": path, "op": op}
        )

    # -- injection points ------------------------------------------------------

    def on_mount(self, node: str, path: str) -> None:
        """Path resolution: a down node fails every operation here."""
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind != "node-down" or not rule.matches(node, path):
                    continue
                if self._armed(i, rule):
                    self._fire(i, rule, node, path, "mount")
                    raise InjectedFault(
                        f"injected node-down: node {node!r} is unreachable"
                    )

    def on_open(self, node: str, path: str) -> None:
        """An actual file open (handle-cache miss)."""
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind != "raise-on-open" or not rule.matches(node, path):
                    continue
                if self._armed(i, rule):
                    self._fire(i, rule, node, path, "open")
                    raise InjectedFault(
                        f"injected raise-on-open: cannot open {node}:{path}"
                    )

    def on_read(self, node: str, path: str, offset: int, data: bytes) -> bytes:
        """Read post-processing: stall, truncate, or fail the payload."""
        delay = 0.0
        with self._lock:
            for i, rule in enumerate(self.rules):
                if not rule.matches(node, path):
                    continue
                if rule.kind == "fail-after-chunks":
                    if rule.times is not None and self._fired[i] >= rule.times:
                        continue
                    self._chunks_seen[i] += 1
                    if self._chunks_seen[i] > rule.after_chunks and self._armed(
                        i, rule
                    ):
                        self._fire(i, rule, node, path, "read")
                        raise InjectedFault(
                            f"injected fail-after-chunks: {node}:{path} failed "
                            f"after {rule.after_chunks} chunk(s)"
                        )
                elif rule.kind == "slow-read":
                    if self._armed(i, rule):
                        self._fire(i, rule, node, path, "read")
                        delay += rule.delay
                elif rule.kind == "short-read":
                    if self._armed(i, rule):
                        self._fire(i, rule, node, path, "read")
                        data = data[: max(0, len(data) - rule.short_by)]
        if delay:
            # Sleep outside the lock so a stalled node cannot block faults
            # (or reads) on its healthy peers.
            self._sleep(delay)
        return data

    def on_connect(self, node: str) -> None:
        """Coordinator-side: about to dial (or reuse a connection to) a
        node; a down node is unreachable before any request is sent."""
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind != "node-down" or not rule.matches(node, "*"):
                    continue
                if self._armed(i, rule):
                    self._fire(i, rule, node, "*", "connect")
                    raise InjectedFault(
                        f"injected node-down: cannot connect to node {node!r}"
                    )

    def on_response(self, node: str) -> None:
        """Server-side: about to send a result frame; ``conn-reset``
        rules abort the connection instead (the caller closes the socket
        without a protocol-level error)."""
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind != "conn-reset" or not rule.matches(node, "*"):
                    continue
                if self._armed(i, rule):
                    self._fire(i, rule, node, "*", "response")
                    raise InjectedFault(
                        f"injected conn-reset: node {node!r} dropped the "
                        "connection mid-response"
                    )

    def on_transfer(self, client: int) -> None:
        """One delivery leaving the data mover for a client processor."""
        target = f"client:{client}"
        with self._lock:
            for i, rule in enumerate(self.rules):
                if rule.kind != "node-down" or not rule.matches(target, "*"):
                    continue
                if self._armed(i, rule):
                    self._fire(i, rule, target, "*", "transfer")
                    raise InjectedFault(
                        f"injected node-down: destination {target!r} is "
                        "unreachable"
                    )

    # -- wiring ----------------------------------------------------------------

    def wrap(self, mount) -> "FaultyMount":
        """A mount that injects this rule set (the extractor detects it)."""
        return FaultyMount(mount, self)

    # -- reporting -------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Injected-fault totals by kind, for degradation reports."""
        out: Dict[str, int] = {}
        with self._lock:
            for entry in self.log:
                out[entry["kind"]] = out.get(entry["kind"], 0) + 1
        return out

    def report(self) -> str:
        """Human-readable summary of every fault injected so far."""
        counts = self.counts()
        if not counts:
            return "no faults injected"
        parts = [f"{kind} x{n}" for kind, n in sorted(counts.items())]
        return f"{self.injected} fault(s) injected: " + ", ".join(parts)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {len(self.rules)} rule(s), seed {self.seed}, "
            f"{self.injected} injected>"
        )


class FaultyMount:
    """A mount function with an attached :class:`FaultInjector`.

    Callable like any ``Mount``; resolution consults the injector first
    (``node-down``), and the extractor picks up the ``injector`` attribute
    to route opens and reads through the remaining rules.
    """

    __slots__ = ("_inner", "injector")

    def __init__(self, inner, injector: FaultInjector):
        self._inner = inner
        self.injector: Optional[FaultInjector] = injector

    def __call__(self, node: str, path: str) -> str:
        self.injector.on_mount(node, path)
        return self._inner(node, path)

    def __repr__(self) -> str:
        return f"FaultyMount({self._inner!r}, {self.injector!r})"
