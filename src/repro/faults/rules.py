"""Fault rules and named chaos profiles.

A :class:`FaultRule` describes one way the virtual cluster misbehaves:
which nodes and files it hits (glob patterns), how often (``times`` cap,
``probability`` with a seeded RNG), and the failure mode:

``raise-on-open``      opening the file fails (permissions, missing file);
``short-read``         the read returns fewer bytes than requested;
``slow-read``          the read stalls for ``delay`` seconds;
``fail-after-chunks``  the first ``after_chunks`` chunk reads matching the
                       rule succeed, then every further read fails (a disk
                       dying mid-scan);
``node-down``          every operation touching the node fails (the
                       machine is unreachable);
``conn-reset``         the node's server abruptly closes the socket
                       mid-response (out-of-process transport only; the
                       coordinator sees a connection reset, not a typed
                       error).

Rules are declarative and immutable; the :class:`~repro.faults.injector.
FaultInjector` owns all firing state, so one rule set can be replayed
deterministically under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import List, Optional, Sequence

from ..errors import FaultSpecError

#: The failure modes a rule can inject.
KINDS = (
    "raise-on-open",
    "short-read",
    "slow-read",
    "fail-after-chunks",
    "node-down",
    "conn-reset",
)


@dataclass(frozen=True)
class FaultRule:
    """One declarative failure rule, matched per node and per file."""

    kind: str
    #: Glob over node names ("osu1", "osu*", "*").  Transfer faults match
    #: this against the pseudo-node "client:<i>".
    node: str = "*"
    #: Glob over dataset-relative file paths.
    path: str = "*"
    #: Fire at most this many times (None = unlimited).
    times: Optional[int] = None
    #: Chance each matching opportunity actually fires (seeded RNG).
    probability: float = 1.0
    #: fail-after-chunks: matching chunk reads that succeed before failing.
    after_chunks: int = 0
    #: short-read: bytes truncated from the payload.
    short_by: int = 1
    #: slow-read: seconds each matching read stalls.
    delay: float = 0.05

    def __post_init__(self):
        if self.kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; have {', '.join(KINDS)}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise FaultSpecError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.times is not None and self.times < 1:
            raise FaultSpecError(f"times must be positive, got {self.times}")

    def matches(self, node: str, path: str) -> bool:
        return fnmatchcase(node, self.node) and fnmatchcase(path, self.path)


def parse_rule(spec: str) -> FaultRule:
    """Parse a CLI rule spec: ``kind[:node[:path[:key=val,...]]]``.

    Examples::

        node-down:osu1
        short-read:osu*:*.bin:times=2
        slow-read:osu0:*:delay=0.1,p=0.5
    """
    parts = spec.split(":")
    kind = parts[0]
    node = parts[1] if len(parts) > 1 and parts[1] else "*"
    path = parts[2] if len(parts) > 2 and parts[2] else "*"
    kwargs = {}
    if len(parts) > 3 and parts[3]:
        names = {
            "times": ("times", int),
            "p": ("probability", float),
            "probability": ("probability", float),
            "after": ("after_chunks", int),
            "short": ("short_by", int),
            "delay": ("delay", float),
        }
        for item in parts[3].split(","):
            if "=" not in item:
                raise FaultSpecError(
                    f"bad rule option {item!r} in {spec!r} (want key=value)"
                )
            key, _, value = item.partition("=")
            if key not in names:
                raise FaultSpecError(
                    f"unknown rule option {key!r}; have {', '.join(names)}"
                )
            field, cast = names[key]
            try:
                kwargs[field] = cast(value)
            except ValueError:
                raise FaultSpecError(
                    f"bad value {value!r} for rule option {key!r}"
                ) from None
    return FaultRule(kind, node=node, path=path, **kwargs)


#: Named chaos profiles for ``repro chaos --profile``.
PROFILES = (
    "node-down",
    "flaky-open",
    "flaky-reads",
    "slow-node",
    "tail-failure",
)


def profile_rules(name: str, nodes: Sequence[str]) -> List[FaultRule]:
    """The rule set of a named profile, specialised to a node list."""
    if not nodes:
        raise FaultSpecError("cannot build a chaos profile for zero nodes")
    first, last = nodes[0], nodes[-1]
    if name == "node-down":
        # One node permanently unreachable: retries cannot save it, so the
        # query either degrades (allow_partial) or fails typed.
        return [FaultRule("node-down", node=first)]
    if name == "flaky-open":
        # The first two opens anywhere fail; retries recover fully.
        return [FaultRule("raise-on-open", times=2)]
    if name == "flaky-reads":
        # One read in five comes back short, everywhere.
        return [FaultRule("short-read", probability=0.2)]
    if name == "slow-node":
        # One straggler node: pair with node_timeout to exercise timeouts.
        return [FaultRule("slow-read", node=last, delay=0.05)]
    if name == "tail-failure":
        # One node's disk dies three chunks into the scan.
        return [FaultRule("fail-after-chunks", node=last, after_chunks=3)]
    raise FaultSpecError(
        f"unknown chaos profile {name!r}; have {', '.join(PROFILES)}"
    )
