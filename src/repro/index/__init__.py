"""Chunk and file indexing: range pruning and spatial summaries."""

from .range_index import MultiAttrRangeIndex, RangeIndex
from .rtree import Box, RTree, boxes_intersect
from .summaries import (
    MinMaxSummaries,
    build_summaries,
    load_or_build_summaries,
    summaries_path,
)

__all__ = [
    "Box",
    "MinMaxSummaries",
    "MultiAttrRangeIndex",
    "RTree",
    "RangeIndex",
    "boxes_intersect",
    "build_summaries",
    "load_or_build_summaries",
    "summaries_path",
]
