"""One-dimensional interval index for implicit attribute pruning.

Files and chunks carry implicit attribute *hulls* — ``(lo, hi)`` value
ranges derived from binding constants and loop bounds.  When a dataset
enumerates many files (hundreds of realizations x nodes), the STORM
indexing service selects candidate files with this index instead of
scanning the full file list per query.

The structure is a flat, sorted endpoint array queried with binary search:
for read-only scientific datasets the index is built once and never
updated, so a balanced tree buys nothing over bisect on numpy arrays.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Generic, Iterable, List, Sequence, Set, Tuple, TypeVar

from ..sql.ranges import Interval, IntervalSet

T = TypeVar("T")


class RangeIndex(Generic[T]):
    """Interval -> payload index answering stabbing and overlap queries."""

    def __init__(self, entries: Iterable[Tuple[float, float, T]]):
        items = [(float(lo), float(hi), payload) for lo, hi, payload in entries]
        items.sort(key=lambda e: (e[0], e[1]))
        self._los = [e[0] for e in items]
        self._his = [e[1] for e in items]
        self._payloads = [e[2] for e in items]
        #: Max interval end among entries[0..i] — classic augmented trick
        #: that lets overlap queries stop early.
        self._max_hi_prefix: List[float] = []
        running = float("-inf")
        for hi in self._his:
            running = max(running, hi)
            self._max_hi_prefix.append(running)

    def __len__(self) -> int:
        return len(self._payloads)

    def stab(self, value: float) -> List[T]:
        """All payloads whose interval contains ``value``."""
        return self.overlapping(value, value)

    def _overlapping_positions(self, lo: float, hi: float) -> List[int]:
        # Candidates start at or before hi.
        end = bisect_right(self._los, hi)
        out: List[int] = []
        for i in range(end - 1, -1, -1):
            if self._max_hi_prefix[i] < lo:
                break  # nothing earlier can reach lo
            if self._his[i] >= lo:
                out.append(i)
        out.reverse()
        return out

    def overlapping(self, lo: float, hi: float) -> List[T]:
        """All payloads whose interval intersects the closed [lo, hi]."""
        return [self._payloads[i] for i in self._overlapping_positions(lo, hi)]

    def overlapping_set(self, allowed: IntervalSet) -> List[T]:
        """Payloads whose interval intersects any interval of the set.

        Results are deduplicated and returned in index order.
        """
        seen: Set[int] = set()
        for interval in allowed.intervals:
            seen.update(self._overlapping_positions(interval.lo, interval.hi))
        return [self._payloads[i] for i in sorted(seen)]


class MultiAttrRangeIndex(Generic[T]):
    """Per-attribute range indexes over a common payload collection.

    ``select(ranges)`` returns the payloads that survive every constrained
    attribute — the indexed version of file-level implicit matching.
    Payloads lacking an interval for an attribute are unconstrained by it.
    """

    def __init__(self, payloads: Sequence[T], hulls: Sequence[Dict[str, Tuple[float, float]]]):
        if len(payloads) != len(hulls):
            raise ValueError("payloads and hulls must align")
        self._payloads = list(payloads)
        self._indexes: Dict[str, RangeIndex[int]] = {}
        self._covered: Dict[str, Set[int]] = {}
        attrs: Set[str] = set()
        for hull in hulls:
            attrs.update(hull)
        for attr in attrs:
            entries = [
                (hull[attr][0], hull[attr][1], i)
                for i, hull in enumerate(hulls)
                if attr in hull
            ]
            self._indexes[attr] = RangeIndex(entries)
            self._covered[attr] = {i for _, _, i in entries}

    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def attrs(self) -> Tuple[str, ...]:
        return tuple(sorted(self._indexes))

    def select(self, ranges: Dict[str, IntervalSet]) -> List[T]:
        """Payloads consistent with every constrained, indexed attribute."""
        alive: Set[int] = set(range(len(self._payloads)))
        for attr, allowed in ranges.items():
            index = self._indexes.get(attr)
            if index is None:
                continue
            hits = set(index.overlapping_set(allowed))
            uncovered = alive - self._covered[attr]
            alive &= hits | uncovered
            if not alive:
                break
        return [self._payloads[i] for i in sorted(alive)]
