"""A bulk-loaded R-tree over axis-aligned bounding boxes.

The paper's Titan dataset keeps "a spatial index ... so that chunks that
intersect the query are searched for quickly" (Section 2.2).  This module
provides that index: boxes are bulk-loaded with the Sort-Tile-Recursive
(STR) algorithm, which packs leaves by sorting on successive dimensions,
and queries return every stored item whose box intersects the query box.

The implementation is d-dimensional and pure Python (numpy for the sort
phases); it is intentionally read-only after construction, matching the
paper's read-only dataset assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..errors import ReproError

T = TypeVar("T")

Box = Tuple[Tuple[float, float], ...]  # ((lo, hi), ...) per dimension


def boxes_intersect(a: Box, b: Box) -> bool:
    """Closed-interval intersection test in every dimension."""
    for (alo, ahi), (blo, bhi) in zip(a, b):
        if alo > bhi or blo > ahi:
            return False
    return True


def box_union(a: Box, b: Box) -> Box:
    return tuple(
        (min(alo, blo), max(ahi, bhi))
        for (alo, ahi), (blo, bhi) in zip(a, b)
    )


@dataclass
class _Node(Generic[T]):
    box: Box
    children: Optional[List["_Node"]] = None  # internal node
    items: Optional[List[Tuple[Box, T]]] = None  # leaf node

    @property
    def is_leaf(self) -> bool:
        return self.items is not None


class RTree(Generic[T]):
    """Static R-tree; construct with :meth:`bulk_load`."""

    def __init__(self, root: Optional[_Node], ndim: int, fanout: int):
        self._root = root
        self.ndim = ndim
        self.fanout = fanout

    # -- construction ---------------------------------------------------------

    @classmethod
    def bulk_load(
        cls, entries: Sequence[Tuple[Box, T]], fanout: int = 16
    ) -> "RTree[T]":
        """Build from (box, payload) pairs using Sort-Tile-Recursive packing."""
        if fanout < 2:
            raise ReproError("R-tree fanout must be at least 2")
        if not entries:
            return cls(None, 0, fanout)
        ndim = len(entries[0][0])
        for box, _ in entries:
            if len(box) != ndim:
                raise ReproError(
                    f"inconsistent box dimensionality: {len(box)} vs {ndim}"
                )
            for lo, hi in box:
                if lo > hi:
                    raise ReproError(f"inverted box bounds ({lo}, {hi})")
        leaves = _str_pack_leaves(list(entries), ndim, fanout)
        nodes: List[_Node] = leaves
        while len(nodes) > 1:
            nodes = _pack_internal(nodes, ndim, fanout)
        return cls(nodes[0], ndim, fanout)

    # -- queries ---------------------------------------------------------------

    def search(self, box: Box) -> Iterator[T]:
        """Yield payloads of all stored boxes intersecting ``box``."""
        if self._root is None:
            return
        if len(box) != self.ndim:
            raise ReproError(
                f"query box has {len(box)} dims, index has {self.ndim}"
            )
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not boxes_intersect(node.box, box):
                continue
            if node.is_leaf:
                for item_box, payload in node.items:  # type: ignore[union-attr]
                    if boxes_intersect(item_box, box):
                        yield payload
            else:
                stack.extend(node.children)  # type: ignore[arg-type]

    def search_point(self, point: Sequence[float]) -> Iterator[T]:
        return self.search(tuple((p, p) for p in point))

    def __len__(self) -> int:
        if self._root is None:
            return 0

        def count(node: _Node) -> int:
            if node.is_leaf:
                return len(node.items)  # type: ignore[arg-type]
            return sum(count(c) for c in node.children)  # type: ignore[union-attr]

        return count(self._root)

    @property
    def height(self) -> int:
        node, h = self._root, 0
        while node is not None:
            h += 1
            node = None if node.is_leaf else node.children[0]
        return h


def _centers(entries: Sequence[Tuple[Box, T]], dim: int) -> np.ndarray:
    return np.array([(box[dim][0] + box[dim][1]) / 2.0 for box, _ in entries])


def _str_pack_leaves(
    entries: List[Tuple[Box, T]], ndim: int, fanout: int
) -> List[_Node]:
    """Recursively tile entries into leaf nodes of <= fanout entries."""

    def recurse(chunk: List[Tuple[Box, T]], dim: int) -> List[List[Tuple[Box, T]]]:
        if len(chunk) <= fanout:
            return [chunk]
        if dim >= ndim:
            # Out of dimensions: slice sequentially.
            return [
                chunk[i : i + fanout] for i in range(0, len(chunk), fanout)
            ]
        order = np.argsort(_centers(chunk, dim), kind="stable")
        chunk = [chunk[i] for i in order]
        n_slabs = max(
            1, math.ceil(len(chunk) / fanout ** max(ndim - dim, 1))
        )
        slab_size = math.ceil(len(chunk) / n_slabs)
        out: List[List[Tuple[Box, T]]] = []
        for i in range(0, len(chunk), slab_size):
            out.extend(recurse(chunk[i : i + slab_size], dim + 1))
        return out

    groups = recurse(entries, 0)
    leaves = []
    for group in groups:
        box = group[0][0]
        for b, _ in group[1:]:
            box = box_union(box, b)
        leaves.append(_Node(box=box, items=list(group)))
    return leaves


def _pack_internal(nodes: List[_Node], ndim: int, fanout: int) -> List[_Node]:
    order = np.argsort(
        np.array([(n.box[0][0] + n.box[0][1]) / 2.0 for n in nodes]),
        kind="stable",
    )
    nodes = [nodes[i] for i in order]
    out: List[_Node] = []
    for i in range(0, len(nodes), fanout):
        group = nodes[i : i + fanout]
        box = group[0].box
        for node in group[1:]:
            box = box_union(box, node.box)
        out.append(_Node(box=box, children=group))
    return out
