"""Per-chunk min/max summaries for stored DATAINDEX attributes.

When a descriptor declares ``DATAINDEX`` on attributes that are physically
stored in the files (Titan's spatial coordinates, as opposed to IPARS's
implicit REL/TIME), value-based chunk pruning needs per-chunk statistics.
This module builds them with a single scan over the dataset's aligned
chunks — the moral equivalent of the paper's pre-built spatial index — and
persists them in a sidecar JSON file next to the data so the scan happens
once per dataset, not once per process.

:class:`MinMaxSummaries` satisfies the planner's
:class:`~repro.core.analysis.ChunkSummaries` interface and additionally
exposes an R-tree over chunk bounding boxes for direct spatial lookups.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.analysis import ChunkSummaries
from ..core.extractor import Extractor, Mount
from ..core.planner import CompiledDataset
from ..core.stats import IOStats
from ..errors import ExtractionError, ReproError
from .rtree import Box, RTree

ChunkKey = Tuple[str, str, int]  # (node, path, offset)


class MinMaxSummaries(ChunkSummaries):
    """Chunk key -> {attr: (min, max)} with optional R-tree acceleration."""

    def __init__(self, bounds: Dict[ChunkKey, Dict[str, Tuple[float, float]]]):
        self._bounds = bounds
        #: One R-tree per attribute tuple: queries over (X, Y) and over
        #: (X, Y, Z) alternate freely without rebuilding either tree.
        self._rtrees: Dict[Tuple[str, ...], RTree[ChunkKey]] = {}

    def bounds(self, key: ChunkKey) -> Optional[Dict[str, Tuple[float, float]]]:
        return self._bounds.get(tuple(key))

    def __len__(self) -> int:
        return len(self._bounds)

    def __contains__(self, key: ChunkKey) -> bool:
        return tuple(key) in self._bounds

    @property
    def attrs(self) -> Tuple[str, ...]:
        """Every summarised attribute, sorted.

        The union across chunks, not an arbitrary first entry's keys:
        chunks may store different attribute subsets (multi-layout
        datasets), and pruning logic keying off this property must see
        all of them.
        """
        names = set()
        for entry in self._bounds.values():
            names.update(entry)
        return tuple(sorted(names))

    # -- spatial lookups ---------------------------------------------------------

    def rtree(self, attrs: Sequence[str]) -> RTree[ChunkKey]:
        """R-tree over chunk boxes in the given attribute dimensions."""
        attrs = tuple(attrs)
        tree = self._rtrees.get(attrs)
        if tree is None:
            entries: List[Tuple[Box, ChunkKey]] = []
            for key, bounds in self._bounds.items():
                try:
                    box = tuple(bounds[a] for a in attrs)
                except KeyError as exc:
                    raise ReproError(
                        f"chunk {key} has no summary for attribute {exc}"
                    ) from None
                entries.append((box, key))
            tree = RTree.bulk_load(entries)
            self._rtrees[attrs] = tree
        return tree

    def chunks_overlapping(
        self, attrs: Sequence[str], box: Box
    ) -> List[ChunkKey]:
        return list(self.rtree(attrs).search(box))

    # -- persistence ----------------------------------------------------------------

    def save(self, path: str) -> None:
        payload = [
            {"node": k[0], "path": k[1], "offset": k[2], "bounds": v}
            for k, v in self._bounds.items()
        ]
        with open(path, "w") as handle:
            json.dump({"version": 1, "chunks": payload}, handle)

    @classmethod
    def load(cls, path: str) -> "MinMaxSummaries":
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("version") != 1:
            raise ReproError(f"unsupported summary file version in {path!r}")
        bounds: Dict[ChunkKey, Dict[str, Tuple[float, float]]] = {}
        for entry in payload["chunks"]:
            key = (entry["node"], entry["path"], int(entry["offset"]))
            bounds[key] = {
                attr: (float(lo), float(hi))
                for attr, (lo, hi) in entry["bounds"].items()
            }
        return cls(bounds)


def build_summaries(
    dataset: CompiledDataset,
    mount: Mount,
    attrs: Optional[Iterable[str]] = None,
) -> MinMaxSummaries:
    """Scan the dataset once and compute per-chunk min/max summaries.

    ``attrs`` defaults to the dataset's stored DATAINDEX attributes.  The
    scan walks the same static aligned chunks the planner will enumerate,
    so summary keys always line up with the chunks being pruned.
    """
    attr_list = list(attrs) if attrs is not None else list(dataset.stored_index_attrs)
    if not attr_list:
        raise ReproError(
            "no stored indexed attributes to summarise; declare DATAINDEX "
            "on stored attributes in the descriptor or pass attrs=..."
        )
    for attr in attr_list:
        if attr not in dataset.schema:
            raise ReproError(f"cannot summarise unknown attribute {attr!r}")

    bounds: Dict[ChunkKey, Dict[str, Tuple[float, float]]] = {}
    stats = IOStats()
    with Extractor(mount) as extractor:
        for afc in dataset.index({}):
            for chunk in afc.chunks:
                stored = [a for a in attr_list if a in chunk.strip.attrs]
                if not stored:
                    continue
                if chunk.key in bounds:
                    continue
                want = afc.num_rows * chunk.bytes_per_row
                try:
                    data = extractor.read_chunk(
                        chunk.node, chunk.path, chunk.offset, want, stats
                    )
                except ExtractionError:
                    # Short tail chunk (file truncated, or still being
                    # written): re-read just the bytes actually on disk
                    # and summarise the whole records among them.
                    avail = (
                        os.path.getsize(mount(chunk.node, chunk.path))
                        - chunk.offset
                    )
                    if avail <= 0:
                        continue
                    data = extractor.read_chunk(
                        chunk.node, chunk.path, chunk.offset,
                        min(want, avail), stats,
                    )
                dtype = chunk.strip.record_dtype(stored)
                # A short final chunk (file truncated or still being
                # written) returns fewer bytes than requested; clamp to
                # whole records so frombuffer never sees a partial one.
                usable = (len(data) // dtype.itemsize) * dtype.itemsize
                if usable == 0:
                    continue
                if usable != len(data):
                    data = data[:usable]
                records = np.frombuffer(data, dtype=dtype)
                bounds[chunk.key] = {
                    attr: (
                        float(records[attr].min()),
                        float(records[attr].max()),
                    )
                    for attr in stored
                }
    return MinMaxSummaries(bounds)


def summaries_path(root: str, dataset_name: str) -> str:
    """Conventional sidecar location for a dataset's summary file."""
    return os.path.join(root, f"{dataset_name}.chunk-summaries.json")


def load_or_build_summaries(
    dataset: CompiledDataset, mount: Mount, root: str
) -> MinMaxSummaries:
    """Load persisted summaries, or build and persist them on first use."""
    path = summaries_path(root, dataset.descriptor.name)
    if os.path.exists(path):
        return MinMaxSummaries.load(path)
    summaries = build_summaries(dataset, mount)
    summaries.save(path)
    return summaries
