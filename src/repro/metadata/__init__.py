"""Meta-data description language (Section 3 of the paper).

Parses the three descriptor components — dataset schema, dataset storage,
and dataset layout — into a validated :class:`Descriptor` that the
virtualization compiler (:mod:`repro.core`) consumes.
"""

from .descriptor import Descriptor, build_descriptor, parse_descriptor
from .expressions import Expr, RangeExpr, parse_expr, parse_range
from .layout import (
    AttrGroup,
    Binding,
    DataClause,
    DatasetNode,
    FilePattern,
    LoopNode,
    parse_file_pattern,
    parse_layout,
)
from .schema import Attribute, Schema, parse_schemas
from .storage import DirEntry, StorageDescriptor, parse_storage
from .types import ScalarType, parse_type, type_from_dtype
from .xml_io import descriptor_to_xml, xml_to_descriptor

__all__ = [
    "Attribute",
    "AttrGroup",
    "Binding",
    "DataClause",
    "DatasetNode",
    "Descriptor",
    "DirEntry",
    "Expr",
    "FilePattern",
    "LoopNode",
    "RangeExpr",
    "ScalarType",
    "Schema",
    "StorageDescriptor",
    "build_descriptor",
    "descriptor_to_xml",
    "parse_descriptor",
    "parse_expr",
    "parse_file_pattern",
    "parse_layout",
    "parse_range",
    "parse_schemas",
    "parse_storage",
    "parse_type",
    "type_from_dtype",
    "xml_to_descriptor",
]
