"""Programmatic descriptor construction.

Writing descriptor text is right for repository administrators; Python
tooling (generators, tests, migration scripts) prefers a builder::

    from repro.metadata.builder import DescriptorBuilder

    b = DescriptorBuilder("IparsData", schema_name="IPARS")
    b.attribute("REL", "short int").attribute("TIME", "int")
    b.attribute("X", "float").attribute("SOIL", "float")
    b.directories("osu{i}/ipars", count=4)
    b.index_on("REL", "TIME")

    coords = b.leaf("coords")
    with coords.loop("GRID", "$DIRID*100+1", "($DIRID+1)*100"):
        coords.record("X")
    coords.files("DIR[$DIRID]/COORDS", DIRID=(0, 3))

    data = b.leaf("data")
    with data.loop("TIME", 1, 500):
        with data.loop("GRID", "$DIRID*100+1", "($DIRID+1)*100"):
            data.record("SOIL")
    data.files("DIR[$DIRID]/DATA$REL", REL=(0, 3), DIRID=(0, 3))

    descriptor = b.build()          # validated Descriptor
    text = b.to_text()              # equivalent descriptor source

The builder produces the same validated :class:`Descriptor` the text
parser does, and can render back to descriptor text, so programmatic and
hand-written descriptors stay interchangeable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import MetadataValidationError
from .descriptor import Descriptor, build_descriptor
from .expressions import RangeExpr, parse_expr
from .layout import (
    AttrGroup,
    Binding,
    DataClause,
    DatasetNode,
    FilePattern,
    LoopNode,
    parse_file_pattern,
)
from .schema import Attribute, Schema
from .storage import DirEntry, StorageDescriptor
from .types import parse_type

BoundLike = Union[int, str]
RangeLike = Union[Tuple[BoundLike, BoundLike], Tuple[BoundLike, BoundLike, BoundLike]]


def _expr(value: BoundLike):
    return parse_expr(str(value))


def _range(value: RangeLike) -> RangeExpr:
    if len(value) == 2:
        lo, hi = value
        step: BoundLike = 1
    else:
        lo, hi, step = value
    return RangeExpr(_expr(lo), _expr(hi), _expr(step))


class _LoopContext:
    """Context manager pushing one loop level on a leaf builder."""

    def __init__(self, leaf: "LeafBuilder", node: LoopNode):
        self.leaf = leaf
        self.node = node

    def __enter__(self) -> "LeafBuilder":
        self.leaf._stack.append(self.node)
        return self.leaf

    def __exit__(self, *exc) -> None:
        finished = self.leaf._stack.pop()
        self.leaf._attach(finished)


class LeafBuilder:
    """Builds one leaf DATASET: a dataspace plus its file enumeration."""

    def __init__(self, name: str):
        self.name = name
        self._items: List = []  # finished top-level items
        self._stack: List[LoopNode] = []
        self._patterns: List[FilePattern] = []
        self._bindings: List[Binding] = []
        self.index_attrs: Tuple[str, ...] = ()

    # -- dataspace ---------------------------------------------------------------

    def loop(
        self, var: str, lo: BoundLike, hi: BoundLike, step: BoundLike = 1
    ) -> _LoopContext:
        """Open a LOOP level (use as a context manager)."""
        node = LoopNode(var, RangeExpr(_expr(lo), _expr(hi), _expr(step)), ())
        return _LoopContext(self, node)

    def record(self, *attrs: str) -> "LeafBuilder":
        """Attributes stored consecutively per innermost iteration."""
        if not attrs:
            raise MetadataValidationError("record() needs attribute names")
        self._attach(AttrGroup(tuple(attrs)))
        return self

    def arrays(self, *attrs: str, var: str, lo: BoundLike, hi: BoundLike,
               step: BoundLike = 1) -> "LeafBuilder":
        """Variable-as-array: one single-attribute loop per attribute."""
        for attr in attrs:
            with self.loop(var, lo, hi, step):
                self.record(attr)
        return self

    def _attach(self, item) -> None:
        if self._stack:
            parent = self._stack[-1]
            self._stack[-1] = LoopNode(
                parent.var, parent.range, parent.body + (item,)
            )
        else:
            self._items.append(item)

    # -- files ---------------------------------------------------------------------

    def files(self, pattern: str, **bindings: RangeLike) -> "LeafBuilder":
        """Add a file pattern; keyword arguments are binding ranges."""
        self._patterns.append(parse_file_pattern(pattern))
        for var, value in bindings.items():
            if any(b.var == var for b in self._bindings):
                continue
            self._bindings.append(Binding(var, _range(value)))
        return self

    def index_on(self, *attrs: str) -> "LeafBuilder":
        self.index_attrs = tuple(attrs)
        return self

    # -- assembly -------------------------------------------------------------------

    def node(self) -> DatasetNode:
        if self._stack:
            raise MetadataValidationError(
                f"leaf {self.name!r}: {len(self._stack)} loop(s) still open"
            )
        if not self._items:
            raise MetadataValidationError(
                f"leaf {self.name!r} has an empty dataspace"
            )
        if not self._patterns:
            raise MetadataValidationError(
                f"leaf {self.name!r} has no files; call .files(...)"
            )
        return DatasetNode(
            name=self.name,
            index_attrs=self.index_attrs,
            dataspace=tuple(self._items),
            data=DataClause(
                patterns=tuple(self._patterns), bindings=tuple(self._bindings)
            ),
        )


class DescriptorBuilder:
    """Builds a full three-component descriptor."""

    def __init__(self, dataset_name: str, schema_name: Optional[str] = None):
        self.dataset_name = dataset_name
        self.schema_name = schema_name or dataset_name.upper()
        self._attributes: List[Attribute] = []
        self._dirs: List[DirEntry] = []
        self._index: Tuple[str, ...] = ()
        self._leaves: List[LeafBuilder] = []

    # -- schema ---------------------------------------------------------------

    def attribute(self, name: str, type_name: str) -> "DescriptorBuilder":
        self._attributes.append(Attribute(name, parse_type(type_name)))
        return self

    def attributes(self, **types: str) -> "DescriptorBuilder":
        """Bulk declaration — note: Python kwargs preserve order."""
        for name, type_name in types.items():
            self.attribute(name, type_name)
        return self

    # -- storage ------------------------------------------------------------------

    def directory(self, index: int, node: str, path: str = "") -> "DescriptorBuilder":
        self._dirs.append(DirEntry(index, node, path))
        return self

    def directories(self, spec: str, count: int) -> "DescriptorBuilder":
        """``spec`` is a format string over ``i``: ``"osu{i}/ipars"``."""
        for i in range(count):
            node, _, path = spec.format(i=i).partition("/")
            self.directory(i, node, path)
        return self

    # -- layout ----------------------------------------------------------------------

    def index_on(self, *attrs: str) -> "DescriptorBuilder":
        self._index = tuple(attrs)
        return self

    def leaf(self, name: str) -> LeafBuilder:
        builder = LeafBuilder(name)
        self._leaves.append(builder)
        return builder

    # -- assembly ---------------------------------------------------------------------

    def build(self) -> Descriptor:
        schema = Schema(self.schema_name, list(self._attributes))
        storage = StorageDescriptor(
            self.dataset_name, self.schema_name, list(self._dirs)
        )
        leaves = [leaf.node() for leaf in self._leaves]
        if len(leaves) == 1 and leaves[0].name == self.dataset_name:
            root = leaves[0]
            root.schema_name = self.schema_name
            root.index_attrs = root.index_attrs or self._index
        else:
            root = DatasetNode(
                name=self.dataset_name,
                schema_name=self.schema_name,
                index_attrs=self._index,
            )
            for leaf in leaves:
                leaf.parent = root
                root.children.append(leaf)
            root.data = DataClause(child_refs=tuple(l.name for l in leaves))
        return build_descriptor(
            {schema.name: schema},
            {storage.dataset_name: storage},
            {root.name: root},
            self.dataset_name,
        )

    def to_text(self) -> str:
        """Render as descriptor source text (parseable round-trip)."""
        descriptor = self.build()
        lines = [descriptor.schema.to_text(), descriptor.storage.to_text()]
        lines.append(_render_dataset(descriptor.layout, 0))
        return "\n".join(lines)


def _render_dataset(node: DatasetNode, depth: int) -> str:
    pad = "  " * depth
    out = [f'{pad}DATASET "{node.name}" {{']
    if node.schema_name:
        out.append(f"{pad}  DATATYPE {{ {node.schema_name} }}")
    for attr in node.extra_attrs:
        out.append(f"{pad}  DATATYPE {{ {attr.name} = {attr.type.name} }}")
    if node.index_attrs:
        out.append(f"{pad}  DATAINDEX {{ {' '.join(node.index_attrs)} }}")
    if node.dataspace:
        out.append(f"{pad}  DATASPACE {{")
        for item in node.dataspace:
            out.append(_render_space(item, depth + 2))
        out.append(f"{pad}  }}")
    if node.data.child_refs:
        refs = " ".join(f"DATASET {r}" for r in node.data.child_refs)
        out.append(f"{pad}  DATA {{ {refs} }}")
    elif node.data.patterns:
        parts = [str(p) for p in node.data.patterns]
        parts += [f"{b.var} = {b.range}" for b in node.data.bindings]
        out.append(f"{pad}  DATA {{ {' '.join(parts)} }}")
    for child in node.children:
        out.append(_render_dataset(child, depth + 1))
    out.append(f"{pad}}}")
    return "\n".join(out)


def _render_space(item, depth: int) -> str:
    pad = "  " * depth
    if isinstance(item, AttrGroup):
        return f"{pad}{' '.join(item.names)}"
    assert isinstance(item, LoopNode)
    out = [f"{pad}LOOP {item.var} {item.range} {{"]
    for child in item.body:
        out.append(_render_space(child, depth + 1))
    out.append(f"{pad}}}")
    return "\n".join(out)


def descriptor_for_array(
    dataset_name: str,
    array,
    node: str = "node0",
    path: str = "data",
    filename: str = "table.bin",
    index_attrs: Tuple[str, ...] = (),
) -> Descriptor:
    """A one-file record descriptor for a numpy structured array.

    The quickest onboarding path: write ``array.tofile(...)`` under
    ``root/node0/data/table.bin`` and query it.  Row identity is the
    implicit ``ROW`` loop variable.
    """
    import numpy as np

    from .types import type_from_dtype

    array = np.asarray(array)
    if array.dtype.names is None:
        raise MetadataValidationError(
            "descriptor_for_array needs a structured array"
        )
    builder = DescriptorBuilder(dataset_name)
    for name in array.dtype.names:
        builder.attribute(name, type_from_dtype(array.dtype[name]).name)
    builder.directory(0, node, path)
    if index_attrs:
        builder.index_on(*index_attrs)
    leaf = builder.leaf(dataset_name)
    with leaf.loop("ROW", 0, max(len(array) - 1, 0)):
        leaf.record(*array.dtype.names)
    leaf.files(f"DIR[0]/{filename}")
    return builder.build()
