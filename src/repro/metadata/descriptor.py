"""The combined, validated meta-data descriptor.

A :class:`Descriptor` ties together the three components of the meta-data
description (schema, storage, layout) for one dataset and is the unit the
virtualization compiler consumes.  :func:`parse_descriptor` accepts a single
text containing all three components (the style of the paper's Figure 4) or
the components can be supplied separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import MetadataValidationError
from .layout import DatasetNode, parse_layout, root_datasets
from .schema import Schema, parse_schemas
from .storage import StorageDescriptor, parse_storage
from .validate import validate_descriptor


@dataclass
class Descriptor:
    """A fully-specified dataset description.

    Attributes
    ----------
    schema:
        The virtual relational table schema (Component I), already extended
        with any additional attributes defined in layout DATATYPE clauses.
    storage:
        Node / directory placement (Component II).
    layout:
        Root of the DATASET layout tree (Component III).
    """

    schema: Schema
    storage: StorageDescriptor
    layout: DatasetNode
    all_schemas: Dict[str, Schema] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.storage.dataset_name

    @property
    def index_attrs(self) -> tuple:
        """Attributes declared in DATAINDEX clauses anywhere in the tree."""
        out: List[str] = []
        for node in self.layout.walk():
            for attr in node.index_attrs:
                if attr not in out:
                    out.append(attr)
        return tuple(out)

    def leaves(self) -> List[DatasetNode]:
        return self.layout.leaves()

    def validate(self) -> None:
        """Run all semantic checks; raises MetadataValidationError."""
        validate_descriptor(self)


def parse_descriptor(
    text: str,
    dataset_name: Optional[str] = None,
    validate: bool = True,
) -> Descriptor:
    """Parse a combined descriptor text into a validated :class:`Descriptor`.

    Parameters
    ----------
    text:
        Descriptor source containing schema section(s), one storage section,
        and the layout DATASET blocks.
    dataset_name:
        Which dataset to build, when the text declares several storage
        sections.  Defaults to the only one.
    validate:
        Run semantic validation (the default).  The ``repro.diag`` linter
        passes ``False`` so it can collect every finding itself instead of
        stopping at the first error.
    """
    schemas = parse_schemas(text)
    storages = parse_storage(text)
    layouts = parse_layout(text)
    return build_descriptor(schemas, storages, layouts, dataset_name, validate)


def build_descriptor(
    schemas: Dict[str, Schema],
    storages: Dict[str, StorageDescriptor],
    layouts: Dict[str, DatasetNode],
    dataset_name: Optional[str] = None,
    validate: bool = True,
) -> Descriptor:
    """Assemble and validate a Descriptor from parsed components."""
    if not storages:
        raise MetadataValidationError("descriptor has no storage section")
    if dataset_name is None:
        if len(storages) != 1:
            raise MetadataValidationError(
                "descriptor declares multiple datasets "
                f"({sorted(storages)}); pass dataset_name to choose one"
            )
        dataset_name = next(iter(storages))
    if dataset_name not in storages:
        raise MetadataValidationError(
            f"no storage section for dataset {dataset_name!r}"
        )
    storage = storages[dataset_name]

    if storage.schema_name not in schemas:
        raise MetadataValidationError(
            f"storage section references undefined schema "
            f"{storage.schema_name!r}"
        )
    schema = schemas[storage.schema_name]

    root = _select_root(layouts, dataset_name)

    # Fold layout-defined extra attributes into the schema so downstream
    # components see a single attribute namespace.
    extra = []
    for node in root.walk():
        extra.extend(node.extra_attrs)
    if extra:
        schema = schema.extend(extra)

    descriptor = Descriptor(
        schema=schema, storage=storage, layout=root, all_schemas=dict(schemas)
    )
    if validate:
        descriptor.validate()
    return descriptor


def _select_root(layouts: Dict[str, DatasetNode], dataset_name: str) -> DatasetNode:
    roots = root_datasets(layouts)
    for root in roots:
        if root.name == dataset_name:
            return root
    if len(roots) == 1:
        return roots[0]
    raise MetadataValidationError(
        f"no layout DATASET named {dataset_name!r}; "
        f"top-level datasets are {[r.name for r in roots]}"
    )
