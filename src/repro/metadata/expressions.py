"""Arithmetic expressions over ``$``-variables in layout descriptors.

Loop bounds and file-enumeration clauses in the layout component may contain
integer arithmetic over binding variables, e.g. the IPARS descriptor of the
paper uses::

    LOOP GRID ($DIRID*100+1):(($DIRID+1)*100):1 { ... }

This module provides a small expression language:

* integer literals,
* variable references (``$NAME``),
* ``+ - * / %`` with usual precedence (``/`` is floor division — bounds are
  always integers),
* unary minus and parentheses.

Expressions are parsed once (descriptor load time) into immutable AST nodes
that can be evaluated repeatedly against per-file variable bindings, and can
report their free variables so the validator can reject unbound names before
any query runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional, Tuple, Union

from ..errors import (
    MetadataEvaluationError,
    MetadataSyntaxError,
    MetadataValidationError,
)
from .spans import Span

Env = Dict[str, int]


class Expr:
    """Base class for expression AST nodes."""

    __slots__ = ()

    def evaluate(self, env: Env) -> int:
        raise NotImplementedError

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def to_python(self, var_format: str = "env[{!r}]") -> str:
        """Render as a Python expression string (used by the code generator).

        ``var_format`` is a format string applied to each variable name;
        the default renders dictionary lookups.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    value: int

    __slots__ = ("value",)

    def evaluate(self, env: Env) -> int:
        return self.value

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def to_python(self, var_format: str = "env[{!r}]") -> str:
        return repr(self.value)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    name: str

    __slots__ = ("name",)

    def evaluate(self, env: Env) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise MetadataValidationError(
                f"unbound variable ${self.name} in expression"
            ) from None

    def free_vars(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def to_python(self, var_format: str = "env[{!r}]") -> str:
        return var_format.format(self.name)

    def __str__(self) -> str:
        return f"${self.name}"


_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    __slots__ = ("op", "left", "right")

    def evaluate(self, env: Env) -> int:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op in ("/", "%") and right == 0:
            # Typed (and span-carrying once RangeExpr re-raises it) instead
            # of a bare ZeroDivisionError; still a MetadataValidationError
            # subclass so existing handlers keep working.
            raise MetadataEvaluationError(
                f"division by zero evaluating {self}"
            )
        return _OPS[self.op](left, right)

    def free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars() | self.right.free_vars()

    def to_python(self, var_format: str = "env[{!r}]") -> str:
        op = "//" if self.op == "/" else self.op
        return (
            f"({self.left.to_python(var_format)} {op} "
            f"{self.right.to_python(var_format)})"
        )

    def __str__(self) -> str:
        return f"({self.left}{self.op}{self.right})"


@dataclass(frozen=True)
class Neg(Expr):
    operand: Expr

    __slots__ = ("operand",)

    def evaluate(self, env: Env) -> int:
        return -self.operand.evaluate(env)

    def free_vars(self) -> FrozenSet[str]:
        return self.operand.free_vars()

    def to_python(self, var_format: str = "env[{!r}]") -> str:
        return f"(-{self.operand.to_python(var_format)})"

    def __str__(self) -> str:
        return f"(-{self.operand})"


# ---------------------------------------------------------------------------
# Tokenizer + recursive-descent parser
# ---------------------------------------------------------------------------

_Token = Tuple[str, Union[str, int]]


def _tokenize(text: str) -> Iterator[_Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            yield ("num", int(text[i:j]))
            i = j
        elif ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise MetadataSyntaxError(f"'$' without variable name in {text!r}")
            yield ("var", text[i + 1 : j])
            i = j
        elif ch.isalpha() or ch == "_":
            # Bare identifiers are accepted as variables; the paper's own
            # descriptors write e.g. DIR[DIRID] without the '$'.
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            yield ("var", text[i:j])
            i = j
        elif ch in "+-*/%()":
            yield ("op", ch)
            i += 1
        else:
            raise MetadataSyntaxError(f"bad character {ch!r} in expression {text!r}")
    yield ("end", "")


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = list(_tokenize(text))
        self.pos = 0

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect_op(self, op: str) -> None:
        kind, value = self.next()
        if kind != "op" or value != op:
            raise MetadataSyntaxError(
                f"expected {op!r} in expression {self.text!r}, got {value!r}"
            )

    def parse(self) -> Expr:
        expr = self.add_expr()
        kind, value = self.peek()
        if kind != "end":
            raise MetadataSyntaxError(
                f"unexpected trailing {value!r} in expression {self.text!r}"
            )
        return expr

    def add_expr(self) -> Expr:
        left = self.mul_expr()
        while True:
            kind, value = self.peek()
            if kind == "op" and value in ("+", "-"):
                self.next()
                left = BinOp(str(value), left, self.mul_expr())
            else:
                return left

    def mul_expr(self) -> Expr:
        left = self.unary_expr()
        while True:
            kind, value = self.peek()
            if kind == "op" and value in ("*", "/", "%"):
                self.next()
                left = BinOp(str(value), left, self.unary_expr())
            else:
                return left

    def unary_expr(self) -> Expr:
        kind, value = self.peek()
        if kind == "op" and value == "-":
            self.next()
            return Neg(self.unary_expr())
        return self.atom()

    def atom(self) -> Expr:
        kind, value = self.next()
        if kind == "num":
            return Literal(int(value))
        if kind == "var":
            return Var(str(value))
        if kind == "op" and value == "(":
            inner = self.add_expr()
            self.expect_op(")")
            return inner
        raise MetadataSyntaxError(
            f"unexpected {value!r} in expression {self.text!r}"
        )


def parse_expr(text: str) -> Expr:
    """Parse an arithmetic expression string into an AST.

    >>> parse_expr("$DIRID*100+1").evaluate({"DIRID": 2})
    201
    """
    return _Parser(text).parse()


@dataclass(frozen=True)
class RangeExpr:
    """An inclusive ``lo:hi:stride`` range with expression bounds.

    Loop headers and file-enumeration bindings both use this form.  Bounds
    are inclusive on both ends, matching the paper's ``0:3:1`` (four values).
    """

    lo: Expr
    hi: Expr
    stride: Expr
    #: Source span of the range text, when parsed from a descriptor file
    #: (excluded from equality/hashing; programmatic ranges have None).
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def free_vars(self) -> FrozenSet[str]:
        return self.lo.free_vars() | self.hi.free_vars() | self.stride.free_vars()

    def evaluate(self, env: Env) -> range:
        """Evaluate to a concrete :class:`range` (inclusive upper bound)."""
        try:
            lo = self.lo.evaluate(env)
            hi = self.hi.evaluate(env)
            stride = self.stride.evaluate(env)
        except MetadataEvaluationError as exc:
            if self.span is not None and exc.span is None:
                raise MetadataEvaluationError(
                    exc.bare_message, span=self.span
                ) from None
            raise
        if stride <= 0:
            raise MetadataValidationError(
                f"range stride must be positive, got {stride} in {self}"
            )
        if hi < lo:
            raise MetadataValidationError(
                f"empty range {lo}:{hi}:{stride} in layout"
            )
        return range(lo, hi + 1, stride)

    def count(self, env: Env) -> int:
        """Number of iterations of the range under ``env``."""
        return len(self.evaluate(env))

    def __str__(self) -> str:
        return f"{self.lo}:{self.hi}:{self.stride}"


def parse_range(text: str, span: Optional[Span] = None) -> RangeExpr:
    """Parse ``lo:hi:stride`` (stride optional, default 1).

    The bounds may be arbitrary expressions; ``:`` at expression top level
    separates them.  Because bounds can contain parenthesised expressions
    with no ``:`` inside, a simple split at depth zero suffices.
    """
    parts = _split_top_level(text, ":")
    if len(parts) == 2:
        parts.append("1")
    if len(parts) != 3:
        raise MetadataSyntaxError(f"range must be lo:hi[:stride], got {text!r}")
    return RangeExpr(
        parse_expr(parts[0]), parse_expr(parts[1]), parse_expr(parts[2]), span
    )


def const_fold(expr: Expr) -> Optional[int]:
    """Value of a variable-free expression, or None when it has free vars.

    Evaluation errors (division by zero) propagate as
    :class:`~repro.errors.MetadataEvaluationError` — the linter turns them
    into diagnostics.
    """
    if expr.free_vars():
        return None
    return expr.evaluate({})


def _split_top_level(text: str, sep: str) -> list:
    """Split ``text`` on ``sep`` occurrences outside parentheses."""
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise MetadataSyntaxError(f"unbalanced ')' in {text!r}")
        elif ch == sep and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    if depth != 0:
        raise MetadataSyntaxError(f"unbalanced '(' in {text!r}")
    parts.append(text[start:])
    return parts
