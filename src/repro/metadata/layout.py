"""Component III of the meta-data descriptor: the dataset layout.

The layout component describes how virtual-table values are physically
arranged within and across files, using the six keywords of the paper
(Section 3.2): ``DATASET``, ``DATATYPE``, ``DATAINDEX``, ``DATASPACE``,
``DATA``, and ``LOOP``.  Grammar (case-insensitive keywords)::

    layout     := dataset+
    dataset    := DATASET name '{' clause* '}'
    clause     := DATATYPE  '{' schema_ref | attr_def+ '}'
                | DATAINDEX '{' ident+ '}'
                | DATASPACE '{' item* '}'
                | DATA      '{' data_body '}'
                | dataset                      // inline child definition
    attr_def   := ident '=' typename
    item       := LOOP ident range '{' item* '}'
                | ident+                       // attribute record group
    range      := expr ':' expr [':' expr]     // inclusive bounds
    data_body  := (DATASET name)+              // non-leaf: child datasets
                | (pattern | binding)+         // leaf: file enumeration
    pattern    := DIR '[' expr ']' '/' template
    binding    := ident '=' lo:hi[:stride]     // no whitespace inside

Semantics highlights:

* Sibling items in a ``DATASPACE`` occupy consecutive byte ranges; a
  ``LOOP`` repeats its body once per iteration value; an attribute group
  stores its attributes consecutively per innermost iteration (a packed
  record).  "Each variable stored as an array" layouts are expressed as
  one single-attribute group per loop.
* A leaf ``DATA`` clause enumerates files over the cartesian product of
  its binding variables; the binding values become *implicit attributes*
  of each file, as do loop bounds that depend on them.
* Loop / binding variables whose names match schema attributes (``TIME``,
  ``REL``) supply those column values implicitly; other variables
  (``GRID``, ``DIRID``) are pure ordering/placement coordinates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import MetadataSyntaxError, MetadataValidationError
from .expressions import Env, Expr, RangeExpr, parse_expr, parse_range
from .schema import Attribute
from .spans import Span
from .tokens import Scanner
from .types import parse_type

_KEYWORDS = {"DATASET", "DATATYPE", "DATAINDEX", "DATASPACE", "DATA", "LOOP", "DIR"}

_TEMPLATE_VAR = re.compile(r"\$([A-Za-z_][A-Za-z0-9_]*)")


# ---------------------------------------------------------------------------
# Dataspace AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttrGroup:
    """A packed record of attributes stored once per innermost iteration."""

    names: Tuple[str, ...]
    #: Source span of the whole group / of each name (parse-time only;
    #: excluded from equality so programmatic ASTs compare as before).
    span: Optional[Span] = field(default=None, compare=False, repr=False)
    name_spans: Optional[Tuple[Span, ...]] = field(
        default=None, compare=False, repr=False
    )

    def name_span(self, index: int) -> Optional[Span]:
        """Span of ``names[index]``, or the group span when unknown."""
        if self.name_spans is not None and index < len(self.name_spans):
            return self.name_spans[index]
        return self.span

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return " ".join(self.names)


@dataclass(frozen=True)
class LoopNode:
    """``LOOP var lo:hi:stride { body }`` — a repetition dimension."""

    var: str
    range: RangeExpr
    body: Tuple["SpaceItem", ...]
    #: Span of the ``LOOP var lo:hi:stride`` header (parse-time only).
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def free_vars(self) -> FrozenSet[str]:
        out = self.range.free_vars()
        for item in self.body:
            out |= item.free_vars()
        return out - {self.var}

    def __str__(self) -> str:
        inner = " ".join(str(i) for i in self.body)
        return f"LOOP {self.var} {self.range} {{ {inner} }}"


SpaceItem = Union[AttrGroup, LoopNode]


def iter_attr_names(items: Sequence[SpaceItem]):
    """All attribute names mentioned anywhere in a dataspace body."""
    for item in items:
        if isinstance(item, AttrGroup):
            yield from item.names
        else:
            yield from iter_attr_names(item.body)


def iter_loop_vars(items: Sequence[SpaceItem]):
    """All loop variables in a dataspace body (pre-order)."""
    for item in items:
        if isinstance(item, LoopNode):
            yield item.var
            yield from iter_loop_vars(item.body)


# ---------------------------------------------------------------------------
# File patterns and bindings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FilePattern:
    """A ``DIR[expr]/template`` file pattern from a leaf DATA clause.

    ``template`` is the path within the directory; ``$VAR`` occurrences in
    it are substituted from binding values at enumeration time.
    """

    dir_expr: Expr
    template: str
    #: Span of the pattern text in the DATA clause (parse-time only).
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def free_vars(self) -> FrozenSet[str]:
        vars_ = set(self.dir_expr.free_vars())
        vars_.update(m.group(1) for m in _TEMPLATE_VAR.finditer(self.template))
        return frozenset(vars_)

    def expand(self, env: Env) -> Tuple[int, str]:
        """(directory index, relative path) under a binding environment."""
        dir_index = self.dir_expr.evaluate(env)

        def sub(match: "re.Match") -> str:
            name = match.group(1)
            if name not in env:
                raise MetadataValidationError(
                    f"unbound variable ${name} in file pattern {self}"
                )
            return str(env[name])

        return dir_index, _TEMPLATE_VAR.sub(sub, self.template)

    def __str__(self) -> str:
        return f"DIR[{self.dir_expr}]/{self.template}"


@dataclass(frozen=True)
class Binding:
    """``VAR = lo:hi:stride`` — enumerates a file-set dimension."""

    var: str
    range: RangeExpr
    #: Span of the whole binding in the DATA clause (parse-time only).
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        return f"{self.var} = {self.range}"


@dataclass(frozen=True)
class DataClause:
    """The DATA clause of a dataset: child refs (non-leaf) or files (leaf)."""

    child_refs: Tuple[str, ...] = ()
    patterns: Tuple[FilePattern, ...] = ()
    bindings: Tuple[Binding, ...] = ()

    @property
    def is_leaf(self) -> bool:
        return bool(self.patterns)

    def binding_env_iter(self) -> Iterator[Dict[str, int]]:
        """Iterate all binding environments (cartesian product, row-major
        in declaration order — deterministic file enumeration order)."""
        names = [b.var for b in self.bindings]
        ranges = [list(b.range.evaluate({})) for b in self.bindings]
        if not names:
            yield {}
            return
        indices = [0] * len(names)
        while True:
            yield {n: ranges[i][indices[i]] for i, n in enumerate(names)}
            for axis in range(len(names) - 1, -1, -1):
                indices[axis] += 1
                if indices[axis] < len(ranges[axis]):
                    break
                indices[axis] = 0
            else:
                return


# ---------------------------------------------------------------------------
# Dataset nodes
# ---------------------------------------------------------------------------


@dataclass
class DatasetNode:
    """One DATASET block; a tree node of the layout component."""

    name: str
    schema_name: Optional[str] = None
    extra_attrs: List[Attribute] = field(default_factory=list)
    index_attrs: Tuple[str, ...] = ()
    dataspace: Tuple[SpaceItem, ...] = ()
    data: DataClause = field(default_factory=DataClause)
    children: List["DatasetNode"] = field(default_factory=list)
    parent: Optional["DatasetNode"] = None
    #: Spans recorded by the parser: the ``DATASET name`` header, the
    #: schema reference inside DATATYPE, and each DATAINDEX attribute.
    span: Optional[Span] = field(default=None, compare=False, repr=False)
    schema_span: Optional[Span] = field(default=None, compare=False, repr=False)
    index_attr_spans: Tuple[Span, ...] = field(
        default=(), compare=False, repr=False
    )

    @property
    def is_leaf(self) -> bool:
        return bool(self.dataspace)

    def effective_schema_name(self) -> Optional[str]:
        node: Optional[DatasetNode] = self
        while node is not None:
            if node.schema_name:
                return node.schema_name
            node = node.parent
        return None

    def effective_index_attrs(self) -> Tuple[str, ...]:
        """Index attributes, own plus inherited, outermost first."""
        chain: List[str] = []
        node: Optional[DatasetNode] = self
        stack = []
        while node is not None:
            stack.append(node)
            node = node.parent
        for ancestor in reversed(stack):
            for attr in ancestor.index_attrs:
                if attr not in chain:
                    chain.append(attr)
        return tuple(chain)

    def effective_extra_attrs(self) -> List[Attribute]:
        out: List[Attribute] = []
        stack = []
        node: Optional[DatasetNode] = self
        while node is not None:
            stack.append(node)
            node = node.parent
        for ancestor in reversed(stack):
            out.extend(ancestor.extra_attrs)
        return out

    def leaves(self) -> List["DatasetNode"]:
        """All leaf datasets under (and including) this node, in order."""
        if self.is_leaf:
            return [self]
        out: List[DatasetNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def walk(self) -> Iterator["DatasetNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __str__(self) -> str:
        return f'DATASET "{self.name}"'


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def parse_layout(text: str) -> Dict[str, DatasetNode]:
    """Parse all top-level DATASET blocks in ``text``.

    Schema/storage sections (``[Name]`` + key lines) may precede the layout
    in a combined descriptor file; they are skipped here.
    Child references in non-leaf DATA clauses are resolved against the
    returned mapping (a child may be defined inline or as a sibling
    top-level block, matching the paper's Figure 4 style).
    """
    scanner = Scanner(text)
    datasets: Dict[str, DatasetNode] = {}
    while not scanner.at_end():
        ch = scanner.peek_char()
        if ch == "[":
            _skip_ini_section(scanner)
            continue
        word = scanner.peek_ident()
        if word.upper() != "DATASET":
            raise scanner.error(
                f"expected DATASET block or [section], got {word or ch!r}"
            )
        node = _parse_dataset(scanner)
        if node.name in datasets:
            raise MetadataValidationError(f"dataset {node.name!r} defined twice")
        datasets[node.name] = node
    _resolve_children(datasets)
    return datasets


def _skip_ini_section(scanner: Scanner) -> None:
    """Skip a ``[Name]`` section and its key lines."""
    scanner.expect("[")
    scanner.read_balanced_until("]")
    scanner.expect("]")
    while not scanner.at_end():
        saved = scanner.pos
        ch = scanner.peek_char()
        if ch == "[":
            return
        word = scanner.peek_ident()
        if word.upper() == "DATASET":
            return
        # consume one "key = value" line
        scanner.skip_trivia()
        scanner.read_rest_of_line()
        if scanner.pos == saved:  # pragma: no cover - safety against stall
            raise scanner.error("could not parse descriptor section body")


def _parse_dataset(scanner: Scanner) -> DatasetNode:
    header_start = scanner.mark()
    keyword = scanner.read_ident()
    if keyword.upper() != "DATASET":
        raise scanner.error(f"expected DATASET, got {keyword!r}")
    name = scanner.read_name()
    node = DatasetNode(name=name, span=scanner.span(header_start))
    scanner.expect("{")
    while True:
        if scanner.try_consume("}"):
            break
        word = scanner.peek_ident()
        upper = word.upper()
        if upper == "DATATYPE":
            scanner.read_ident()
            _parse_datatype(scanner, node)
        elif upper == "DATAINDEX":
            scanner.read_ident()
            names, spans = _parse_ident_list(scanner)
            node.index_attrs = tuple(names)
            node.index_attr_spans = tuple(spans)
        elif upper == "DATASPACE":
            scanner.read_ident()
            scanner.expect("{")
            node.dataspace = tuple(_parse_space_items(scanner))
        elif upper == "DATA":
            scanner.read_ident()
            node.data = _parse_data_clause(scanner)
        elif upper == "DATASET":
            child = _parse_dataset(scanner)
            child.parent = node
            node.children.append(child)
        else:
            raise scanner.error(
                f"unexpected {word!r} in DATASET {name!r} "
                "(expected DATATYPE, DATAINDEX, DATASPACE, DATA, or DATASET)"
            )
    if node.is_leaf and node.children:
        raise MetadataValidationError(
            f"dataset {name!r} has both a DATASPACE and nested DATASETs"
        )
    return node


def _parse_datatype(scanner: Scanner, node: DatasetNode) -> None:
    """DATATYPE { SchemaName }  or  DATATYPE { NAME = type ... }."""
    scanner.expect("{")
    first_start = scanner.mark()
    first = scanner.read_ident("schema name or attribute")
    first_span = scanner.span(first_start)
    if scanner.peek_char() == "=":
        # Inline attribute definitions: NAME = typename, repeated.
        attrs: List[Attribute] = []
        name, name_span = first, first_span
        while True:
            scanner.expect("=")
            attrs.append(Attribute(name, _read_type(scanner), span=name_span))
            if scanner.try_consume("}"):
                break
            name_start = scanner.mark()
            name = scanner.read_ident("attribute name")
            name_span = scanner.span(name_start)
            if scanner.peek_char() != "=":
                raise scanner.error(f"expected '=' after attribute {name!r}")
        node.extra_attrs.extend(attrs)
    else:
        node.schema_name = first
        node.schema_span = first_span
        scanner.expect("}")


_TYPE_FIRST_WORDS = {"short", "long", "unsigned"}
_TYPE_SECOND_WORDS = {"int", "char", "short", "long"}


def _read_type(scanner: Scanner):
    """Read a one- or two-word type name (``double``, ``short int``)."""
    first = scanner.read_ident("type name")
    if first.lower() in _TYPE_FIRST_WORDS:
        follow = scanner.peek_ident()
        if follow and follow.lower() in _TYPE_SECOND_WORDS:
            scanner.read_ident()
            return parse_type(f"{first} {follow}")
    return parse_type(first)


def _parse_ident_list(scanner: Scanner) -> Tuple[List[str], List[Span]]:
    scanner.expect("{")
    names: List[str] = []
    spans: List[Span] = []
    while not scanner.try_consume("}"):
        start = scanner.mark()
        names.append(scanner.read_ident())
        spans.append(scanner.span(start))
    return names, spans


def _parse_space_items(scanner: Scanner) -> List[SpaceItem]:
    """Parse dataspace items until the closing '}' (consumed)."""
    items: List[SpaceItem] = []
    pending: List[str] = []
    pending_spans: List[Span] = []

    def flush() -> None:
        if pending:
            group_span = pending_spans[0].merge(pending_spans[-1])
            items.append(
                AttrGroup(tuple(pending), group_span, tuple(pending_spans))
            )
            pending.clear()
            pending_spans.clear()

    while True:
        if scanner.try_consume("}"):
            flush()
            return items
        word_start = scanner.mark()
        word = scanner.read_ident("attribute or LOOP")
        word_span = scanner.span(word_start)
        if word.upper() == "LOOP":
            flush()
            var = scanner.read_ident("loop variable")
            range_start = scanner.mark()
            range_text = scanner.read_balanced_until("{")
            range_span = scanner.span(range_start)
            loop_range = parse_range(range_text, span=range_span)
            header_span = scanner.span(word_start)
            scanner.expect("{")
            body = _parse_space_items(scanner)
            if not body:
                raise MetadataValidationError(
                    f"LOOP {var} has an empty body"
                )
            items.append(LoopNode(var, loop_range, tuple(body), header_span))
        else:
            pending.append(word)
            pending_spans.append(word_span)


def _parse_data_clause(scanner: Scanner) -> DataClause:
    scanner.expect("{")
    child_refs: List[str] = []
    patterns: List[FilePattern] = []
    bindings: List[Binding] = []
    while not scanner.try_consume("}"):
        word = scanner.peek_ident()
        if word.upper() == "DATASET":
            scanner.read_ident()
            child_refs.append(scanner.read_name())
            continue
        # Either "VAR = range" binding or a file pattern.
        start = scanner.mark()
        saved = scanner.pos
        if word and word.upper() != "DIR":
            ident = scanner.read_ident()
            if scanner.peek_char() == "=":
                scanner.expect("=")
                range_start = scanner.mark()
                range_text = scanner.read_until_whitespace()
                range_span = scanner.span(range_start)
                binding_span = scanner.span(start)
                bindings.append(
                    Binding(
                        ident,
                        parse_range(range_text, span=range_span),
                        binding_span,
                    )
                )
                continue
            scanner.pos = saved
        raw = scanner.read_until_whitespace()
        patterns.append(parse_file_pattern(raw, span=scanner.span(start)))
    if child_refs and (patterns or bindings):
        raise MetadataValidationError(
            "a DATA clause cannot mix DATASET references with file patterns"
        )
    for binding in bindings:
        free = binding.range.free_vars()
        if free:
            raise MetadataValidationError(
                f"binding {binding} bounds must be constant, "
                f"found variables {sorted(free)}"
            )
    return DataClause(tuple(child_refs), tuple(patterns), tuple(bindings))


def parse_file_pattern(raw: str, span: Optional[Span] = None) -> FilePattern:
    """Parse ``DIR[expr]/template`` (the only supported pattern form)."""
    if not raw.upper().startswith("DIR["):
        raise MetadataSyntaxError(
            f"file pattern must start with DIR[...], got {raw!r}"
        )
    close = raw.find("]")
    if close < 0:
        raise MetadataSyntaxError(f"missing ']' in file pattern {raw!r}")
    dir_expr = parse_expr(raw[4:close])
    rest = raw[close + 1 :]
    if not rest.startswith("/"):
        raise MetadataSyntaxError(
            f"expected '/' after DIR[...] in pattern {raw!r}"
        )
    template = rest[1:]
    if not template:
        raise MetadataSyntaxError(f"empty file name in pattern {raw!r}")
    return FilePattern(dir_expr, template, span)


def _resolve_children(datasets: Dict[str, DatasetNode]) -> None:
    """Attach datasets referenced by name in non-leaf DATA clauses."""
    for node in list(datasets.values()):
        for tree_node in node.walk():
            for ref in tree_node.data.child_refs:
                child = _find_dataset(datasets, ref)
                if child is None:
                    raise MetadataValidationError(
                        f"dataset {tree_node.name!r} references undefined "
                        f"dataset {ref!r}"
                    )
                if child.parent is not None and child.parent is not tree_node:
                    raise MetadataValidationError(
                        f"dataset {ref!r} is claimed by two parents"
                    )
                if child not in tree_node.children:
                    child.parent = tree_node
                    tree_node.children.append(child)


def _find_dataset(
    datasets: Dict[str, DatasetNode], name: str
) -> Optional[DatasetNode]:
    if name in datasets:
        return datasets[name]
    for root in datasets.values():
        for node in root.walk():
            if node.name == name:
                return node
    return None


def root_datasets(datasets: Dict[str, DatasetNode]) -> List[DatasetNode]:
    """Datasets that are not referenced as children of any other dataset."""
    return [d for d in datasets.values() if d.parent is None]
