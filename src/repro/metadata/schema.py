"""Component I of the meta-data descriptor: the dataset schema.

A schema declares the *virtual relational table* view of a dataset — an
ordered list of named, typed attributes.  The concrete syntax follows the
paper's Figure 4::

    [IPARS]               // {* Dataset schema name *}
    REL = short int       // {* Data type definition *}
    TIME = int
    X = float
    ...

A descriptor file may declare several schemas; each starts with a bracketed
section header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from ..errors import SchemaError
from .spans import Span
from .types import ScalarType, parse_type


@dataclass(frozen=True)
class Attribute:
    """One column of the virtual table."""

    name: str
    type: ScalarType
    #: Source span of the declaration, when parsed from descriptor text
    #: (excluded from equality/hashing, like all parse-time spans).
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def size(self) -> int:
        """Width in bytes of one stored value."""
        return self.type.size

    @property
    def dtype(self) -> np.dtype:
        return self.type.dtype

    def __str__(self) -> str:
        return f"{self.name} = {self.type.name}"


@dataclass
class Schema:
    """An ordered collection of attributes defining the virtual table.

    Attribute order is significant: it is the column order of result
    tables and the default order of ``SELECT *``.
    """

    name: str
    attributes: List[Attribute] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in schema {self.name!r}"
                )
            seen.add(attr.name)

    # -- lookup --------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")

    def index_of(self, name: str) -> int:
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def row_size(self) -> int:
        """Bytes of one full row when stored as a packed record."""
        return sum(a.size for a in self.attributes)

    def numpy_dtype(self, names: Optional[List[str]] = None) -> np.dtype:
        """Packed structured dtype for (a projection of) this schema."""
        if names is None:
            names = list(self.names)
        return np.dtype([(n, self.attribute(n).dtype) for n in names])

    def extend(self, extra: List[Attribute]) -> "Schema":
        """A new schema with ``extra`` attributes appended (layout DATATYPE
        clauses may define attributes beyond the base schema)."""
        return Schema(self.name, list(self.attributes) + list(extra))

    def project(self, names: List[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema(self.name, [self.attribute(n) for n in names])

    def to_text(self) -> str:
        """Render back to descriptor syntax (round-trip support)."""
        lines = [f"[{self.name}]"]
        lines.extend(str(a) for a in self.attributes)
        return "\n".join(lines) + "\n"


def parse_schemas(text: str) -> Dict[str, Schema]:
    """Parse all schema sections from descriptor text.

    Sections whose body contains storage keys (``DatasetDescription``,
    ``DIR[...]``) are skipped — those belong to Component II and are parsed
    by :mod:`repro.metadata.storage`.
    """
    schemas: Dict[str, Schema] = {}
    for name, entries in iter_sections(text):
        if _looks_like_storage(entries):
            continue
        attributes = []
        for entry in entries:
            attributes.append(
                Attribute(entry.key, parse_type(entry.value), span=entry.span)
            )
        if name in schemas:
            raise SchemaError(f"schema {name!r} declared twice")
        schemas[name] = Schema(name, attributes)
    return schemas


class SectionEntry(NamedTuple):
    """One ``key = value`` line of an INI-style descriptor section."""

    key: str
    value: str
    span: Optional[Span] = None


def _looks_like_storage(entries: List[SectionEntry]) -> bool:
    return any(
        e.key == "DatasetDescription" or e.key.startswith("DIR[") for e in entries
    )


def iter_sections(text: str) -> Iterator[Tuple[str, List[SectionEntry]]]:
    """Iterate ``[Name]`` sections with their ``key = value`` entries.

    Shared between the schema and storage parsers.  Lines outside any
    section (e.g. the layout component in a combined descriptor file) end
    the current section; layout ``DATASET`` blocks are detected by their
    opening keyword and skipped wholesale using brace counting.  Each
    entry carries the source span of its key for diagnostics.
    """
    current_name = None
    current_entries: List[SectionEntry] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        raw = lines[i]
        line = _strip_comment(raw)
        i += 1
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            if current_name is not None:
                yield current_name, current_entries
            current_name = line[1:-1].strip()
            current_entries = []
            if not current_name:
                raise SchemaError("empty section name '[]' in descriptor")
            continue
        head = line.split("{")[0].split()
        first_word = head[0].upper() if head else ""
        if first_word == "DATASET":
            # Layout component begins; skip its brace-balanced body.
            if current_name is not None:
                yield current_name, current_entries
                current_name, current_entries = None, []
            depth = line.count("{") - line.count("}")
            while depth > 0 and i < len(lines):
                body_line = _strip_comment(lines[i])
                depth += body_line.count("{") - body_line.count("}")
                i += 1
            continue
        if current_name is None:
            raise SchemaError(f"entry outside any section: {line!r}")
        if "=" not in line:
            raise SchemaError(
                f"expected 'name = value' in section [{current_name}], got {line!r}"
            )
        key, _, value = line.partition("=")
        key = key.strip()
        column = raw.find(key) + 1
        span = Span(i, column, i, column + len(key))
        current_entries.append(SectionEntry(key, value.strip(), span))
    if current_name is not None:
        yield current_name, current_entries


def _strip_comment(line: str) -> str:
    pos = line.find("//")
    if pos >= 0:
        line = line[:pos]
    return line.strip()
