"""Source spans: line/column ranges inside descriptor (and query) text.

A :class:`Span` names the region of source text a parsed construct came
from, so static analysis (:mod:`repro.diag`) can point diagnostics at the
offending token instead of just naming it.  Spans are recorded by the
descriptor parsers (:mod:`repro.metadata.tokens` builds them from scanner
positions; the INI-style schema/storage parsers build them from line
numbers) and ride along on AST nodes as non-comparing dataclass fields,
so adding them changed no equality or hashing semantics.

This module has no imports from the rest of the package; anything may
depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, 1-based lines and columns.

    ``end_line``/``end_column`` point one past the last character of the
    construct when known; a point span (``end == start``) is legal and
    means "at this position".
    """

    line: int
    column: int
    end_line: int = 0
    end_column: int = 0

    def __post_init__(self) -> None:
        if self.end_line == 0:
            object.__setattr__(self, "end_line", self.line)
            object.__setattr__(self, "end_column", self.column)

    @staticmethod
    def point(line: int, column: int) -> "Span":
        return Span(line, column, line, column)

    def merge(self, other: Optional["Span"]) -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        if other is None:
            return self
        lo = min((self.line, self.column), (other.line, other.column))
        hi = max(
            (self.end_line, self.end_column), (other.end_line, other.end_column)
        )
        return Span(lo[0], lo[1], hi[0], hi[1])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"
