"""Component II of the meta-data descriptor: dataset storage.

The storage component names the dataset, binds it to a schema, and lists
the cluster nodes / directories holding its files (paper Figure 4)::

    [IparsData]
    DatasetDescription = IPARS
    DIR[0] = osu0/ipars
    DIR[1] = osu1/ipars
    ...

``osu0/ipars`` means directory ``ipars`` on node ``osu0``.  Layout file
patterns refer to these entries positionally as ``DIR[$DIRID]/...``; the
directory index is therefore the join point between the storage component
and the layout component.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import MetadataValidationError
from .schema import _looks_like_storage, iter_sections
from .spans import Span

_DIR_KEY = re.compile(r"^DIR\[(\d+)\]$")


@dataclass(frozen=True)
class DirEntry:
    """One storage directory: ``DIR[index] = node/path``."""

    index: int
    node: str
    path: str
    #: Source span of the ``DIR[i]`` key (parse-time only, non-comparing).
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def spec(self) -> str:
        return f"{self.node}/{self.path}" if self.path else self.node

    def __str__(self) -> str:
        return f"DIR[{self.index}] = {self.spec}"


@dataclass
class StorageDescriptor:
    """Placement of one dataset on the (virtual) cluster."""

    dataset_name: str
    schema_name: str
    dirs: List[DirEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen = set()
        for entry in self.dirs:
            if entry.index in seen:
                raise MetadataValidationError(
                    f"DIR[{entry.index}] declared twice for dataset "
                    f"{self.dataset_name!r}"
                )
            seen.add(entry.index)
        # Keep entries sorted by index for deterministic enumeration.
        self.dirs.sort(key=lambda e: e.index)

    def __len__(self) -> int:
        return len(self.dirs)

    def __iter__(self) -> Iterator[DirEntry]:
        return iter(self.dirs)

    def dir(self, index: int) -> DirEntry:
        for entry in self.dirs:
            if entry.index == index:
                return entry
        raise MetadataValidationError(
            f"dataset {self.dataset_name!r} has no DIR[{index}] "
            f"(have indices {[e.index for e in self.dirs]})"
        )

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Distinct node names, in first-appearance order."""
        out = []
        for entry in self.dirs:
            if entry.node not in out:
                out.append(entry.node)
        return tuple(out)

    def dirs_on_node(self, node: str) -> List[DirEntry]:
        return [e for e in self.dirs if e.node == node]

    def to_text(self) -> str:
        lines = [f"[{self.dataset_name}]", f"DatasetDescription = {self.schema_name}"]
        lines.extend(str(e) for e in self.dirs)
        return "\n".join(lines) + "\n"


def parse_storage(text: str) -> Dict[str, StorageDescriptor]:
    """Parse all storage sections from descriptor text.

    Sections without storage keys are assumed to be schemas and skipped.
    """
    out: Dict[str, StorageDescriptor] = {}
    for name, entries in iter_sections(text):
        if not _looks_like_storage(entries):
            continue
        schema_name = None
        dirs: List[DirEntry] = []
        for key, value, span in entries:
            if key == "DatasetDescription":
                if schema_name is not None:
                    raise MetadataValidationError(
                        f"dataset {name!r} declares DatasetDescription twice"
                    )
                schema_name = value
                continue
            match = _DIR_KEY.match(key)
            if match:
                dirs.append(_parse_dir_entry(int(match.group(1)), value, span))
                continue
            raise MetadataValidationError(
                f"unknown storage key {key!r} in dataset {name!r}"
            )
        if schema_name is None:
            raise MetadataValidationError(
                f"storage section [{name}] is missing DatasetDescription"
            )
        if not dirs:
            raise MetadataValidationError(
                f"storage section [{name}] lists no DIR[...] entries"
            )
        if name in out:
            raise MetadataValidationError(f"dataset {name!r} declared twice")
        out[name] = StorageDescriptor(name, schema_name, dirs)
    return out


def _parse_dir_entry(
    index: int, value: str, span: Optional[Span] = None
) -> DirEntry:
    value = value.strip()
    if not value:
        raise MetadataValidationError(f"DIR[{index}] entry is empty")
    node, _, path = value.partition("/")
    return DirEntry(index, node, path, span)
