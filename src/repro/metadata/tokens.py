"""Character-level scanner shared by the descriptor parsers.

The meta-data description language mixes INI-like sections (schema and
storage components) with a brace-structured layout component containing
embedded arithmetic expressions, so the parsers are hand-rolled recursive
descent over this scanner rather than a table-driven lexer.  The scanner
tracks line/column positions for diagnostics and knows how to skip ``//``
line comments and ``{* ... *}`` block comments (both appear in the paper's
Figure 4).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Tuple

from ..errors import MetadataSyntaxError
from .spans import Span

#: Characters permitted inside identifiers.
_IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


class Scanner:
    """A peekable cursor over descriptor source text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)
        #: Offsets of line starts, built lazily on the first ``location``
        #: call.  The text is immutable, so the table never invalidates;
        #: it turns position lookups into a bisect instead of a rescan of
        #: the whole text (diagnostics-heavy parses used to be O(n^2)).
        self._line_starts: Optional[List[int]] = None

    # -- position / diagnostics -------------------------------------------

    def location(self, pos: int = -1) -> Tuple[int, int]:
        """(line, column), both 1-based, of ``pos`` (default: current)."""
        if pos < 0:
            pos = self.pos
        starts = self._line_starts
        if starts is None:
            starts = [0]
            find = self.text.find
            nl = find("\n")
            while nl >= 0:
                starts.append(nl + 1)
                nl = find("\n", nl + 1)
            self._line_starts = starts
        line = bisect_right(starts, pos)
        column = pos - starts[line - 1] + 1
        return line, column

    def mark(self) -> int:
        """Position of the next significant character (for span starts)."""
        self.skip_trivia()
        return self.pos

    def span(self, start: int, end: int = -1) -> Span:
        """A :class:`Span` covering ``[start, end)`` (default: to here)."""
        if end < 0:
            end = self.pos
        line, column = self.location(start)
        end_line, end_column = self.location(end)
        return Span(line, column, end_line, end_column)

    def error(self, message: str) -> MetadataSyntaxError:
        line, column = self.location()
        return MetadataSyntaxError(message, line, column)

    # -- basic cursor ops ---------------------------------------------------

    def at_end(self) -> bool:
        self.skip_trivia()
        return self.pos >= self.length

    def peek_char(self) -> str:
        """Next significant character without consuming (empty at EOF)."""
        self.skip_trivia()
        if self.pos >= self.length:
            return ""
        return self.text[self.pos]

    def skip_trivia(self) -> None:
        """Skip whitespace, ``//`` comments, and ``{* ... *}`` comments."""
        while self.pos < self.length:
            ch = self.text[self.pos]
            if ch.isspace():
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                nl = self.text.find("\n", self.pos)
                self.pos = self.length if nl < 0 else nl + 1
            elif self.text.startswith("{*", self.pos):
                end = self.text.find("*}", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated {* comment")
                self.pos = end + 2
            else:
                return

    def expect(self, ch: str) -> None:
        """Consume exactly ``ch`` (after trivia) or raise."""
        self.skip_trivia()
        if self.pos >= self.length or self.text[self.pos] != ch:
            got = self.text[self.pos] if self.pos < self.length else "<eof>"
            raise self.error(f"expected {ch!r}, got {got!r}")
        self.pos += 1

    def try_consume(self, ch: str) -> bool:
        """Consume ``ch`` if it is next; return whether it was."""
        if self.peek_char() == ch:
            self.pos += 1
            return True
        return False

    # -- token readers -------------------------------------------------------

    def read_ident(self, what: str = "identifier") -> str:
        """Read an identifier (letters, digits, underscore)."""
        self.skip_trivia()
        start = self.pos
        while self.pos < self.length and self.text[self.pos] in _IDENT_CHARS:
            self.pos += 1
        if self.pos == start:
            got = self.text[start] if start < self.length else "<eof>"
            raise self.error(f"expected {what}, got {got!r}")
        return self.text[start : self.pos]

    def peek_ident(self) -> str:
        """Look ahead at the next identifier without consuming (or '')."""
        saved = self.pos
        try:
            self.skip_trivia()
            start = self.pos
            while self.pos < self.length and self.text[self.pos] in _IDENT_CHARS:
                self.pos += 1
            return self.text[start : self.pos]
        finally:
            self.pos = saved

    def read_name(self) -> str:
        """Read a dataset name: quoted string or bare identifier."""
        self.skip_trivia()
        if self.pos < self.length and self.text[self.pos] == '"':
            return self.read_quoted()
        return self.read_ident("name")

    def read_quoted(self) -> str:
        """Read a double-quoted string (no escapes needed in descriptors)."""
        self.skip_trivia()
        if self.pos >= self.length or self.text[self.pos] != '"':
            raise self.error("expected quoted string")
        end = self.text.find('"', self.pos + 1)
        if end < 0:
            raise self.error("unterminated string")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return value

    def read_balanced_until(self, stops: str) -> str:
        """Read raw text until one of ``stops`` at paren/bracket depth zero.

        Comments inside are skipped.  The stop character is *not* consumed.
        Used to slice out expression substrings (loop bounds, ranges) that
        are then handed to :mod:`repro.metadata.expressions`.
        """
        self.skip_trivia()
        out = []
        depth = 0
        while self.pos < self.length:
            if self.text.startswith("//", self.pos) or self.text.startswith(
                "{*", self.pos
            ):
                self.skip_trivia()
                out.append(" ")
                continue
            ch = self.text[self.pos]
            if ch in "([":
                depth += 1
            elif ch in ")]":
                if depth == 0 and ch in stops:
                    break
                depth -= 1
                if depth < 0:
                    raise self.error(f"unbalanced {ch!r}")
            elif depth == 0 and ch in stops:
                break
            out.append(ch)
            self.pos += 1
        if self.pos >= self.length:
            raise self.error(f"expected one of {stops!r} before end of input")
        return "".join(out).strip()

    def read_until_whitespace(self) -> str:
        """Read a run of non-whitespace text (used for file path patterns)."""
        self.skip_trivia()
        start = self.pos
        while self.pos < self.length and not self.text[self.pos].isspace():
            # A '}' closing the enclosing clause also terminates the run.
            if self.text[self.pos] in "}{":
                break
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a path pattern")
        return self.text[start : self.pos]

    def read_rest_of_line(self) -> str:
        """Read to end of line, stripping comments and whitespace."""
        nl = self.text.find("\n", self.pos)
        if nl < 0:
            nl = self.length
        raw = self.text[self.pos : nl]
        self.pos = nl
        comment = raw.find("//")
        if comment >= 0:
            raw = raw[:comment]
        return raw.strip()
