"""Scalar type system for dataset schemas.

The meta-data description language declares virtual-table attributes with
C-like type names (``short int``, ``int``, ``float``, ``double`` ...), as in
Figure 4 of the paper.  This module maps those names onto fixed byte widths
and numpy dtypes so that generated extractors can decode raw file bytes with
zero-copy ``numpy.frombuffer`` views.

Byte order is part of the type: scientific flat files are frequently written
on big-endian hardware and read on little-endian clusters, so every
:class:`ScalarType` carries an explicit endianness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchemaError

#: Endianness markers accepted by :func:`parse_type`.
LITTLE_ENDIAN = "<"
BIG_ENDIAN = ">"


@dataclass(frozen=True)
class ScalarType:
    """A fixed-width scalar attribute type.

    Attributes
    ----------
    name:
        Canonical language-level name (``"short int"``, ``"float"``, ...).
    kind:
        numpy kind character: ``"i"`` signed int, ``"u"`` unsigned int,
        ``"f"`` float, ``"S"`` fixed bytes.
    size:
        Width in bytes of one value.
    byteorder:
        ``"<"`` or ``">"``; ignored for 1-byte types.
    """

    name: str
    kind: str
    size: int
    byteorder: str = LITTLE_ENDIAN

    @property
    def dtype(self) -> np.dtype:
        """The numpy dtype that decodes one raw value of this type."""
        if self.kind == "S":
            return np.dtype(f"S{self.size}")
        if self.size == 1:
            return np.dtype(f"{self.kind}1")
        return np.dtype(f"{self.byteorder}{self.kind}{self.size}")

    @property
    def is_numeric(self) -> bool:
        return self.kind in ("i", "u", "f")

    @property
    def is_integer(self) -> bool:
        return self.kind in ("i", "u")

    @property
    def is_float(self) -> bool:
        return self.kind == "f"

    def with_byteorder(self, byteorder: str) -> "ScalarType":
        """Return a copy of this type with a different byte order."""
        if byteorder not in (LITTLE_ENDIAN, BIG_ENDIAN):
            raise SchemaError(f"invalid byte order {byteorder!r}")
        return ScalarType(self.name, self.kind, self.size, byteorder)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# Canonical type table: language name -> (kind, size).
_TYPE_TABLE = {
    "char": ("i", 1),
    "unsigned char": ("u", 1),
    "byte": ("u", 1),
    "short": ("i", 2),
    "short int": ("i", 2),
    "unsigned short": ("u", 2),
    "int": ("i", 4),
    "unsigned int": ("u", 4),
    "long": ("i", 8),
    "long int": ("i", 8),
    "long long": ("i", 8),
    "float": ("f", 4),
    "double": ("f", 8),
}

#: Aliases tolerated in descriptors (HDF5-flavoured names, as the paper
#: borrows keywords from HDF5).
_ALIASES = {
    "int8": "char",
    "uint8": "unsigned char",
    "int16": "short int",
    "uint16": "unsigned short",
    "int32": "int",
    "uint32": "unsigned int",
    "int64": "long int",
    "float32": "float",
    "float64": "double",
    "real": "float",
}


def canonical_type_names() -> tuple:
    """All canonical type names, longest first (for greedy lexing)."""
    return tuple(sorted(_TYPE_TABLE, key=len, reverse=True))


#: Byte-order prefixes accepted in type declarations: flat files written
#: on big-endian hardware (the common case for 2004-era scientific data)
#: declare e.g. ``X = be float``.
_ORDER_PREFIXES = {
    "be": BIG_ENDIAN,
    "big endian": BIG_ENDIAN,
    "le": LITTLE_ENDIAN,
    "little endian": LITTLE_ENDIAN,
}


def parse_type(text: str, byteorder: str = LITTLE_ENDIAN) -> ScalarType:
    """Parse a type name from a schema declaration.

    Accepts canonical C-like names (``"short int"``), HDF5-flavoured
    aliases (``"int16"``), and an optional byte-order prefix
    (``"be float"``, ``"little endian int"``).  Whitespace runs are
    collapsed; matching is case-insensitive.

    Raises
    ------
    SchemaError
        If the name does not denote a known scalar type.
    """
    norm = " ".join(text.strip().lower().split())
    for prefix, order in _ORDER_PREFIXES.items():
        if norm.startswith(prefix + " "):
            candidate = norm[len(prefix) + 1 :]
            if _ALIASES.get(candidate, candidate) in _TYPE_TABLE:
                byteorder = order
                norm = candidate
                break
    norm = _ALIASES.get(norm, norm)
    if norm not in _TYPE_TABLE:
        raise SchemaError(f"unknown attribute type {text!r}")
    kind, size = _TYPE_TABLE[norm]
    return ScalarType(norm, kind, size, byteorder)


def type_from_dtype(dtype: np.dtype) -> ScalarType:
    """Map a numpy dtype back to the closest language-level type.

    Used when building descriptors programmatically from numpy arrays.
    """
    dtype = np.dtype(dtype)
    # Prefer the conventional C names over their short synonyms.
    preferred = ("char", "unsigned char", "short int", "unsigned short",
                 "int", "unsigned int", "long int", "float", "double")
    candidates = [(n, _TYPE_TABLE[n]) for n in preferred]
    candidates += [item for item in _TYPE_TABLE.items() if item[0] not in preferred]
    for name, (kind, size) in candidates:
        if dtype.kind == kind and dtype.itemsize == size:
            byteorder = BIG_ENDIAN if dtype.byteorder == ">" else LITTLE_ENDIAN
            return ScalarType(name, kind, size, byteorder)
    raise SchemaError(f"no language type matches dtype {dtype}")
