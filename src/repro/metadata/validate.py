"""Semantic validation of assembled descriptors.

Validation runs once at descriptor load time, before any code generation,
so that layout mistakes surface as clear errors instead of as garbage
query results.  The checks enforce the semantic rules documented in
:mod:`repro.metadata.layout`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from ..errors import MetadataValidationError
from .layout import (
    AttrGroup,
    DatasetNode,
    LoopNode,
    iter_attr_names,
    iter_loop_vars,
)

if TYPE_CHECKING:  # pragma: no cover
    from .descriptor import Descriptor


def validate_descriptor(descriptor: "Descriptor") -> None:
    """Run every check; raise :class:`MetadataValidationError` on failure."""
    leaves = descriptor.layout.leaves()
    if not leaves:
        raise MetadataValidationError(
            f"dataset {descriptor.name!r} has no leaf DATASET with a DATASPACE"
        )
    _check_tree_shape(descriptor.layout)
    attr_owner: Dict[str, str] = {}
    for leaf in leaves:
        _check_leaf(descriptor, leaf, attr_owner)
    _check_schema_coverage(descriptor, leaves)
    _check_index_attrs(descriptor)


def _check_tree_shape(root: DatasetNode) -> None:
    for node in root.walk():
        if node.is_leaf:
            if not node.data.is_leaf:
                raise MetadataValidationError(
                    f"leaf dataset {node.name!r} has a DATASPACE but its "
                    "DATA clause lists no files"
                )
        else:
            if not node.children:
                raise MetadataValidationError(
                    f"dataset {node.name!r} has neither a DATASPACE nor "
                    "nested DATASETs"
                )
            if node.data.patterns:
                raise MetadataValidationError(
                    f"non-leaf dataset {node.name!r} lists file patterns"
                )


def _check_leaf(
    descriptor: "Descriptor", leaf: DatasetNode, attr_owner: Dict[str, str]
) -> None:
    schema = descriptor.schema
    schema_name = leaf.effective_schema_name()
    if schema_name is not None and schema_name != descriptor.storage.schema_name:
        if schema_name not in descriptor.all_schemas:
            raise MetadataValidationError(
                f"leaf {leaf.name!r} references undefined schema {schema_name!r}"
            )

    binding_vars = {b.var for b in leaf.data.bindings}
    _check_bindings_unique(leaf)

    # Dataspace attribute names must be schema attributes and must not be
    # stored twice (within this leaf or by another leaf).
    seen_here: Set[str] = set()
    for name in iter_attr_names(leaf.dataspace):
        if name not in schema:
            raise MetadataValidationError(
                f"leaf {leaf.name!r} stores {name!r}, which is not an "
                f"attribute of schema {schema.name!r}"
            )
        if name in seen_here:
            raise MetadataValidationError(
                f"leaf {leaf.name!r} stores attribute {name!r} twice"
            )
        seen_here.add(name)
        if name in attr_owner:
            raise MetadataValidationError(
                f"attribute {name!r} is stored by both {attr_owner[name]!r} "
                f"and {leaf.name!r}; each attribute must live in one leaf"
            )
        attr_owner[name] = leaf.name

    _check_loops(leaf, binding_vars)

    # File pattern variables must all be bound.
    for pattern in leaf.data.patterns:
        unbound = pattern.free_vars() - binding_vars
        if unbound:
            raise MetadataValidationError(
                f"file pattern {pattern} in leaf {leaf.name!r} uses unbound "
                f"variables {sorted(unbound)}"
            )

    # Every enumerated directory index must exist in the storage component.
    valid_dirs = {e.index for e in descriptor.storage.dirs}
    for env in leaf.data.binding_env_iter():
        for pattern in leaf.data.patterns:
            dir_index, relpath = pattern.expand(env)
            if dir_index not in valid_dirs:
                raise MetadataValidationError(
                    f"pattern {pattern} in leaf {leaf.name!r} evaluates to "
                    f"DIR[{dir_index}] under {env}, but the storage section "
                    f"only declares indices {sorted(valid_dirs)}"
                )
            if not relpath or relpath.startswith("/"):
                raise MetadataValidationError(
                    f"pattern {pattern} expands to invalid path {relpath!r}"
                )


def _check_bindings_unique(leaf: DatasetNode) -> None:
    seen: Set[str] = set()
    for binding in leaf.data.bindings:
        if binding.var in seen:
            raise MetadataValidationError(
                f"leaf {leaf.name!r} binds variable {binding.var!r} twice"
            )
        seen.add(binding.var)


def _check_loops(leaf: DatasetNode, binding_vars: Set[str]) -> None:
    """Loop variables must not shadow; bounds may only use binding vars."""

    def recurse(items, path_vars: List[str]) -> None:
        for item in items:
            if isinstance(item, AttrGroup):
                continue
            assert isinstance(item, LoopNode)
            if item.var in path_vars:
                raise MetadataValidationError(
                    f"leaf {leaf.name!r}: LOOP variable {item.var!r} shadows "
                    "an enclosing loop with the same name"
                )
            if item.var in binding_vars:
                raise MetadataValidationError(
                    f"leaf {leaf.name!r}: LOOP variable {item.var!r} collides "
                    "with a DATA binding variable"
                )
            bad = item.range.free_vars() - binding_vars
            if bad:
                raise MetadataValidationError(
                    f"leaf {leaf.name!r}: bounds of LOOP {item.var} use "
                    f"{sorted(bad)}; only DATA binding variables may appear "
                    "in loop bounds (chunk sizes must be per-file constants)"
                )
            recurse(item.body, path_vars + [item.var])

    recurse(leaf.dataspace, [])


def _check_schema_coverage(descriptor: "Descriptor", leaves: List[DatasetNode]) -> None:
    """Every schema attribute must be stored somewhere or implicit."""
    stored: Set[str] = set()
    implicit: Set[str] = set()
    for leaf in leaves:
        stored.update(iter_attr_names(leaf.dataspace))
        implicit.update(iter_loop_vars(leaf.dataspace))
        implicit.update(b.var for b in leaf.data.bindings)
    for attr in descriptor.schema:
        if attr.name in stored:
            continue
        if attr.name in implicit:
            if not attr.type.is_integer:
                raise MetadataValidationError(
                    f"attribute {attr.name!r} is implicit (a loop or binding "
                    f"variable) and must have an integer type, not "
                    f"{attr.type.name!r}"
                )
            continue
        raise MetadataValidationError(
            f"schema attribute {attr.name!r} is neither stored in any leaf "
            "nor supplied implicitly by a loop or binding variable"
        )


def _check_index_attrs(descriptor: "Descriptor") -> None:
    for node in descriptor.layout.walk():
        for attr in node.index_attrs:
            if attr not in descriptor.schema:
                raise MetadataValidationError(
                    f"DATAINDEX attribute {attr!r} in dataset {node.name!r} "
                    f"is not in schema {descriptor.schema.name!r}"
                )
