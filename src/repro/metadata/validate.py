"""Semantic validation of assembled descriptors.

Validation runs once at descriptor load time, before any code generation,
so that layout mistakes surface as clear errors instead of as garbage
query results.

The checks themselves live in :mod:`repro.diag.linter`, which collects
*every* finding with source spans instead of stopping at the first one
(``repro check`` exposes the full list).  This module keeps the historical
fail-fast contract: :func:`validate_descriptor` runs the linter and raises
a :class:`~repro.errors.MetadataValidationError` carrying the first
error's message — the linter mirrors the original check order, so which
error surfaces first (and its text) is unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import MetadataValidationError

if TYPE_CHECKING:  # pragma: no cover
    from .descriptor import Descriptor


def validate_descriptor(descriptor: "Descriptor") -> None:
    """Run every check; raise :class:`MetadataValidationError` on failure."""
    from ..diag.linter import lint_descriptor

    collector = lint_descriptor(descriptor)
    first = collector.first_error()
    if first is not None:
        raise MetadataValidationError(first.message)
