"""XML embedding of the meta-data description language.

The paper notes that "the description language we have developed can
easily be embedded in an XML file and made machine independent"
(Section 3.1).  This module is that embedding: a lossless XML
serialisation of all three descriptor components, so descriptors can be
exchanged with XML-based tooling (the BinX/BFD/DFDL ecosystem the paper
positions itself against).

Element structure::

    <descriptor>
      <schema name="IPARS">
        <attribute name="REL" type="short int"/>
        ...
      </schema>
      <storage dataset="IparsData" schema="IPARS">
        <dir index="0" node="osu0" path="ipars"/>
      </storage>
      <dataset name="IparsData">
        <datatype schema="IPARS"/>
        <dataindex>REL TIME</dataindex>
        <dataset name="ipars1">
          <dataspace>
            <loop var="GRID" lo="$DIRID*100+1" hi="($DIRID+1)*100" step="1">
              <attributes>X Y Z</attributes>
            </loop>
          </dataspace>
          <data>
            <file pattern="DIR[$DIRID]/COORDS"/>
            <binding var="DIRID" lo="0" hi="3" step="1"/>
          </data>
        </dataset>
      </dataset>
    </descriptor>

Expressions are carried as their textual form (the expression grammar is
already machine independent); round-tripping is exact because ``str()``
of an expression re-parses to an equivalent AST.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from ..errors import MetadataSyntaxError, MetadataValidationError
from .descriptor import Descriptor, build_descriptor
from .expressions import parse_expr, parse_range, RangeExpr
from .layout import (
    AttrGroup,
    Binding,
    DataClause,
    DatasetNode,
    FilePattern,
    LoopNode,
    SpaceItem,
    parse_file_pattern,
)
from .schema import Attribute, Schema
from .storage import DirEntry, StorageDescriptor
from .types import parse_type


# ---------------------------------------------------------------------------
# Serialisation
# ---------------------------------------------------------------------------


def descriptor_to_xml(descriptor: Descriptor) -> str:
    """Serialise a descriptor to a standalone XML document string."""
    root = ET.Element("descriptor")
    _schema_element(root, _base_schema(descriptor))
    _storage_element(root, descriptor.storage)
    _dataset_element(root, descriptor.layout)
    _indent(root)
    return ET.tostring(root, encoding="unicode")


def _base_schema(descriptor: Descriptor) -> Schema:
    """The schema without layout-defined extra attributes (those are
    serialised inside their DATATYPE elements)."""
    extra = {a.name for node in descriptor.layout.walk() for a in node.extra_attrs}
    return Schema(
        descriptor.schema.name,
        [a for a in descriptor.schema.attributes if a.name not in extra],
    )


def _schema_element(parent: ET.Element, schema: Schema) -> None:
    el = ET.SubElement(parent, "schema", name=schema.name)
    for attr in schema:
        ET.SubElement(el, "attribute", name=attr.name, type=attr.type.name)


def _storage_element(parent: ET.Element, storage: StorageDescriptor) -> None:
    el = ET.SubElement(
        parent, "storage", dataset=storage.dataset_name, schema=storage.schema_name
    )
    for entry in storage.dirs:
        ET.SubElement(
            el, "dir", index=str(entry.index), node=entry.node, path=entry.path
        )


def _dataset_element(parent: ET.Element, node: DatasetNode) -> None:
    el = ET.SubElement(parent, "dataset", name=node.name)
    if node.schema_name:
        ET.SubElement(el, "datatype", schema=node.schema_name)
    for attr in node.extra_attrs:
        ET.SubElement(el, "datatype-attribute", name=attr.name,
                      type=attr.type.name)
    if node.index_attrs:
        ET.SubElement(el, "dataindex").text = " ".join(node.index_attrs)
    if node.dataspace:
        space = ET.SubElement(el, "dataspace")
        for item in node.dataspace:
            _space_element(space, item)
    if node.data.patterns or node.data.bindings:
        data = ET.SubElement(el, "data")
        for pattern in node.data.patterns:
            ET.SubElement(data, "file", pattern=str(pattern))
        for binding in node.data.bindings:
            ET.SubElement(
                data,
                "binding",
                var=binding.var,
                lo=str(binding.range.lo),
                hi=str(binding.range.hi),
                step=str(binding.range.stride),
            )
    for child in node.children:
        _dataset_element(el, child)


def _space_element(parent: ET.Element, item: SpaceItem) -> None:
    if isinstance(item, AttrGroup):
        ET.SubElement(parent, "attributes").text = " ".join(item.names)
        return
    assert isinstance(item, LoopNode)
    el = ET.SubElement(
        parent,
        "loop",
        var=item.var,
        lo=str(item.range.lo),
        hi=str(item.range.hi),
        step=str(item.range.stride),
    )
    for child in item.body:
        _space_element(el, child)


def _indent(el: ET.Element, depth: int = 0) -> None:
    pad = "\n" + "  " * depth
    if len(el):
        if not (el.text or "").strip():
            el.text = pad + "  "
        for child in el:
            _indent(child, depth + 1)
            child.tail = pad + "  "
        el[-1].tail = pad
    elif depth and not (el.text or "").strip():
        el.text = None


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def xml_to_descriptor(text: str, dataset_name: Optional[str] = None) -> Descriptor:
    """Parse an XML descriptor document into a validated Descriptor."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise MetadataSyntaxError(f"malformed descriptor XML: {exc}") from exc
    if root.tag != "descriptor":
        raise MetadataSyntaxError(
            f"root element must be <descriptor>, got <{root.tag}>"
        )

    schemas: Dict[str, Schema] = {}
    for el in root.findall("schema"):
        schema = _parse_schema(el)
        schemas[schema.name] = schema

    storages: Dict[str, StorageDescriptor] = {}
    for el in root.findall("storage"):
        storage = _parse_storage(el)
        storages[storage.dataset_name] = storage

    layouts: Dict[str, DatasetNode] = {}
    for el in root.findall("dataset"):
        node = _parse_dataset(el)
        layouts[node.name] = node

    return build_descriptor(schemas, storages, layouts, dataset_name)


def _required(el: ET.Element, name: str) -> str:
    value = el.get(name)
    if value is None:
        raise MetadataSyntaxError(
            f"<{el.tag}> element is missing required attribute {name!r}"
        )
    return value


def _parse_schema(el: ET.Element) -> Schema:
    attributes = [
        Attribute(_required(a, "name"), parse_type(_required(a, "type")))
        for a in el.findall("attribute")
    ]
    return Schema(_required(el, "name"), attributes)


def _parse_storage(el: ET.Element) -> StorageDescriptor:
    dirs = [
        DirEntry(
            int(_required(d, "index")), _required(d, "node"), d.get("path", "")
        )
        for d in el.findall("dir")
    ]
    if not dirs:
        raise MetadataValidationError(
            f"storage for {el.get('dataset')!r} lists no <dir> entries"
        )
    return StorageDescriptor(_required(el, "dataset"), _required(el, "schema"), dirs)


def _parse_range_attrs(el: ET.Element) -> RangeExpr:
    return RangeExpr(
        parse_expr(_required(el, "lo")),
        parse_expr(_required(el, "hi")),
        parse_expr(el.get("step", "1")),
    )


def _parse_space_item(el: ET.Element) -> SpaceItem:
    if el.tag == "attributes":
        names = tuple((el.text or "").split())
        if not names:
            raise MetadataSyntaxError("<attributes> element is empty")
        return AttrGroup(names)
    if el.tag == "loop":
        body = tuple(_parse_space_item(child) for child in el)
        if not body:
            raise MetadataValidationError(
                f"<loop var={el.get('var')!r}> has an empty body"
            )
        return LoopNode(_required(el, "var"), _parse_range_attrs(el), body)
    raise MetadataSyntaxError(f"unexpected <{el.tag}> inside <dataspace>")


def _parse_dataset(el: ET.Element) -> DatasetNode:
    node = DatasetNode(name=_required(el, "name"))
    datatype = el.find("datatype")
    if datatype is not None:
        node.schema_name = _required(datatype, "schema")
    for extra in el.findall("datatype-attribute"):
        node.extra_attrs.append(
            Attribute(_required(extra, "name"), parse_type(_required(extra, "type")))
        )
    dataindex = el.find("dataindex")
    if dataindex is not None:
        node.index_attrs = tuple((dataindex.text or "").split())
    dataspace = el.find("dataspace")
    if dataspace is not None:
        node.dataspace = tuple(_parse_space_item(child) for child in dataspace)
    data = el.find("data")
    patterns: List[FilePattern] = []
    bindings: List[Binding] = []
    if data is not None:
        for f in data.findall("file"):
            patterns.append(parse_file_pattern(_required(f, "pattern")))
        for b in data.findall("binding"):
            bindings.append(Binding(_required(b, "var"), _parse_range_attrs(b)))
    children = [_parse_dataset(child) for child in el.findall("dataset")]
    child_refs = tuple(c.name for c in children)
    node.data = DataClause(
        child_refs=child_refs if not patterns else (),
        patterns=tuple(patterns),
        bindings=tuple(bindings),
    )
    for child in children:
        child.parent = node
        node.children.append(child)
    if node.is_leaf and node.children:
        raise MetadataValidationError(
            f"dataset {node.name!r} has both a dataspace and nested datasets"
        )
    return node
