"""Out-of-process STORM: the wire protocol and network transports.

The paper's STORM middleware is a client/server system — "the query
service is the entry point for clients ... data source services provide a
view of a dataset" (Section 2.3) — with the services on different
machines.  This package makes that split real: data-source nodes run as
separate OS processes (:class:`NodeServer`, the ``repro serve`` CLI)
speaking a small length-prefixed protocol (:mod:`~repro.net.framing`),
extraction plans travel out as JSON and result batches come back as raw
columnar buffers (:mod:`~repro.net.wire`), and the coordinator fans out
over pooled asyncio connections (:class:`TcpTransport`).

:class:`ProcessCluster` spawns and tears down an N-process cluster for
tests, benchmarks, and the ``repro cluster`` CLI.  The unified client
entry point over both the in-process and out-of-process paths is
:func:`repro.connect`.
"""

from .client import TcpTransport
from .procs import ProcessCluster
from .server import NodeServer

__all__ = ["NodeServer", "ProcessCluster", "TcpTransport"]
