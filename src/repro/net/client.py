"""Coordinator-side network transport: pooled asyncio node clients.

One :class:`TcpTransport` serves a whole cluster: it runs a private
asyncio event loop on a background thread and keeps a small connection
pool per node (``ExecOptions.max_connections_per_node``), with a global
in-flight semaphore (``ExecOptions.inflight_limit``) as admission
control — per-node backpressure comes from the pool, cluster-wide
backpressure from the semaphore.  The query service's worker threads
call the blocking :meth:`TcpTransport.execute_node`, which bridges onto
the loop with ``run_coroutine_threadsafe``; retries, timeouts, and
degraded results stay coordinator business, in
``QueryService._extract_nodes``, untouched.

Failure mapping keeps the chaos/retry semantics of the in-process path:
dials and resets surface as :class:`~repro.errors.NodeConnectionError`
(an :class:`~repro.errors.ExtractionError`, hence retryable); typed
ERROR frames are re-raised via :func:`repro.net.wire.decode_error`; a
coordinator-side :class:`~repro.faults.FaultInjector` is consulted
before every request (``node-down`` over sockets).  Each request is
traced as an ``rpc`` span tagged with round-trip time and payload sizes.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.afc import AlignedFileChunkSet, ExtractionPlan
from ..core.options import DEFAULT_OPTIONS, ExecOptions
from ..core.stats import IOStats
from ..core.table import VirtualTable, concat_tables
from ..errors import NodeConnectionError, TransportError
from ..obs.tracer import NULL_TRACER
from ..storm.transport import Transport
from . import framing, wire


class _Connection:
    """One open coordinator->node stream with its HELLO identity."""

    __slots__ = ("reader", "writer", "node", "broken")

    def __init__(self, reader, writer, node: str):
        self.reader = reader
        self.writer = writer
        self.node = node
        self.broken = False

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


class _NodePool:
    """Bounded connection pool for one node (lives on the loop thread)."""

    def __init__(self, node: str, host: str, port: int, limit: int):
        self.node = node
        self.host = host
        self.port = port
        self._sem = asyncio.Semaphore(max(1, limit))
        self._idle: deque = deque()
        self._all: List[_Connection] = []
        self.dials = 0

    async def acquire(self, connect_timeout: float) -> _Connection:
        await self._sem.acquire()
        try:
            while self._idle:
                conn = self._idle.popleft()
                if not conn.broken and not conn.writer.is_closing():
                    return conn
                conn.close()
            return await self._dial(connect_timeout)
        except BaseException:
            self._sem.release()
            raise

    def release(self, conn: _Connection) -> None:
        if conn.broken or conn.writer.is_closing():
            conn.close()
        else:
            self._idle.append(conn)
        self._sem.release()

    async def _dial(self, connect_timeout: float) -> _Connection:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=connect_timeout,
            )
        except asyncio.TimeoutError:
            raise NodeConnectionError(
                self.node,
                OSError(f"dial {self.host}:{self.port} timed out "
                        f"after {connect_timeout:g}s"),
            ) from None
        except OSError as exc:
            raise NodeConnectionError(self.node, exc) from None
        self.dials += 1
        conn = _Connection(reader, writer, self.node)
        try:
            welcome = await _hello(reader, writer)
        except (ConnectionError, OSError) as exc:
            conn.close()
            raise NodeConnectionError(self.node, exc) from None
        if welcome.get("node") != self.node:
            conn.close()
            raise TransportError(
                f"address {self.host}:{self.port} answered as node "
                f"{welcome.get('node')!r}, expected {self.node!r}"
            )
        self._all.append(conn)
        return conn

    def close_all(self) -> None:
        for conn in self._all:
            conn.close()
        self._idle.clear()


async def _hello(reader, writer) -> dict:
    """HELLO/WELCOME handshake; validates the protocol revision."""
    await framing.write_frame_async(
        writer,
        framing.HELLO,
        b'{"protocol": %d}' % framing.PROTOCOL_VERSION,
    )
    kind, payload = await framing.read_frame_async(reader)
    if kind != framing.WELCOME:
        raise TransportError(
            f"expected WELCOME, got {framing.kind_name(kind)}"
        )
    welcome = framing.decode_json(payload)
    if welcome.get("protocol") != framing.PROTOCOL_VERSION:
        raise TransportError(
            f"protocol mismatch: node speaks rev {welcome.get('protocol')}, "
            f"coordinator speaks rev {framing.PROTOCOL_VERSION}"
        )
    return welcome


class TcpTransport(Transport):
    """Fan out extraction over real sockets to node server processes."""

    scheme = "tcp"

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        options: ExecOptions = DEFAULT_OPTIONS,
        fault_injector=None,
        expected_dataset: Optional[str] = None,
    ):
        """Connect to node servers and learn which node each serves.

        Pool shape (``max_connections_per_node``, ``inflight_limit``)
        is fixed from ``options`` here, at connect time; per-call
        options still govern dial timeouts, batching, and I/O shape.
        """
        self.fault_injector = fault_injector
        self._options = options
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="tcp-transport", daemon=True
        )
        self._thread.start()
        self._inflight = self._call(self._make_semaphore(options))
        self._pools: Dict[str, _NodePool] = {}
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self.dataset = expected_dataset
        try:
            self._discover(list(addresses), options, expected_dataset)
        except BaseException:
            self.close()
            raise

    @staticmethod
    async def _make_semaphore(options: ExecOptions) -> asyncio.Semaphore:
        # Created on the loop so it binds the right event loop on 3.9.
        return asyncio.Semaphore(max(1, options.inflight_limit))

    def _call(self, coro):
        """Run a coroutine on the transport loop, blocking this thread."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # -- connect-time discovery ---------------------------------------------

    def _discover(
        self,
        addresses: List[Tuple[str, int]],
        options: ExecOptions,
        expected_dataset: Optional[str],
    ) -> None:
        """One HELLO per address: which node, which dataset, which rev."""

        async def probe(host: str, port: int) -> dict:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    timeout=options.connect_timeout,
                )
            except asyncio.TimeoutError:
                raise TransportError(
                    f"no node server at {host}:{port} "
                    f"(dial timed out after {options.connect_timeout:g}s)"
                ) from None
            except OSError as exc:
                raise TransportError(
                    f"no node server at {host}:{port}: {exc}"
                ) from None
            try:
                return await _hello(reader, writer)
            finally:
                writer.close()

        for host, port in addresses:
            welcome = self._call(probe(host, port))
            node = welcome.get("node")
            if not node:
                raise TransportError(
                    f"node server at {host}:{port} reported no node name"
                )
            if node in self.addresses:
                raise TransportError(
                    f"two servers ({self.addresses[node]} and "
                    f"{(host, port)}) both claim node {node!r}"
                )
            remote_dataset = welcome.get("dataset") or None
            if (
                expected_dataset
                and remote_dataset
                and remote_dataset != expected_dataset
            ):
                raise TransportError(
                    f"node {node!r} at {host}:{port} serves dataset "
                    f"{remote_dataset!r}, coordinator wants "
                    f"{expected_dataset!r}"
                )
            self.addresses[node] = (host, port)
            self._pools[node] = _NodePool(
                node, host, port, self._options.max_connections_per_node
            )

    @property
    def node_names(self) -> List[str]:
        return list(self.addresses)

    def _pool(self, node: str) -> _NodePool:
        try:
            return self._pools[node]
        except KeyError:
            raise TransportError(
                f"no server for node {node!r}; cluster has "
                f"{sorted(self._pools)}"
            ) from None

    # -- the Transport surface ----------------------------------------------

    def execute_node(
        self,
        node: str,
        plan: ExtractionPlan,
        afcs: List[AlignedFileChunkSet],
        stats: IOStats,
        tracer=NULL_TRACER,
        options=None,
    ) -> VirtualTable:
        opts = options if options is not None else DEFAULT_OPTIONS
        if self.fault_injector is not None:
            # node-down over sockets: unreachable before any bytes move.
            self.fault_injector.on_connect(node)
        payload = _encode_execute(plan, afcs, opts)
        start = time.perf_counter()
        if tracer.enabled:
            with tracer.span(
                "rpc", node=node, afcs=len(afcs),
                request_bytes=len(payload),
            ) as span:
                batches, done = self._submit(node, payload, opts)
                rtt = time.perf_counter() - start
                span.tag(
                    rtt_seconds=round(rtt, 6),
                    response_bytes=sum(len(b) for b in batches),
                    batches=len(batches),
                )
                tracer.metrics.record("net.requests")
                tracer.metrics.record(
                    "net.bytes_received", sum(len(b) for b in batches)
                )
        else:
            batches, done = self._submit(node, payload, opts)
        stats.merge(wire.decode_stats(done.get("stats", {})))
        if not batches:
            return wire.empty_table(plan)
        tables = [wire.decode_table(b) for b in batches]
        return tables[0] if len(tables) == 1 else concat_tables(tables)

    def _submit(self, node, payload, opts):
        future = asyncio.run_coroutine_threadsafe(
            self._execute(node, payload, opts), self._loop
        )
        # No timeout here: a hung node is the query service's business
        # (ExecOptions.node_timeout abandons the whole attempt).
        return future.result()

    async def _execute(self, node: str, payload: bytes, opts: ExecOptions):
        async with self._inflight:
            pool = self._pool(node)
            conn = await pool.acquire(opts.connect_timeout)
            try:
                try:
                    await framing.write_frame_async(
                        conn.writer, framing.EXECUTE, payload
                    )
                    batches: List[bytes] = []
                    while True:
                        kind, data = await framing.read_frame_async(
                            conn.reader
                        )
                        if kind == framing.BATCH:
                            batches.append(data)
                        elif kind == framing.DONE:
                            return batches, framing.decode_json(data)
                        elif kind == framing.ERROR:
                            raise wire.decode_error(
                                framing.decode_json(data), node
                            )
                        else:
                            raise TransportError(
                                f"unexpected {framing.kind_name(kind)} "
                                "frame in result stream"
                            )
                except (ConnectionError, OSError) as exc:
                    conn.broken = True
                    raise NodeConnectionError(node, exc) from None
            finally:
                pool.release(conn)

    # -- cluster-wide control ------------------------------------------------

    async def _simple_request(self, node: str, kind: int, want: int) -> None:
        pool = self._pool(node)
        conn = await pool.acquire(self._options.connect_timeout)
        try:
            try:
                await framing.write_frame_async(conn.writer, kind)
                got, _ = await framing.read_frame_async(conn.reader)
            except (ConnectionError, OSError) as exc:
                conn.broken = True
                raise NodeConnectionError(node, exc) from None
            if got != want:
                raise TransportError(
                    f"expected {framing.kind_name(want)}, got "
                    f"{framing.kind_name(got)}"
                )
        finally:
            pool.release(conn)

    def drop_caches(self) -> None:
        """Tell every node server to forget handles/segments (cold runs)."""
        for node in self.addresses:
            self._call(
                self._simple_request(node, framing.DROP_CACHES, framing.OK)
            )

    def ping(self, node: str) -> None:
        self._call(self._simple_request(node, framing.PING, framing.PONG))

    def close(self) -> None:
        if self._loop.is_closed():
            return

        async def _shutdown():
            for pool in self._pools.values():
                pool.close_all()

        try:
            self._call(_shutdown())
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __repr__(self) -> str:
        addrs = ", ".join(
            f"{node}={host}:{port}"
            for node, (host, port) in self.addresses.items()
        )
        return f"<TcpTransport {addrs}>"


def _encode_execute(
    plan: ExtractionPlan, afcs: List[AlignedFileChunkSet], opts: ExecOptions
) -> bytes:
    return json.dumps(
        {
            "plan": wire.encode_plan(plan, afcs),
            "options": wire.encode_options(opts),
        }
    ).encode("utf-8")
