"""Length-prefixed frames: the unit of the node wire protocol.

Every message on a coordinator<->node connection is one frame::

    +------+----------------------+------------------+
    | kind | payload length (u32) | payload bytes    |
    | 1 B  | big-endian           | length bytes     |
    +------+----------------------+------------------+

Frames are self-delimiting, so both ends can read exactly one message
without lookahead or sentinels; the 1-byte kind dispatches it.  Payloads
are either UTF-8 JSON (control messages, plans, stats) or the binary
columnar encoding of :func:`repro.net.wire.encode_table` (BATCH frames).

The same framing is exposed twice: blocking-socket helpers for the
threaded :class:`~repro.net.server.NodeServer`, and asyncio helpers for
the coordinator's pooled :class:`~repro.net.client.TcpTransport`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Tuple

from ..errors import TransportError

#: Protocol revision; bumped on any incompatible framing/payload change.
PROTOCOL_VERSION = 1

# -- frame kinds ------------------------------------------------------------

HELLO = 1        #: client -> server: identify and negotiate the protocol
WELCOME = 2      #: server -> client: node name, dataset, protocol, pid
EXECUTE = 3      #: client -> server: one extraction plan (JSON)
BATCH = 4        #: server -> client: one columnar result batch (binary)
DONE = 5         #: server -> client: end of result stream + IOStats
ERROR = 6        #: server -> client: typed failure for the last request
PING = 7         #: liveness probe
PONG = 8         #: liveness reply
DROP_CACHES = 9  #: client -> server: forget handles/segments (cold runs)
OK = 10          #: generic acknowledgement
SHUTDOWN = 11    #: client -> server: acknowledge and exit the process

KIND_NAMES = {
    HELLO: "HELLO", WELCOME: "WELCOME", EXECUTE: "EXECUTE", BATCH: "BATCH",
    DONE: "DONE", ERROR: "ERROR", PING: "PING", PONG: "PONG",
    DROP_CACHES: "DROP_CACHES", OK: "OK", SHUTDOWN: "SHUTDOWN",
}

_HEADER = struct.Struct("!BI")

#: Upper bound on one frame's payload; a desynchronised stream otherwise
#: shows up as a multi-gigabyte bogus length and an OOM instead of an
#: error.  Result batches are bounded by ``ExecOptions.batch_rows``.
MAX_FRAME_BYTES = 1 << 29  # 512 MiB


def kind_name(kind: int) -> str:
    return KIND_NAMES.get(kind, f"kind#{kind}")


def _check_length(kind: int, length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"oversized {kind_name(kind)} frame: {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); stream out of sync?"
        )


# -- blocking-socket side (server) ------------------------------------------


def recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; raise ConnectionError on EOF."""
    parts = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                "bytes read)"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def read_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one frame; raises ConnectionError when the peer hung up."""
    kind, length = _HEADER.unpack(recv_exact(sock, _HEADER.size))
    _check_length(kind, length)
    payload = recv_exact(sock, length) if length else b""
    return kind, payload


def write_frame(sock: socket.socket, kind: int, payload: bytes = b"") -> None:
    sock.sendall(_HEADER.pack(kind, len(payload)) + payload)


def write_json(sock: socket.socket, kind: int, obj: Any) -> None:
    write_frame(sock, kind, json.dumps(obj).encode("utf-8"))


# -- asyncio side (coordinator) ---------------------------------------------


async def read_frame_async(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one frame; raises ConnectionError on a truncated stream."""
    try:
        header = await reader.readexactly(_HEADER.size)
        kind, length = _HEADER.unpack(header)
        _check_length(kind, length)
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError(
            "connection closed mid-frame "
            f"({len(exc.partial)}/{exc.expected} bytes read)"
        ) from None
    return kind, payload


async def write_frame_async(
    writer: asyncio.StreamWriter, kind: int, payload: bytes = b""
) -> None:
    writer.write(_HEADER.pack(kind, len(payload)) + payload)
    await writer.drain()


def decode_json(payload: bytes) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed JSON frame payload: {exc}") from None
