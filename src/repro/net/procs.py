"""Spawn and tear down an N-process node cluster on this machine.

``repro cluster``, the real-process benchmarks, and the e2e tests all
need the same choreography: one ``repro serve`` subprocess per storage
node, port discovery, readiness waiting, and reliable teardown.
:class:`ProcessCluster` owns it.

Servers bind port 0 and publish their concrete address through a *port
file* (written atomically, see ``NodeServer.write_port_file``), so N
servers can start in parallel with no port races.  Each server's stderr
goes to ``<root>/_cluster/<node>.log`` for post-mortems.  Teardown sends
SIGTERM and escalates to SIGKILL; :meth:`kill_node` takes one node down
mid-run for chaos tests.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ClusterError


def _repro_src_dir() -> str:
    """The directory to put on PYTHONPATH so children import this repro."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class ProcessCluster:
    """An N-process STORM cluster: one ``repro serve`` per storage node."""

    def __init__(
        self,
        descriptor: str,
        root: str,
        nodes: Optional[Sequence[str]] = None,
        host: str = "127.0.0.1",
        rules: Sequence[str] = (),
        profile: Optional[str] = None,
        seed: int = 0,
        startup_timeout: float = 30.0,
        python: Optional[str] = None,
    ):
        """``descriptor`` is a path to a descriptor file, or descriptor
        text (written to ``<root>/_cluster/descriptor.desc``).  ``nodes``
        defaults to the storage nodes the descriptor names.  ``rules`` /
        ``profile`` / ``seed`` forward fault injection to every server
        (`repro serve --rule/--profile/--seed`): chaos lives with the
        process that owns the disk.
        """
        self.root = os.path.abspath(root)
        self.host = host
        self.rules = list(rules)
        self.profile = profile
        self.seed = seed
        self.startup_timeout = startup_timeout
        self.python = python or sys.executable
        self._dir = os.path.join(self.root, "_cluster")
        os.makedirs(self._dir, exist_ok=True)

        if os.path.exists(descriptor) and "\n" not in descriptor:
            self.descriptor_path = os.path.abspath(descriptor)
            with open(self.descriptor_path) as handle:
                self.descriptor_text = handle.read()
        else:
            self.descriptor_text = descriptor
            self.descriptor_path = os.path.join(self._dir, "descriptor.desc")
            with open(self.descriptor_path, "w") as handle:
                handle.write(descriptor)

        if nodes is None:
            from ..metadata import parse_descriptor

            parsed = parse_descriptor(self.descriptor_text)
            nodes = parsed.storage.nodes
        self.nodes: List[str] = list(nodes)
        self._procs: Dict[str, subprocess.Popen] = {}
        self._logs: Dict[str, str] = {}
        self.addresses: Dict[str, Tuple[str, int]] = {}

    # -- lifecycle -----------------------------------------------------------

    def launch(self) -> "ProcessCluster":
        """Start every node server and wait until all are reachable."""
        if self._procs:
            raise ClusterError("cluster already launched")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (_repro_src_dir(), env.get("PYTHONPATH")) if p
        )
        port_files = {}
        for node in self.nodes:
            port_file = os.path.join(self._dir, f"{node}.port")
            if os.path.exists(port_file):
                os.remove(port_file)
            port_files[node] = port_file
            log_path = os.path.join(self._dir, f"{node}.log")
            self._logs[node] = log_path
            command = [
                self.python, "-m", "repro", "serve", self.descriptor_path,
                "--root", self.root, "--node", node,
                "--host", self.host, "--port", "0",
                "--port-file", port_file,
                "--seed", str(self.seed),
            ]
            if self.profile:
                command += ["--profile", self.profile]
            for rule in self.rules:
                command += ["--rule", rule]
            log = open(log_path, "w")
            self._procs[node] = subprocess.Popen(
                command, env=env, stdout=log, stderr=subprocess.STDOUT
            )
            log.close()
        try:
            self._await_ports(port_files)
        except BaseException:
            self.terminate()
            raise
        return self

    def _await_ports(self, port_files: Dict[str, str]) -> None:
        deadline = time.monotonic() + self.startup_timeout
        pending = dict(port_files)
        while pending:
            for node, path in list(pending.items()):
                proc = self._procs[node]
                if proc.poll() is not None:
                    raise ClusterError(
                        f"node server {node!r} exited with status "
                        f"{proc.returncode} before binding; see "
                        f"{self._logs[node]}:\n{self._tail(node)}"
                    )
                if os.path.exists(path):
                    with open(path) as handle:
                        text = handle.read().split()
                    if len(text) == 2:
                        pending.pop(node)
                        self.addresses[node] = (text[0], int(text[1]))
            if pending and time.monotonic() > deadline:
                raise ClusterError(
                    f"node server(s) {sorted(pending)} not up after "
                    f"{self.startup_timeout:g}s"
                )
            if pending:
                time.sleep(0.02)

    def _tail(self, node: str, lines: int = 15) -> str:
        try:
            with open(self._logs[node]) as handle:
                return "".join(handle.readlines()[-lines:])
        except OSError:
            return "<no log>"

    @property
    def url(self) -> str:
        """The ``tcp://host:port,host:port`` URL of the running cluster."""
        if not self.addresses:
            raise ClusterError("cluster not launched")
        return "tcp://" + ",".join(
            f"{host}:{port}"
            for node, (host, port) in sorted(self.addresses.items())
        )

    def connect(self, **options):
        """A :class:`repro.client.Client` over this cluster."""
        from ..client import connect

        return connect(self, **options)

    # -- chaos / teardown ----------------------------------------------------

    def kill_node(self, node: str) -> None:
        """SIGKILL one node server mid-run (a machine dropping off)."""
        proc = self._procs.get(node)
        if proc is None:
            raise ClusterError(f"unknown or never-launched node {node!r}")
        proc.kill()
        proc.wait(timeout=10)

    def alive(self) -> Dict[str, bool]:
        return {
            node: proc.poll() is None for node, proc in self._procs.items()
        }

    def terminate(self) -> None:
        """Stop every server: SIGTERM, then SIGKILL after a grace period."""
        for proc in self._procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in self._procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
        self._procs.clear()
        self.addresses.clear()

    def __enter__(self) -> "ProcessCluster":
        if not self._procs:
            self.launch()
        return self

    def __exit__(self, *exc) -> None:
        self.terminate()

    def __repr__(self) -> str:
        state = "up" if self.addresses else "down"
        return (
            f"<ProcessCluster {len(self.nodes)} node(s) at {self.root!r} "
            f"[{state}]>"
        )
