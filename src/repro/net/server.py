"""The data-source node server: one STORM node as an OS process.

"Data source services provide a view of a dataset to other services"
(paper Section 2.3) — here as a standalone TCP server wrapping one
:class:`~repro.storm.data_source.DataSourceService`.  The server never
plans: it executes the fully-resolved extraction plans the coordinator
ships (:mod:`~repro.net.wire`), streams the filtered rows back as
columnar BATCH frames sized by the request's ``batch_rows``, and closes
each request with a DONE frame carrying the node's IOStats.

Concurrency is thread-per-connection over the one shared service; the
extractor's handle/segment caches are internally locked, exactly as in
the in-process path.  A server-side
:class:`~repro.faults.FaultInjector` wraps the mount (disk chaos) and is
consulted before every result frame (``conn-reset`` chaos): fault
injection travels with the process that owns the disk.

Entry point: ``repro serve DESC --root R --node osu0`` (see
:mod:`repro.cli`), or programmatic embedding via :class:`NodeServer`.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
from typing import Optional, Tuple

from ..core.extractor import local_mount
from ..core.stats import IOStats
from ..obs.tracer import NULL_TRACER
from ..sql.functions import FunctionRegistry
from ..storm.data_source import DataSourceService
from ..storm.filtering import FilteringService
from . import framing, wire


class NodeServer:
    """Serve one node's extraction service over the wire protocol."""

    def __init__(
        self,
        node: str,
        root: str,
        dataset: str = "",
        functions: Optional[FunctionRegistry] = None,
        fault_injector=None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.node = node
        self.dataset = dataset
        self.fault_injector = fault_injector
        mount = local_mount(root)
        if fault_injector is not None:
            mount = fault_injector.wrap(mount)
        self.source = DataSourceService(
            node,
            mount,
            FilteringService(functions),
            segment_cache_bytes=segment_cache_bytes,
            handle_cache=handle_cache,
        )
        self._sock = socket.create_server((host, port))
        self._shutdown = threading.Event()
        self._conn_threads: list = []

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); port is concrete even when 0 was asked."""
        addr = self._sock.getsockname()
        return (addr[0], addr[1])

    def write_port_file(self, path: str) -> None:
        """Atomically publish the bound address for process discovery."""
        host, port = self.address
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            handle.write(f"{host} {port}\n")
        os.replace(tmp, path)

    # -- serving ------------------------------------------------------------

    def serve_forever(self, poll_seconds: float = 0.5) -> None:
        """Accept connections until :meth:`shutdown` (or SHUTDOWN frame)."""
        self._sock.settimeout(poll_seconds)
        try:
            while not self._shutdown.is_set():
                try:
                    conn, _ = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name=f"node-{self.node}-conn",
                    daemon=True,
                )
                thread.start()
                self._conn_threads.append(thread)
        finally:
            self.close()

    def shutdown(self) -> None:
        self._shutdown.set()

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self.source.close()

    # -- one connection ------------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while not self._shutdown.is_set():
                    try:
                        kind, payload = framing.read_frame(conn)
                    except ConnectionError:
                        return  # peer hung up between requests
                    if not self._dispatch(conn, kind, payload):
                        return
        except ConnectionError:
            return  # peer vanished mid-reply; nothing to answer to
        except Exception as exc:  # keep the server alive for other clients
            try:
                framing.write_json(
                    conn, framing.ERROR, wire.encode_error(exc)
                )
            except OSError:
                pass

    def _dispatch(self, conn, kind: int, payload: bytes) -> bool:
        """Handle one frame; returns False to end the connection."""
        if kind == framing.HELLO:
            framing.write_json(
                conn,
                framing.WELCOME,
                {
                    "node": self.node,
                    "dataset": self.dataset,
                    "protocol": framing.PROTOCOL_VERSION,
                    "pid": os.getpid(),
                },
            )
            return True
        if kind == framing.PING:
            framing.write_frame(conn, framing.PONG)
            return True
        if kind == framing.DROP_CACHES:
            self.source.drop_caches()
            framing.write_frame(conn, framing.OK)
            return True
        if kind == framing.SHUTDOWN:
            framing.write_frame(conn, framing.OK)
            self.shutdown()
            return False
        if kind == framing.EXECUTE:
            return self._execute(conn, payload)
        framing.write_json(
            conn,
            framing.ERROR,
            {
                "etype": "TransportError",
                "message": f"unexpected {framing.kind_name(kind)} frame",
                "retryable": False,
            },
        )
        return True

    def _execute(self, conn, payload: bytes) -> bool:
        """Run one extraction plan, streaming batches then DONE."""
        from ..core.virtualizer import _batched
        from ..errors import InjectedFault

        request = framing.decode_json(payload)
        try:
            plan = wire.decode_plan(request["plan"])
            options = wire.decode_options(request.get("options", {}))
            stats = IOStats()
            table = self.source.execute(
                plan, plan.afcs, stats, NULL_TRACER, options
            )
        except Exception as exc:
            framing.write_json(conn, framing.ERROR, wire.encode_error(exc))
            return True
        injector = self.fault_injector
        batches = 0
        try:
            for batch in _batched(table, options.batch_rows):
                if injector is not None:
                    injector.on_response(self.node)
                payload_out = wire.encode_table(batch)
                # This node's share of the response traffic: with
                # aggregate pushdown these are tiny state frames, in the
                # ablation every filtered base row — the difference the
                # pushdown benchmark measures.
                stats.bytes_sent += len(payload_out)
                framing.write_frame(conn, framing.BATCH, payload_out)
                batches += 1
            if injector is not None:
                injector.on_response(self.node)
            framing.write_json(
                conn,
                framing.DONE,
                {
                    "rows": int(table.num_rows),
                    "batches": batches,
                    "stats": wire.encode_stats(stats),
                },
            )
        except InjectedFault:
            # conn-reset chaos: drop the socket with no protocol-level
            # goodbye; the coordinator sees a raw connection reset.
            try:
                # Linger 0: RST on close, not a graceful FIN — the
                # coordinator must see a *reset*, mid-stream.
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            except OSError:
                pass
            return False
        return True
