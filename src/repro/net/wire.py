"""Wire encoding: plans out as JSON, result batches back as raw columns.

The coordinator plans centrally (it holds the descriptor and the chunk
summaries) and ships each node only what extraction needs: the node's
AFCs, the needed/output column lists, the residual WHERE AST, and the
output dtypes.  Everything in an
:class:`~repro.core.afc.ExtractionPlan` is frozen dataclasses over ints,
strings, and tuples, so the plan side is plain JSON; strips are heavily
shared between chunk refs (one strip per attribute group per file) and
are deduplicated into a side table referenced by index.

Result batches go the other way as raw bytes: a small JSON header (names,
dtypes, row count) followed by the concatenated C-contiguous column
buffers — ``np.frombuffer`` decodes them without parsing.  IOStats travel
as their counter dict; errors as ``{etype, message, retryable}`` and are
re-raised as the closest coordinator-side type so the retry machinery
cannot tell a remote disk failure from a local one.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.afc import AlignedFileChunkSet, ChunkRef, ExtractionPlan, InnerVar
from ..core.aggregate import AggregateSpec
from ..core.options import ExecOptions
from ..core.stats import IOStats
from ..core.strips import LoopDim, Strip
from ..core.table import VirtualTable
from ..errors import (
    ExtractionError,
    InjectedFault,
    RemoteError,
    TransportError,
)
from ..sql import ast

# -- WHERE AST --------------------------------------------------------------


def encode_where(node: Optional[ast.Node]) -> Optional[Dict[str, Any]]:
    """A residual predicate AST as tagged JSON dicts (None passes through)."""
    if node is None:
        return None
    if isinstance(node, ast.Column):
        return {"t": "col", "name": node.name}
    if isinstance(node, ast.Literal):
        return {"t": "lit", "value": node.value}
    if isinstance(node, ast.BoolLiteral):
        return {"t": "bool", "value": node.value}
    if isinstance(node, ast.FunctionCall):
        return {
            "t": "call",
            "name": node.name,
            "args": [encode_where(a) for a in node.args],
        }
    if isinstance(node, ast.Comparison):
        return {
            "t": "cmp",
            "op": node.op,
            "left": encode_where(node.left),
            "right": encode_where(node.right),
        }
    if isinstance(node, ast.InList):
        return {
            "t": "in",
            "operand": encode_where(node.operand),
            "values": list(node.values),
        }
    if isinstance(node, ast.Between):
        return {
            "t": "between",
            "operand": encode_where(node.operand),
            "lo": node.lo,
            "hi": node.hi,
        }
    if isinstance(node, ast.And):
        return {"t": "and", "terms": [encode_where(t) for t in node.terms]}
    if isinstance(node, ast.Or):
        return {"t": "or", "terms": [encode_where(t) for t in node.terms]}
    if isinstance(node, ast.Not):
        return {"t": "not", "term": encode_where(node.term)}
    raise TransportError(f"cannot encode AST node {type(node).__name__}")


def decode_where(data: Optional[Dict[str, Any]]) -> Optional[ast.Node]:
    if data is None:
        return None
    tag = data.get("t")
    if tag == "col":
        return ast.Column(data["name"])
    if tag == "lit":
        return ast.Literal(data["value"])
    if tag == "bool":
        return ast.BoolLiteral(data["value"])
    if tag == "call":
        return ast.FunctionCall(
            data["name"], tuple(decode_where(a) for a in data["args"])
        )
    if tag == "cmp":
        return ast.Comparison(
            data["op"], decode_where(data["left"]), decode_where(data["right"])
        )
    if tag == "in":
        return ast.InList(decode_where(data["operand"]), tuple(data["values"]))
    if tag == "between":
        return ast.Between(decode_where(data["operand"]), data["lo"], data["hi"])
    if tag == "and":
        return ast.And(tuple(decode_where(t) for t in data["terms"]))
    if tag == "or":
        return ast.Or(tuple(decode_where(t) for t in data["terms"]))
    if tag == "not":
        return ast.Not(decode_where(data["term"]))
    raise TransportError(f"unknown AST tag {tag!r} in wire plan")


# -- strips / AFCs / plans --------------------------------------------------


def _encode_strip(strip: Strip) -> Dict[str, Any]:
    return {
        "leaf": strip.leaf_name,
        "index": strip.strip_index,
        "attrs": list(strip.attrs),
        "offsets": list(strip.attr_offsets),
        "formats": list(strip.attr_formats),
        "record_size": strip.record_size,
        "base_offset": strip.base_offset,
        "dims": [
            {
                "var": d.var,
                "start": d.start,
                "stop": d.stop,
                "step": d.step,
                "stride": d.byte_stride,
            }
            for d in strip.dims
        ],
    }


def _decode_strip(data: Dict[str, Any]) -> Strip:
    return Strip(
        leaf_name=data["leaf"],
        strip_index=data["index"],
        attrs=tuple(data["attrs"]),
        attr_offsets=tuple(data["offsets"]),
        attr_formats=tuple(data["formats"]),
        record_size=data["record_size"],
        base_offset=data["base_offset"],
        dims=tuple(
            LoopDim(d["var"], d["start"], d["stop"], d["step"], d["stride"])
            for d in data["dims"]
        ),
    )


def encode_plan(
    plan: ExtractionPlan, afcs: List[AlignedFileChunkSet]
) -> Dict[str, Any]:
    """One node's share of a plan: ``afcs`` only, strips deduplicated."""
    strips: List[Strip] = []
    strip_ids: Dict[int, int] = {}

    def strip_index(strip: Strip) -> int:
        idx = strip_ids.get(id(strip))
        if idx is None:
            idx = len(strips)
            strips.append(strip)
            strip_ids[id(strip)] = idx
        return idx

    encoded_afcs = []
    for afc in afcs:
        encoded_afcs.append(
            {
                "rows": afc.num_rows,
                "chunks": [
                    {
                        "node": c.node,
                        "path": c.path,
                        "offset": c.offset,
                        "bpr": c.bytes_per_row,
                        "strip": strip_index(c.strip),
                    }
                    for c in afc.chunks
                ],
                "constants": [[name, value] for name, value in afc.constants],
                "inner": [
                    {
                        "name": iv.name,
                        "start": iv.start,
                        "step": iv.step,
                        "count": iv.count,
                        "repeat": iv.repeat,
                    }
                    for iv in afc.inner_vars
                ],
            }
        )
    encoded = {
        "needed": list(plan.needed),
        "output": list(plan.output),
        "where": encode_where(plan.where),
        "dtypes": {name: np.dtype(dt).str for name, dt in plan.dtypes.items()},
        "strips": [_encode_strip(s) for s in strips],
        "afcs": encoded_afcs,
    }
    spec = getattr(plan, "aggregate", None)
    if spec is not None:
        # Aggregate pushdown rides the plan: the node folds its rows into
        # a partial state frame and the result batches carry state
        # columns, not base rows.
        encoded["agg"] = {
            "group_by": list(spec.group_by),
            "items": [[item.func, item.column] for item in spec.items],
            "output": list(spec.output),
        }
    return encoded


def decode_plan(data: Dict[str, Any]) -> ExtractionPlan:
    strips = [_decode_strip(s) for s in data["strips"]]
    afcs = []
    for entry in data["afcs"]:
        afcs.append(
            AlignedFileChunkSet(
                num_rows=entry["rows"],
                chunks=tuple(
                    ChunkRef(
                        node=c["node"],
                        path=c["path"],
                        offset=c["offset"],
                        bytes_per_row=c["bpr"],
                        strip=strips[c["strip"]],
                    )
                    for c in entry["chunks"]
                ),
                constants=tuple(
                    (name, value) for name, value in entry["constants"]
                ),
                inner_vars=tuple(
                    InnerVar(
                        iv["name"], iv["start"], iv["step"], iv["count"],
                        iv["repeat"],
                    )
                    for iv in entry["inner"]
                ),
            )
        )
    agg = data.get("agg")
    spec = None
    if agg is not None:
        spec = AggregateSpec(
            group_by=tuple(agg["group_by"]),
            items=tuple(
                ast.Aggregate(func, column) for func, column in agg["items"]
            ),
            output=tuple(agg["output"]),
        )
    return ExtractionPlan(
        afcs=afcs,
        needed=list(data["needed"]),
        output=list(data["output"]),
        where=decode_where(data["where"]),
        dtypes={name: np.dtype(s) for name, s in data["dtypes"].items()},
        aggregate=spec,
    )


# -- execution options ------------------------------------------------------

#: The only fields a node server acts on; everything else (retries,
#: caching, partitioning, admission control) is coordinator business.
_NODE_OPTION_FIELDS = (
    "coalesce_gap_bytes",
    "intra_node_workers",
    "batch_rows",
    "vectorize",
)


def encode_options(options: ExecOptions) -> Dict[str, Any]:
    return {name: getattr(options, name) for name in _NODE_OPTION_FIELDS}


def decode_options(data: Dict[str, Any]) -> ExecOptions:
    known = {k: v for k, v in data.items() if k in _NODE_OPTION_FIELDS}
    return ExecOptions(remote=False, parallel=False, **known)


# -- result tables ----------------------------------------------------------

_HEADER_LEN = struct.Struct("!I")


def encode_table(table: VirtualTable) -> bytes:
    """JSON header + concatenated C-contiguous column buffers."""
    names = list(table.column_names)
    arrays = [np.ascontiguousarray(table.column(n)) for n in names]
    header = {
        "rows": int(table.num_rows),
        "columns": [
            {"name": n, "dtype": a.dtype.str, "nbytes": int(a.nbytes)}
            for n, a in zip(names, arrays)
        ],
    }
    blob = json.dumps(header).encode("utf-8")
    parts = [_HEADER_LEN.pack(len(blob)), blob]
    parts.extend(a.tobytes() for a in arrays)
    return b"".join(parts)


def decode_table(payload: bytes) -> VirtualTable:
    if len(payload) < _HEADER_LEN.size:
        raise TransportError("truncated table batch: missing header")
    (header_len,) = _HEADER_LEN.unpack_from(payload)
    end = _HEADER_LEN.size + header_len
    try:
        header = json.loads(payload[_HEADER_LEN.size:end].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise TransportError(f"malformed table batch header: {exc}") from None
    rows = header["rows"]
    columns: Dict[str, np.ndarray] = {}
    order: List[str] = []
    offset = end
    view = memoryview(payload)
    for col in header["columns"]:
        nbytes = col["nbytes"]
        if offset + nbytes > len(payload):
            raise TransportError(
                f"truncated table batch: column {col['name']!r} wants "
                f"{nbytes} bytes, {len(payload) - offset} remain"
            )
        array = np.frombuffer(
            view[offset:offset + nbytes], dtype=np.dtype(col["dtype"])
        )
        if array.shape[0] != rows:
            raise TransportError(
                f"column {col['name']!r} decoded {array.shape[0]} rows, "
                f"header says {rows}"
            )
        columns[col["name"]] = array
        order.append(col["name"])
        offset += nbytes
    return VirtualTable(columns, order=order)


def empty_table(plan: ExtractionPlan) -> VirtualTable:
    """The zero-batch result shape (all output columns, zero rows).

    Aggregate plans return partial *state frames*, so their empty shape
    is the zero-row state frame, not the base-row projection.
    """
    spec = getattr(plan, "aggregate", None)
    if spec is not None:
        return spec.empty_state(plan.dtypes)
    return VirtualTable(
        {
            name: np.empty(0, dtype=plan.dtypes.get(name, np.float64))
            for name in plan.output
        },
        order=plan.output,
    )


# -- stats and errors -------------------------------------------------------


def encode_stats(stats: IOStats) -> Dict[str, int]:
    return stats.as_dict()


def decode_stats(data: Dict[str, int]) -> IOStats:
    known = {
        k: v for k, v in data.items() if k in IOStats.__dataclass_fields__
    }
    return IOStats(**known)


def encode_error(exc: BaseException) -> Dict[str, Any]:
    """A server-side failure as a typed, retryability-tagged payload."""
    return {
        "etype": type(exc).__name__,
        "message": str(exc),
        "retryable": isinstance(exc, (ExtractionError, OSError)),
    }


def decode_error(data: Dict[str, Any], node: str) -> Exception:
    """The closest coordinator-side exception for a remote failure.

    Injected faults keep their type (chaos accounting and tests see the
    same errors as in-process runs); other retryable failures collapse to
    :class:`ExtractionError`; everything else becomes a non-retryable
    :class:`RemoteError` carrying the remote type name.
    """
    etype = data.get("etype", "Exception")
    message = data.get("message", "")
    if etype == "InjectedFault":
        return InjectedFault(f"node {node!r}: {message}")
    if data.get("retryable"):
        return ExtractionError(f"node {node!r}: {etype}: {message}")
    return RemoteError(etype, message, node)


__all__ = [
    "decode_error",
    "decode_options",
    "decode_plan",
    "decode_stats",
    "decode_table",
    "decode_where",
    "empty_table",
    "encode_error",
    "encode_options",
    "encode_plan",
    "encode_stats",
    "encode_table",
    "encode_where",
]
