"""Query-lifecycle observability: span tracing, metrics, exporters.

The paper's evaluation is entirely about *where time goes* — index lookup
vs. extraction vs. filtering vs. data movement (Sections 5, Figures 6-11).
This package makes that profile a first-class artifact of every query:

* :mod:`repro.obs.tracer` — a lightweight span tracer.  A :class:`Span`
  is a named, tagged interval with wall and CPU time; spans nest via a
  per-thread stack, and :class:`TraceContext` roots worker-thread spans
  under a cross-thread parent.  The default :data:`NULL_TRACER` is a
  no-op whose ``span()`` returns a shared singleton, so the pipeline pays
  one cheap call (or a single ``if tracer.enabled`` in hot loops) when
  tracing is off.

* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  histograms) that subsumes and extends the fixed-field
  :class:`~repro.core.stats.IOStats` counters via the :class:`StatsSink`
  protocol.  Well-known counters recorded by the pipeline:
  ``io.<node>.*`` (per-node IOStats fields, including
  ``reads_coalesced`` and ``readahead_waste_bytes``),
  ``reads.coalesced`` / ``bytes.readahead_waste`` (I/O coalescing,
  recorded as merged reads happen), ``retries.attempted``,
  ``nodes.failed``, ``faults.injected``, and ``diag.warnings``.

* :mod:`repro.obs.export` — exporters: the Chrome trace-event JSON format
  (load the file in ``chrome://tracing`` / Perfetto) and a human-readable
  span tree with per-stage totals.
"""

from .export import (
    chrome_trace,
    read_chrome_trace,
    spans_from_chrome,
    tree_summary,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, StatsSink
from .tracer import NULL_TRACER, NullTracer, Span, TraceContext, Tracer, as_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "StatsSink",
    "TraceContext",
    "Tracer",
    "as_tracer",
    "chrome_trace",
    "read_chrome_trace",
    "spans_from_chrome",
    "tree_summary",
    "write_chrome_trace",
]
