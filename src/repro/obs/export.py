"""Trace exporters: Chrome trace-event JSON and a human-readable tree.

The JSON exporter emits the Trace Event Format understood by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): complete
events (``ph: "X"``) with microsecond timestamps/durations, instant
events (``ph: "i"``), and thread-name metadata.  The tracer's metrics
registry rides along under ``otherData`` so one file carries the full
profile of a query.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .tracer import Span, Tracer


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = []
    for tid in sorted(set(s.tid for s in tracer.spans)):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"{tracer.name}-t{tid}"},
            }
        )
    for span in tracer.spans:
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": "repro",
            "ph": span.phase,
            "pid": 1,
            "tid": span.tid,
            "ts": round(span.start * 1e6, 3),
            "args": dict(span.tags),
        }
        event["args"]["span_id"] = span.span_id
        if span.parent_id is not None:
            event["args"]["parent_id"] = span.parent_id
        if span.phase == "X":
            event["dur"] = round((span.duration or 0.0) * 1e6, 3)
            if span.cpu_seconds is not None:
                event["args"]["cpu_us"] = round(span.cpu_seconds * 1e6, 3)
        else:
            event["s"] = "t"  # instant event, thread scope
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tracer": tracer.name,
            "metrics": tracer.metrics.as_dict(),
        },
    }


def write_chrome_trace(tracer: Tracer, path) -> None:
    """Serialise :func:`chrome_trace` to ``path`` (str or Path)."""
    with open(os.fspath(path), "w") as handle:
        json.dump(chrome_trace(tracer), handle, indent=1)


def read_chrome_trace(path) -> Dict[str, Any]:
    """Load a trace file written by :func:`write_chrome_trace`."""
    with open(os.fspath(path)) as handle:
        return json.load(handle)


def spans_from_chrome(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Recover span records from a Chrome trace payload.

    Returns dicts with ``name``, ``start``/``duration`` (seconds),
    ``span_id``/``parent_id``, ``phase``, and ``tags`` — enough to
    round-trip structure and timing through the JSON file.
    """
    spans: List[Dict[str, Any]] = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") not in ("X", "i"):
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        args.pop("cpu_us", None)
        spans.append(
            {
                "name": event["name"],
                "phase": event["ph"],
                "start": event["ts"] / 1e6,
                "duration": event.get("dur", 0.0) / 1e6,
                "span_id": span_id,
                "parent_id": parent_id,
                "tags": args,
            }
        )
    return spans


# -- tree summary --------------------------------------------------------------


def tree_summary(tracer: Tracer, min_fraction: float = 0.0) -> str:
    """Render the span forest as an indented tree with timings.

    ``min_fraction`` hides spans shorter than that fraction of their root
    (0 shows everything); sibling spans sort by start time.  Instant
    events are shown with a ``*`` marker.
    """
    spans = list(tracer.spans)
    if not spans:
        return "(no spans recorded)"
    by_parent: Dict[Optional[int], List[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.start)

    lines: List[str] = []

    def fmt(span: Span, root_duration: float) -> str:
        tags = " ".join(
            f"{k}={v}" for k, v in span.tags.items() if k not in ("error",)
        )
        if span.phase != "X":
            return f"* {span.name}" + (f" [{tags}]" if tags else "")
        dur = span.duration or 0.0
        cpu = span.cpu_seconds or 0.0
        pct = f" ({dur / root_duration * 100:.0f}%)" if root_duration else ""
        text = f"{span.name}  {dur * 1e3:.2f}ms wall, {cpu * 1e3:.2f}ms cpu{pct}"
        if tags:
            text += f"  [{tags}]"
        if "error" in span.tags:
            text += f"  !! {span.tags['error']}"
        return text

    def walk(span: Span, prefix: str, is_last: bool, root_duration: float) -> None:
        connector = "" if not prefix and is_last is None else ("└─ " if is_last else "├─ ")
        lines.append(prefix + connector + fmt(span, root_duration))
        child_prefix = prefix + ("" if is_last is None else ("   " if is_last else "│  "))
        children = [
            c
            for c in by_parent.get(span.span_id, [])
            if c.phase != "X"
            or root_duration == 0
            or (c.duration or 0.0) >= min_fraction * root_duration
        ]
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1, root_duration)

    for root in by_parent.get(None, []):
        walk(root, "", None, root.duration or 0.0)
    return "\n".join(lines)
