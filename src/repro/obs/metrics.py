"""Metrics registry: counters, gauges, and histograms behind StatsSink.

:class:`~repro.core.stats.IOStats` counts a fixed set of integer fields —
exactly what the cost model needs, deterministic and cheap.  The registry
generalises it: metrics are created by name on first use, gauges hold
point-in-time values, histograms capture distributions (log2 buckets).
Both the registry and ``IOStats`` implement the :class:`StatsSink`
protocol (``record(name, value)``), so instrumented code can count into
either without caring which it was given.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Union

try:  # Protocol is typing-only; keep a runtime fallback for py3.7 clones
    from typing import Protocol, runtime_checkable

    @runtime_checkable
    class StatsSink(Protocol):
        """Anything that can absorb a named numeric observation."""

        def record(self, name: str, value: Union[int, float] = 1) -> None:
            ...

except ImportError:  # pragma: no cover
    StatsSink = object  # type: ignore[assignment,misc]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A distribution: count/sum/min/max plus power-of-two buckets.

    Bucket key ``e`` counts observations in ``[2**e, 2**(e+1))``; zero and
    negative observations land in the ``"zero"`` bucket.  Exponential
    buckets keep the histogram O(log range) regardless of value spread —
    chunk sizes span bytes to gigabytes.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[Union[int, str], int] = {}

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key: Union[int, str] = (
            "zero" if value <= 0 else int(math.floor(math.log2(value)))
        )
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items(), key=str)},
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named metrics, created on first use; thread safe.

    Implements :class:`StatsSink`: ``record(name, value)`` increments the
    counter of that name, and :meth:`record_stats` ingests any object with
    an ``as_dict()`` of numeric fields (an :class:`IOStats`), which is how
    flat per-node operation counts surface in a query trace.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self.counters.get(name)
            if metric is None:
                metric = self.counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self.gauges.get(name)
            if metric is None:
                metric = self.gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self.histograms.get(name)
            if metric is None:
                metric = self.histograms[name] = Histogram(name)
            return metric

    # -- StatsSink -----------------------------------------------------------

    def record(self, name: str, value: Union[int, float] = 1) -> None:
        self.counter(name).inc(value)

    def record_stats(self, stats, prefix: str = "io.") -> None:
        """Ingest an IOStats-like object (anything with ``as_dict()``)."""
        for name, value in stats.as_dict().items():
            if value:
                self.counter(prefix + name).inc(value)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry (counters add, gauges last-write,
        histograms recombine)."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, hist in other.histograms.items():
            mine = self.histogram(name)
            mine.count += hist.count
            mine.total += hist.total
            mine.min = min(mine.min, hist.min)
            mine.max = max(mine.max, hist.max)
            for key, count in hist.buckets.items():
                mine.buckets[key] = mine.buckets.get(key, 0) + count

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self.counters.items())},
                "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
                "histograms": {
                    n: h.as_dict() for n, h in sorted(self.histograms.items())
                },
            }

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms>"
        )
