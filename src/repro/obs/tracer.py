"""Span tracer: named, tagged, nested time intervals per query.

Design constraints (see docs/architecture.md, "Observability"):

* **Near-zero overhead when disabled.**  The pipeline's default tracer is
  :data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
  manager and whose ``event()`` does nothing; hot loops additionally guard
  with a single ``if tracer.enabled``.

* **Thread safe.**  ``QueryService`` extracts on one thread per node; each
  thread keeps its own span stack (``threading.local``) and the finished
  span list is appended under a lock.  Cross-thread parent/child links are
  made explicit with :class:`TraceContext`.

* **Self-contained.**  Spans record relative wall time (``perf_counter``
  since the tracer's epoch) and per-thread CPU time (``thread_time``); no
  global state, several tracers can be live at once.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Union

from .metrics import MetricsRegistry

_UNSET = object()


class Span:
    """One traced interval: a name, tags, and wall/CPU start+duration.

    Use as a context manager (``with tracer.span("extract") as span:``);
    entering pushes the span on the current thread's stack (so nested
    spans parent automatically) and records it with the tracer.
    """

    __slots__ = (
        "name",
        "tags",
        "span_id",
        "parent_id",
        "tid",
        "phase",
        "start",
        "duration",
        "cpu_start",
        "cpu_seconds",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        tags: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
        tracer: "Tracer",
        phase: str = "X",
    ):
        self.name = name
        self.tags = tags
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = 0
        self.phase = phase  # "X" = complete span, "i" = instant event
        self.start: float = 0.0
        self.duration: Optional[float] = None
        self.cpu_start: float = 0.0
        self.cpu_seconds: Optional[float] = None
        self._tracer = tracer

    def tag(self, **tags: Any) -> "Span":
        """Attach (or overwrite) tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    @property
    def finished(self) -> bool:
        return self.duration is not None

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.tags["error"] = f"{exc_type.__name__}: {exc}"
        self._tracer._end(self)
        return False

    def __repr__(self) -> str:
        dur = f"{self.duration * 1e3:.3f}ms" if self.finished else "open"
        return f"<Span {self.name!r} id={self.span_id} {dur} tags={self.tags}>"


class Tracer:
    """Records spans and instant events for one query (or one session).

    The tracer is the *trace context* threaded through every pipeline
    layer; components receive it as an optional parameter defaulting to
    :data:`NULL_TRACER` and never need to check for ``None``.
    """

    enabled = True

    def __init__(self, name: str = "query"):
        self.name = name
        self.epoch = time.perf_counter()
        self.spans: List[Span] = []
        self.metrics = MetricsRegistry()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}

    # -- span creation -------------------------------------------------------

    def span(self, name: str, parent: Optional[Span] = None, **tags: Any) -> Span:
        """A new span.  Parentage: the current thread's innermost open
        span wins; otherwise the explicit ``parent`` (for spans opened on
        worker threads); otherwise the span is a root."""
        stack = self._stack()
        if stack:
            parent_id: Optional[int] = stack[-1].span_id
        elif parent is not None:
            parent_id = parent.span_id
        else:
            parent_id = None
        return Span(name, tags, next(self._ids), parent_id, self)

    def event(self, name: str, parent: Optional[Span] = None, **tags: Any) -> None:
        """Record an instant (zero-duration) event, e.g. a cache hit."""
        span = self.span(name, parent, **tags)
        span.phase = "i"
        now = time.perf_counter() - self.epoch
        span.start = now
        span.duration = 0.0
        span.cpu_seconds = 0.0
        span.tid = self._tid()
        with self._lock:
            self.spans.append(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- bookkeeping (called by Span) ----------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._tids:
                self._tids[ident] = len(self._tids)
            return self._tids[ident]

    def _begin(self, span: Span) -> None:
        span.tid = self._tid()
        self._stack().append(span)
        with self._lock:
            self.spans.append(span)
        # Clocks start last so the span excludes tracer bookkeeping.
        span.cpu_start = time.thread_time()
        span.start = time.perf_counter() - self.epoch

    def _end(self, span: Span) -> None:
        span.duration = time.perf_counter() - self.epoch - span.start
        span.cpu_seconds = time.thread_time() - span.cpu_start
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order; keep the stack sane
            stack.remove(span)

    # -- querying the trace --------------------------------------------------

    def find(self, name: str) -> List[Span]:
        """All recorded spans/events with the given name, in start order."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def stage_seconds(self) -> Dict[str, float]:
        """Total wall seconds per span name (events excluded).

        Nested spans are summed under their own name only, so ``extract``
        and its ``filter`` children report independently.
        """
        out: Dict[str, float] = {}
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            if span.phase != "X":
                continue
            out[span.name] = out.get(span.name, 0.0) + (span.duration or 0.0)
        return out

    # -- export conveniences (implemented in repro.obs.export) ---------------

    def chrome_trace(self) -> Dict[str, Any]:
        from .export import chrome_trace

        return chrome_trace(self)

    def write_chrome_trace(self, path) -> None:
        from .export import write_chrome_trace

        write_chrome_trace(self, path)

    def tree_summary(self) -> str:
        from .export import tree_summary

        return tree_summary(self)


class _NullSpan:
    """The shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()
    name = "null"
    tags: Dict[str, Any] = {}
    duration = 0.0
    cpu_seconds = 0.0
    finished = True

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _NullMetrics:
    """Inert metrics registry: every handle is shared and discards data."""

    class _Inert:
        __slots__ = ()
        value = 0
        count = 0

        def inc(self, n=1):
            pass

        def set(self, v):
            pass

        def observe(self, v):
            pass

    _INERT = _Inert()

    def counter(self, name):
        return self._INERT

    def gauge(self, name):
        return self._INERT

    def histogram(self, name):
        return self._INERT

    def record(self, name, value=1):
        pass

    def record_stats(self, stats, prefix=""):
        pass

    def as_dict(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span()`` returns one shared singleton, so the per-span cost with
    tracing off is a single attribute lookup and call; hot loops can skip
    even that by checking :attr:`enabled`.
    """

    enabled = False
    name = "null"
    spans: List[Span] = []
    metrics = _NullMetrics()

    def span(self, name: str, parent: Optional[Span] = None, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, parent: Optional[Span] = None, **tags: Any) -> None:
        pass

    def current(self) -> None:
        return None

    def find(self, name: str) -> List[Span]:
        return []

    def stage_seconds(self) -> Dict[str, float]:
        return {}


#: The default tracer of every pipeline entry point.
NULL_TRACER = NullTracer()


def as_tracer(trace: Union[bool, Tracer, NullTracer, None]) -> Union[Tracer, NullTracer]:
    """Resolve an ``ExecOptions.trace`` value to a tracer instance.

    ``None``/``False`` -> :data:`NULL_TRACER`; ``True`` -> a fresh
    :class:`Tracer`; a tracer instance passes through unchanged.
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return Tracer()
    return trace


class TraceContext:
    """A tracer plus an explicit parent span, for cross-thread nesting.

    ``QueryService`` opens the per-query root span on the submitting
    thread, then hands ``TraceContext(tracer, root)`` to its per-node
    workers; spans those threads open parent under the root even though
    the thread-local stack over there is empty.
    """

    __slots__ = ("tracer", "parent")

    def __init__(
        self,
        tracer: Union[Tracer, NullTracer, None] = None,
        parent: Optional[Span] = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.parent = parent

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def span(self, name: str, **tags: Any):
        return self.tracer.span(name, parent=self.parent, **tags)

    def event(self, name: str, **tags: Any) -> None:
        self.tracer.event(name, parent=self.parent, **tags)

    def child(self, parent: Span) -> "TraceContext":
        """A context whose spans parent under ``parent``."""
        return TraceContext(self.tracer, parent)
