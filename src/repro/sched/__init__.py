"""``repro.sched``: workload-aware scheduling for the STORM front door.

Fair-share queues per tenant, a priority express lane, cost-based
admission control, cooperative row/byte quotas, cancellation, and
deadlines — see :mod:`repro.sched.scheduler` for the design and
docs/architecture.md ("Scheduling & admission") for the overview.

:class:`Scheduler` / :class:`QueryHandle` load lazily (PEP 562): the
leaf :mod:`repro.sched.state` module must stay importable from inside
:mod:`repro.storm` without dragging in the scheduler (which itself
imports storm).
"""

from .state import RunState, record_abandoned_thread, threads_abandoned

__all__ = [
    "QueryHandle",
    "RunState",
    "Scheduler",
    "record_abandoned_thread",
    "threads_abandoned",
]


def __getattr__(name: str):
    if name in ("Scheduler", "QueryHandle"):
        from . import scheduler

        return getattr(scheduler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
