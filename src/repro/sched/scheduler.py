"""Workload-aware scheduler in front of ``QueryService.submit``.

The paper's services assume one polite client; this module makes the
front door safe for heavy mixed traffic.  A :class:`Scheduler` owns a
bounded pool of dispatch workers and three lanes of queued work:

1. **Priority lane** — queries submitted with ``ExecOptions(priority>0)``
   jump every queue (higher values first, FIFO within a value).  One
   dispatch worker is *reserved* for this lane, so an interactive query
   never waits behind a bulk scan that grabbed the last worker — the
   express-lane property the latency benchmarks measure.
2. **Fair-share lanes** — one weighted queue per ``ExecOptions.tenant``,
   served by weighted fair queuing over virtual time: each dispatch
   advances the tenant's virtual clock by ``cost / weight``, and the
   lane with the smallest clock goes next, so a tenant with weight 3
   gets 3x the dispatch share of a weight-1 tenant under contention.
   ``scheduler="fifo"`` collapses this to one arrival-order queue.
3. **Backfill lane** — queries predicted over their
   ``admission_budget`` with ``admission="queue"``; served only when
   every other lane is empty, so over-budget work scavenges idle
   capacity instead of competing.

Admission control happens at :meth:`Scheduler.submit` using
``CostModel.estimate_plan`` (a-priori simulated seconds from the plan's
chunk layout): over budget with ``admission="reject"`` raises a typed
:class:`~repro.errors.AdmissionError` before any work is queued.

Every admitted query carries a :class:`~repro.sched.state.RunState` on
``ExecOptions.run_state``; ``handle.cancel()`` tears queued work down
immediately and flips the run state so in-flight work stops at its next
cooperative boundary, and a ``deadline`` is auto-enforced by a monitor
thread plus in-band checks.  ``ExecOptions(scheduler="off")`` bypasses
the whole apparatus (the ablation mode).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from ..core.options import ExecOptions, resolve_workers
from ..errors import (
    AdmissionError,
    QueryCancelledError,
    QuotaExceededError,
    SchedulerError,
)
from ..obs.metrics import MetricsRegistry
from .state import RunState, threads_abandoned

_FINISHED = ("done", "failed", "cancelled")

#: Virtual-time cost of a query with no cost estimate: each dispatch
#: counts as one unit, degrading fair-share to weighted round-robin.
_UNIT_COST = 1.0


class QueryHandle:
    """One submitted query's future: state, result, cancellation."""

    def __init__(
        self,
        sql,
        options: ExecOptions,
        run_state: RunState,
        predicted_seconds: Optional[float],
        clock: Callable[[], float],
        scheduler: Optional["Scheduler"],
    ):
        self.sql = sql
        self.options = options
        self.tenant = options.tenant
        self.priority = options.priority
        self.run_state = run_state
        #: Simulated seconds the cost model predicted, when admission
        #: control ran; None otherwise.
        self.predicted_seconds = predicted_seconds
        self.submitted_at = clock()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._clock = clock
        self._sched = scheduler
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._state = "queued"
        self._result = None
        self._error: Optional[BaseException] = None

    # -- inspection -----------------------------------------------------------

    @property
    def state(self) -> str:
        """``queued`` / ``running`` / ``done`` / ``failed`` / ``cancelled``."""
        with self._lock:
            return self._state

    def done(self) -> bool:
        return self.state in _FINISHED

    def cancelled(self) -> bool:
        return self.state == "cancelled"

    @property
    def wait_seconds(self) -> Optional[float]:
        """Queue wait before dispatch; None while still queued."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    # -- outcome --------------------------------------------------------------

    def result(self, timeout: Optional[float] = None):
        """Block for the :class:`~repro.storm.query_service.QueryResult`.

        Re-raises whatever ended the query: the execution error, a
        :class:`~repro.errors.QuotaExceededError`, or a
        :class:`~repro.errors.QueryCancelledError`.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query not finished within {timeout:g}s (state={self.state})"
            )
        with self._lock:
            if self._error is not None:
                raise self._error
            return self._result

    def cancel(self, reason: str = "cancelled") -> bool:
        """Stop this query; returns False if it already finished.

        Queued work is torn down immediately (``result()`` raises
        :class:`~repro.errors.QueryCancelledError` at once); running
        work stops at its next cooperative boundary, and a hung node
        attempt is abandoned through the timeout machinery.
        """
        self.run_state.cancel(reason)
        with self._lock:
            if self._state in _FINISHED:
                return False
            was_queued = self._state == "queued"
            if was_queued:
                self._state = "cancelled"
                self._error = QueryCancelledError(reason)
                self.finished_at = self._clock()
                self._event.set()
        if was_queued and self._sched is not None:
            self._sched._on_queued_cancel(reason)
        return True

    def _finish(self, state: str, result=None, error=None) -> bool:
        with self._lock:
            if self._state in _FINISHED:
                return False
            self._state = state
            self._result = result
            self._error = error
            self.finished_at = self._clock()
            self._event.set()
            return True

    def __repr__(self) -> str:
        return (
            f"<QueryHandle {self.tenant}/{self.priority} "
            f"[{self.state}] {str(self.sql)[:60]!r}>"
        )


class _TenantLane:
    __slots__ = ("name", "weight", "queue", "vtime")

    def __init__(self, name: str, weight: float):
        self.name = name
        self.weight = weight
        self.queue: deque = deque()
        self.vtime = 0.0


class Scheduler:
    """Fair-share dispatch, admission control, quotas, cancellation.

    Parameters
    ----------
    service:
        The :class:`~repro.storm.query_service.QueryService` (or any
        object with ``submit(sql, options)``) queries dispatch into.
    workers:
        Concurrent dispatches; ``0`` resolves like
        ``ExecOptions.scheduler_workers`` auto-sizing.
    reserve_priority:
        Dispatch workers reserved for the priority lane (clamped so at
        least one worker always serves the fair lanes); ``0`` disables
        the express lane's reservation.
    weights:
        Per-tenant fair-share weights (default 1.0 each).
    cost_model:
        Admission cost model; defaults to the service's.
    """

    def __init__(
        self,
        service,
        *,
        workers: int = 0,
        reserve_priority: int = 1,
        weights: Optional[Dict[str, float]] = None,
        cost_model=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.service = service
        self.workers = resolve_workers(workers)
        self._reserved = max(0, min(reserve_priority, self.workers - 1))
        self.cost_model = (
            cost_model
            if cost_model is not None
            else getattr(service, "cost_model", None)
        )
        self.metrics = MetricsRegistry()
        self._weights = dict(weights or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._seq = itertools.count()
        #: Heap of (-priority, seq, handle): the express lane.
        self._priority: List[tuple] = []
        self._lanes: Dict[str, _TenantLane] = {}
        self._backfill: deque = deque()
        #: Heap of (deadline_at, seq, handle) for the monitor thread.
        self._deadlines: List[tuple] = []
        self._gvtime = 0.0
        self._queued = 0
        self._running = 0
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._monitor: Optional[threading.Thread] = None

    # -- submission -----------------------------------------------------------

    def submit(self, sql, options: Optional[ExecOptions] = None) -> QueryHandle:
        """Queue a query; returns its :class:`QueryHandle` immediately.

        With ``options.scheduler == "off"`` the query runs inline on
        the calling thread instead — no lanes, no admission, no quotas
        — and the returned handle is already finished (the ablation
        path the benchmarks compare against).
        """
        opts = options if options is not None else ExecOptions()
        if self._closed:
            raise SchedulerError("scheduler is closed")
        if opts.scheduler == "off":
            return self._run_inline(sql, opts)

        predicted = None
        backfill = False
        if opts.admission_budget is not None and self.cost_model is not None:
            predicted = self._predict(sql, opts)
            if predicted > opts.admission_budget:
                if opts.admission == "reject":
                    self.metrics.record("sched.rejected")
                    raise AdmissionError(
                        predicted, opts.admission_budget, str(sql)
                    )
                backfill = True
                self.metrics.record("sched.queued_over_budget")

        deadline_at = None
        if opts.deadline is not None:
            deadline_at = self._clock() + opts.deadline
        run_state = RunState(
            row_quota=opts.row_quota,
            byte_quota=opts.byte_quota,
            deadline_at=deadline_at,
            clock=self._clock,
        )
        handle = QueryHandle(sql, opts, run_state, predicted, self._clock, self)
        with self._cond:
            if self._closed:
                raise SchedulerError("scheduler is closed")
            seq = next(self._seq)
            if backfill:
                self._backfill.append(handle)
            elif opts.priority > 0:
                heapq.heappush(self._priority, (-opts.priority, seq, handle))
            else:
                # fifo mode funnels every tenant into one shared
                # arrival-order lane; fair mode keeps one per tenant.
                lane = "*" if opts.scheduler == "fifo" else opts.tenant
                self._lane_for(lane).queue.append(handle)
            self._queued += 1
            if deadline_at is not None:
                heapq.heappush(self._deadlines, (deadline_at, seq, handle))
            self.metrics.record("sched.submitted")
            self._update_gauges_locked()
            self._ensure_workers_locked()
            if deadline_at is not None:
                self._ensure_monitor_locked()
            self._cond.notify_all()
        return handle

    def run(self, sql, options: Optional[ExecOptions] = None):
        """Submit and block: the scheduled analogue of ``service.submit``."""
        return self.submit(sql, options).result()

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Queue depths, per-tenant lanes, counters, wait histograms."""
        with self._cond:
            tenants = {
                name: {
                    "queued": len(lane.queue),
                    "weight": lane.weight,
                    "vtime": round(lane.vtime, 6),
                }
                for name, lane in sorted(self._lanes.items())
            }
            snapshot = {
                "workers": self.workers,
                "reserved_priority_workers": self._reserved,
                "queued": self._queued,
                "running": self._running,
                "priority_queued": len(self._priority),
                "backfill_queued": len(self._backfill),
                "tenants": tenants,
            }
        data = self.metrics.as_dict()
        snapshot["counters"] = data["counters"]
        snapshot["wait_seconds"] = {
            name[len("sched.wait_seconds.") :]: hist
            for name, hist in data["histograms"].items()
            if name.startswith("sched.wait_seconds.")
        }
        overall = data["histograms"].get("sched.wait_seconds")
        if overall is not None:
            snapshot["wait_seconds"]["*"] = overall
        snapshot["threads_abandoned"] = threads_abandoned()
        return snapshot

    # -- lifecycle ------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop dispatching; queued queries are cancelled, running ones
        finish (``wait=True`` joins them)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            drained = [h for _, _, h in self._priority]
            drained.extend(self._backfill)
            for lane in self._lanes.values():
                drained.extend(lane.queue)
            self._priority.clear()
            self._backfill.clear()
            for lane in self._lanes.values():
                lane.queue.clear()
            self._queued = 0
            self._update_gauges_locked()
            self._cond.notify_all()
            threads = list(self._threads)
            monitor = self._monitor
        for handle in drained:
            if handle._finish(
                "cancelled", error=QueryCancelledError("scheduler closed")
            ):
                self.metrics.record("sched.cancelled")
        if wait:
            for thread in threads:
                thread.join()
            if monitor is not None:
                monitor.join()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ------------------------------------------------------------

    def _run_inline(self, sql, opts: ExecOptions) -> QueryHandle:
        self.metrics.record("sched.bypassed")
        handle = QueryHandle(
            sql, opts, RunState(clock=self._clock), None, self._clock, None
        )
        handle.started_at = handle.submitted_at
        try:
            result = self.service.submit(sql, opts)
        except BaseException as exc:
            handle._finish("failed", error=exc)
        else:
            handle._finish("done", result=result)
        return handle

    def _predict(self, sql, opts: ExecOptions) -> float:
        dataset = self.service.dataset
        resolve = getattr(dataset, "resolve_query", None)
        resolved = resolve(sql) if resolve is not None else sql
        plan = dataset.plan(resolved)
        return self.cost_model.estimate_plan(plan, remote=opts.remote)

    def _lane_for(self, name: str) -> _TenantLane:
        lane = self._lanes.get(name)
        if lane is None:
            lane = _TenantLane(name, float(self._weights.get(name, 1.0)))
            self._lanes[name] = lane
        if not lane.queue:
            # An idle tenant's clock catches up to the global virtual
            # time, so sitting out earns no banked priority.
            lane.vtime = max(lane.vtime, self._gvtime)
        return lane

    def _ensure_workers_locked(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker,
                args=(index,),
                name=f"sched-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _ensure_monitor_locked(self) -> None:
        if self._monitor is None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="sched-deadline", daemon=True
            )
            self._monitor.start()

    def _pop_locked(self, priority_only: bool) -> Optional[QueryHandle]:
        if self._priority:
            handle = heapq.heappop(self._priority)[2]
            self._queued -= 1
            return handle
        if priority_only:
            return None
        best: Optional[_TenantLane] = None
        for name in sorted(self._lanes):
            lane = self._lanes[name]
            if lane.queue and (best is None or lane.vtime < best.vtime):
                best = lane
        if best is not None:
            handle = best.queue.popleft()
            self._queued -= 1
            self._gvtime = best.vtime
            cost = handle.predicted_seconds
            best.vtime += max(
                cost if cost is not None else _UNIT_COST, 1e-9
            ) / max(best.weight, 1e-9)
            return handle
        if self._backfill:
            self._queued -= 1
            return self._backfill.popleft()
        return None

    def _worker(self, index: int) -> None:
        priority_only = index < self._reserved
        while True:
            with self._cond:
                handle = None
                while handle is None:
                    if self._closed:
                        return
                    handle = self._pop_locked(priority_only)
                    if handle is None:
                        self._cond.wait()
                    elif handle.done():
                        # Cancelled while queued; already torn down.
                        handle = None
                self._running += 1
                self._update_gauges_locked()
            try:
                self._dispatch(handle)
            finally:
                with self._cond:
                    self._running -= 1
                    self._update_gauges_locked()
                    self._cond.notify_all()

    def _dispatch(self, handle: QueryHandle) -> None:
        with handle._lock:
            if handle._state != "queued":
                return
            handle._state = "running"
            handle.started_at = self._clock()
        wait = handle.started_at - handle.submitted_at
        self.metrics.record("sched.dispatched")
        self.metrics.histogram("sched.wait_seconds").observe(wait)
        self.metrics.histogram(
            f"sched.wait_seconds.{handle.tenant}"
        ).observe(wait)
        opts = handle.options.replace(run_state=handle.run_state)
        tracer = opts.tracer()
        try:
            if tracer.enabled:
                with tracer.span(
                    "sched",
                    tenant=handle.tenant,
                    priority=handle.priority,
                    wait_seconds=round(wait, 6),
                    predicted_seconds=handle.predicted_seconds,
                ):
                    result = self.service.submit(handle.sql, opts)
            else:
                result = self.service.submit(handle.sql, opts)
        except QueryCancelledError as exc:
            self.metrics.record("sched.cancelled")
            if exc.reason == "deadline":
                self.metrics.record("sched.deadline_cancelled")
            handle._finish("cancelled", error=exc)
        except QuotaExceededError as exc:
            self.metrics.record("sched.quota_trips")
            handle._finish("failed", error=exc)
        except BaseException as exc:
            self.metrics.record("sched.failed")
            handle._finish("failed", error=exc)
        else:
            self.metrics.record("sched.completed")
            handle._finish("done", result=result)

    def _on_queued_cancel(self, reason: str) -> None:
        self.metrics.record("sched.cancelled")
        if reason == "deadline":
            self.metrics.record("sched.deadline_cancelled")
        with self._cond:
            self._update_gauges_locked()

    def _monitor_loop(self) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
                now = self._clock()
                fire = []
                while self._deadlines and self._deadlines[0][0] <= now:
                    fire.append(heapq.heappop(self._deadlines)[2])
                fire = [h for h in fire if not h.done()]
                if not fire:
                    timeout = None
                    if self._deadlines:
                        timeout = max(0.01, self._deadlines[0][0] - now)
                    self._cond.wait(timeout)
                    continue
            for handle in fire:
                handle.cancel("deadline")

    def _update_gauges_locked(self) -> None:
        self.metrics.gauge("sched.queue_depth").set(self._queued)
        self.metrics.gauge("sched.running").set(self._running)
