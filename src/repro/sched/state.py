"""Per-query run state: the cooperative cancel/quota/deadline carrier.

A :class:`RunState` is created by the scheduler for each admitted query
and travels on ``ExecOptions.run_state`` through the coordinator into
the data-source services.  Execution code calls :meth:`charge` after
producing a partial (an AFC locally, a node partial over ``tcp://``)
and :meth:`checkpoint` before starting more work; both raise the typed
scheduler error — :class:`~repro.errors.QueryCancelledError` or
:class:`~repro.errors.QuotaExceededError` — once the query must stop.

Cooperative by design: a trip never interrupts a read mid-flight, it
surfaces at the next partial boundary, so a query overshoots its quota
by at most one partial.  The state is deliberately dependency-free
(``threading`` + ``repro.errors`` only) so any layer can hold one
without import cycles.

This module also owns the process-wide abandoned-thread ledger backing
the ``sched.threads_abandoned`` counter: every sacrificial extraction
thread the query service gives up on is recorded here, whatever service
instance abandoned it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..errors import QueryCancelledError, QuotaExceededError


class RunState:
    """Thread-safe live state of one scheduled query."""

    __slots__ = (
        "_lock",
        "_cancelled",
        "_cancel_reason",
        "_quota_trip",
        "row_quota",
        "byte_quota",
        "deadline_at",
        "rows",
        "nbytes",
        "clock",
    )

    def __init__(
        self,
        row_quota: Optional[int] = None,
        byte_quota: Optional[int] = None,
        deadline_at: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._lock = threading.Lock()
        self._cancelled = False
        self._cancel_reason = ""
        #: (kind, used, quota) of the first quota trip, or None.
        self._quota_trip: Optional[tuple] = None
        self.row_quota = row_quota
        self.byte_quota = byte_quota
        #: Absolute ``clock()`` time past which the query auto-cancels.
        self.deadline_at = deadline_at
        self.rows = 0
        self.nbytes = 0
        self.clock = clock

    # -- signalling -----------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation; the first call wins and returns True."""
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self._cancel_reason = reason
            return True

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    @property
    def should_stop(self) -> bool:
        """True once any stop condition holds (no exception raised)."""
        with self._lock:
            if self._cancelled or self._quota_trip is not None:
                return True
        if self.deadline_at is not None and self.clock() >= self.deadline_at:
            return True
        return False

    # -- cooperative boundaries -----------------------------------------------

    def charge(self, rows: int = 0, nbytes: int = 0) -> None:
        """Account one partial's output, then :meth:`checkpoint`.

        Called after a partial is produced; the counts are totals across
        every thread of the query (the lock makes concurrent node
        workers safe).
        """
        with self._lock:
            self.rows += rows
            self.nbytes += nbytes
            if self._quota_trip is None:
                if self.row_quota is not None and self.rows > self.row_quota:
                    self._quota_trip = ("row", self.rows, self.row_quota)
                elif (
                    self.byte_quota is not None
                    and self.nbytes > self.byte_quota
                ):
                    self._quota_trip = ("byte", self.nbytes, self.byte_quota)
        self.checkpoint()

    def checkpoint(self) -> None:
        """Raise the pending stop condition, if any.

        Cancellation outranks a quota trip (an explicit cancel on a
        tripping query still reports as cancelled); a passed deadline
        converts into a cancellation with reason ``"deadline"`` so both
        auto-cancel paths — the scheduler's monitor thread and this
        in-band check — surface identically.
        """
        with self._lock:
            if self._cancelled:
                raise QueryCancelledError(self._cancel_reason)
            trip = self._quota_trip
        if trip is not None:
            raise QuotaExceededError(*trip)
        if self.deadline_at is not None and self.clock() >= self.deadline_at:
            self.cancel("deadline")
            raise QueryCancelledError("deadline")


class _AbandonedLedger:
    """Process-wide count of sacrificial threads abandoned on timeout."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def record(self) -> None:
        with self._lock:
            self._count += 1

    def count(self) -> int:
        with self._lock:
            return self._count


_ABANDONED = _AbandonedLedger()


def record_abandoned_thread() -> None:
    """Note one more sacrificial thread left behind (timeout/cancel)."""
    _ABANDONED.record()


def threads_abandoned() -> int:
    """Total sacrificial threads abandoned by this process so far."""
    return _ABANDONED.count()
