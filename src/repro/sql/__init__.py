"""SQL frontend: the SELECT/WHERE subset of Figure 1 of the paper."""

from .ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    Node,
    Not,
    Or,
    Query,
)
from .functions import DEFAULT_REGISTRY, FunctionRegistry, filter_function
from .lexer import Token, tokenize
from .parser import parse_query, parse_where
from .views import View, ViewRegistry
from .ranges import (
    Interval,
    IntervalSet,
    RangeMap,
    extract_ranges,
    query_is_unsatisfiable,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "Aggregate",
    "And",
    "Between",
    "BoolLiteral",
    "Column",
    "Comparison",
    "DEFAULT_REGISTRY",
    "FunctionCall",
    "FunctionRegistry",
    "InList",
    "Interval",
    "IntervalSet",
    "Literal",
    "Node",
    "Not",
    "Or",
    "Query",
    "RangeMap",
    "Token",
    "View",
    "ViewRegistry",
    "extract_ranges",
    "filter_function",
    "parse_query",
    "parse_where",
    "query_is_unsatisfiable",
    "tokenize",
]
