"""SQL frontend: the SELECT/WHERE subset of Figure 1 of the paper."""

from .ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    Node,
    Not,
    Or,
    Query,
)
from .functions import (
    DEFAULT_REGISTRY,
    FunctionRegistry,
    FunctionSignature,
    filter_function,
)
from .lexer import Token, tokenize
from .parser import parse_query, parse_where
from .views import View, ViewRegistry
from .ranges import (
    Interval,
    IntervalSet,
    RangeMap,
    extract_ranges,
    query_is_unsatisfiable,
)
from .rewrite import RewriteStep, rewrite_query, rewrite_where
from .typecheck import (
    ExprType,
    aggregate_output_dtype,
    aggregate_state_dtypes,
    infer_type,
    sum_accumulator_dtype,
    typecheck_query,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "Aggregate",
    "And",
    "Between",
    "BoolLiteral",
    "Column",
    "Comparison",
    "DEFAULT_REGISTRY",
    "ExprType",
    "FunctionCall",
    "FunctionRegistry",
    "FunctionSignature",
    "InList",
    "Interval",
    "IntervalSet",
    "Literal",
    "Node",
    "Not",
    "Or",
    "Query",
    "RangeMap",
    "RewriteStep",
    "Token",
    "View",
    "ViewRegistry",
    "aggregate_output_dtype",
    "aggregate_state_dtypes",
    "extract_ranges",
    "filter_function",
    "infer_type",
    "parse_query",
    "parse_where",
    "query_is_unsatisfiable",
    "rewrite_query",
    "rewrite_where",
    "sum_accumulator_dtype",
    "tokenize",
    "typecheck_query",
]
