"""Abstract syntax tree for the SQL subset.

Expression nodes know how to evaluate themselves vectorised over a mapping
of column name -> numpy array (plus a function registry for user-defined
filters), which is how the STORM filtering service applies the residual
predicate to extracted rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import QueryValidationError

Number = Union[int, float]
Value = Union[int, float, str]


def _render_value(value: Value) -> str:
    """A literal value as query text (strings quoted, so the rendered
    form lexes back to the same value)."""
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


def in_list_mask(data: np.ndarray, values: Sequence[Value]) -> np.ndarray:
    """Membership mask over ``data`` in one ``np.isin`` pass.

    Bit-identical to the per-value equality loop (``mask |= data == v``)
    it replaces, at O(n log k) instead of O(n·k) full-column passes:

    * values whose kind cannot match the column (a string against a
      numeric column, a number against a string column) are dropped
      before the comparison — elementwise ``==`` across kinds is False
      everywhere, so they never contributed a match;
    * the surviving values promote through ``np.asarray`` exactly as
      the binary ``==`` would (an int column against a float value
      compares in float64 either way);
    * NaN matches nothing in both formulations (``NaN == NaN`` is
      False, and ``np.isin``'s sort-based path detects equality with
      ``==`` on adjacent elements).

    Shared by the interpreted :meth:`InList.evaluate` and the compiled
    predicate kernels, so both paths agree by construction.
    """
    if data.dtype.kind in "US":
        usable = [v for v in values if isinstance(v, str)]
    else:
        usable = [v for v in values if isinstance(v, (int, float))]
    if not usable:
        return np.zeros(data.shape, dtype=bool)
    return np.isin(data, np.asarray(usable))


class Node:
    """Base class for query AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Column(Node):
    """A reference to a virtual-table attribute."""

    name: str

    __slots__ = ("name",)

    def evaluate(self, columns: Mapping[str, np.ndarray], functions) -> np.ndarray:
        try:
            return columns[self.name]
        except KeyError:
            raise QueryValidationError(f"unknown attribute {self.name!r}") from None

    def referenced_columns(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Node):
    """A numeric or string constant."""

    value: Value

    __slots__ = ("value",)

    def evaluate(self, columns: Mapping[str, np.ndarray], functions):
        return self.value

    def referenced_columns(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class FunctionCall(Node):
    """A user-defined filter function applied to operands.

    The paper's Figure 1 example: ``SPEED(OILVX, OILVY, OILVZ) <= 30.0``.
    """

    name: str
    args: Tuple[Node, ...]

    __slots__ = ("name", "args")

    def evaluate(self, columns: Mapping[str, np.ndarray], functions) -> np.ndarray:
        func = functions.get(self.name)
        values = [arg.evaluate(columns, functions) for arg in self.args]
        return func(*values)

    def referenced_columns(self) -> Tuple[str, ...]:
        out: List[str] = []
        for arg in self.args:
            out.extend(arg.referenced_columns())
        return tuple(out)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


Operand = Union[Column, Literal, FunctionCall]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

_CMP = {
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Mirror of each comparison operator when operands are swapped.
MIRROR_OP = {"=": "=", "==": "==", "!=": "!=", "<>": "<>",
             "<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: Negation of each comparison operator.
NEGATE_OP = {"=": "!=", "==": "!=", "!=": "=", "<>": "=",
             "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


@dataclass(frozen=True)
class Comparison(Node):
    """``left op right`` where op is a comparison operator."""

    op: str
    left: Node
    right: Node

    __slots__ = ("op", "left", "right")

    def __post_init__(self):
        if self.op not in _CMP:
            raise QueryValidationError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, columns, functions) -> np.ndarray:
        left = self.left.evaluate(columns, functions)
        right = self.right.evaluate(columns, functions)
        return _CMP[self.op](left, right)

    def referenced_columns(self) -> Tuple[str, ...]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InList(Node):
    """``column IN (v1, v2, ...)`` — e.g. ``RID in (0,6,26,27)``."""

    operand: Node
    values: Tuple[Value, ...]

    __slots__ = ("operand", "values")

    def evaluate(self, columns, functions) -> np.ndarray:
        data = np.asarray(self.operand.evaluate(columns, functions))
        return in_list_mask(data, self.values)

    def referenced_columns(self) -> Tuple[str, ...]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        vals = ", ".join(_render_value(v) for v in self.values)
        return f"{self.operand} IN ({vals})"


@dataclass(frozen=True)
class Between(Node):
    """``column BETWEEN lo AND hi`` (inclusive both ends, SQL semantics)."""

    operand: Node
    lo: Value
    hi: Value

    __slots__ = ("operand", "lo", "hi")

    def evaluate(self, columns, functions) -> np.ndarray:
        data = self.operand.evaluate(columns, functions)
        return (data >= self.lo) & (data <= self.hi)

    def referenced_columns(self) -> Tuple[str, ...]:
        return self.operand.referenced_columns()

    def __str__(self) -> str:
        return (
            f"{self.operand} BETWEEN {_render_value(self.lo)} "
            f"AND {_render_value(self.hi)}"
        )


@dataclass(frozen=True)
class And(Node):
    terms: Tuple[Node, ...]

    __slots__ = ("terms",)

    def __post_init__(self):
        # An empty conjunction used to evaluate to None, which every
        # consumer downstream misread as "no mask".  The rewrite pass
        # never builds one (it folds empty AND to TRUE); hand-built
        # trees fail here, at construction, with a typed error.
        if not self.terms:
            raise QueryValidationError(
                "AND requires at least one term; use BoolLiteral(True) "
                "for the empty conjunction"
            )

    def evaluate(self, columns, functions) -> np.ndarray:
        mask = None
        for term in self.terms:
            value = np.asarray(term.evaluate(columns, functions))
            mask = value if mask is None else (mask & value)
        return mask

    def referenced_columns(self) -> Tuple[str, ...]:
        out: List[str] = []
        for term in self.terms:
            out.extend(term.referenced_columns())
        return tuple(out)

    def __str__(self) -> str:
        # Nested And must be parenthesized too: AND is left-associative
        # in the parser, so an unparenthesized nested conjunction would
        # reparse flattened instead of round-tripping bit-identically.
        return " AND ".join(
            f"({t})" if isinstance(t, (And, Or)) else str(t)
            for t in self.terms
        )


@dataclass(frozen=True)
class Or(Node):
    terms: Tuple[Node, ...]

    __slots__ = ("terms",)

    def __post_init__(self):
        if not self.terms:
            raise QueryValidationError(
                "OR requires at least one term; use BoolLiteral(False) "
                "for the empty disjunction"
            )

    def evaluate(self, columns, functions) -> np.ndarray:
        mask = None
        for term in self.terms:
            value = np.asarray(term.evaluate(columns, functions))
            mask = value if mask is None else (mask | value)
        return mask

    def referenced_columns(self) -> Tuple[str, ...]:
        out: List[str] = []
        for term in self.terms:
            out.extend(term.referenced_columns())
        return tuple(out)

    def __str__(self) -> str:
        # A nested Or needs parens for the same reason as nested And;
        # an And term does not (AND binds tighter than OR).
        return " OR ".join(
            f"({t})" if isinstance(t, Or) else str(t) for t in self.terms
        )


@dataclass(frozen=True)
class Not(Node):
    term: Node

    __slots__ = ("term",)

    def evaluate(self, columns, functions) -> np.ndarray:
        return ~np.asarray(self.term.evaluate(columns, functions))

    def referenced_columns(self) -> Tuple[str, ...]:
        return self.term.referenced_columns()

    def __str__(self) -> str:
        return f"NOT ({self.term})"


@dataclass(frozen=True)
class BoolLiteral(Node):
    """``TRUE`` / ``FALSE`` — useful in tests and generated queries."""

    value: bool

    __slots__ = ("value",)

    def evaluate(self, columns, functions):
        return self.value

    def referenced_columns(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return "TRUE" if self.value else "FALSE"


# ---------------------------------------------------------------------------
# Aggregate select items
# ---------------------------------------------------------------------------

#: The supported reduction vocabulary (lower-case canonical spelling).
AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class Aggregate(Node):
    """One aggregate select item: ``COUNT(*)``, ``SUM(X)``, ``AVG(Y)`` ...

    ``column`` is ``None`` only for ``COUNT(*)``.  In this storage model
    no attribute is ever NULL, so ``COUNT(attr)`` counts exactly the same
    rows as ``COUNT(*)`` (documented in docs/language.md).
    """

    # No __slots__ here: the defaulted ``column`` field would collide
    # with the slot descriptor (a dataclass default is a class variable).
    func: str
    column: Optional[str] = None

    def __post_init__(self):
        if self.func not in AGGREGATE_FUNCTIONS:
            raise QueryValidationError(
                f"unknown aggregate function {self.func!r}; supported: "
                f"{', '.join(f.upper() for f in AGGREGATE_FUNCTIONS)}"
            )
        if self.column is None and self.func != "count":
            raise QueryValidationError(
                f"{self.func.upper()}(*) is not defined; only COUNT "
                "accepts '*'"
            )

    @property
    def label(self) -> str:
        """The output column name of this item, e.g. ``SUM(SOIL)``."""
        arg = "*" if self.column is None else self.column
        return f"{self.func.upper()}({arg})"

    def referenced_columns(self) -> Tuple[str, ...]:
        return () if self.column is None else (self.column,)

    def __str__(self) -> str:
        return self.label


#: A select-list entry: a bare attribute name or an aggregate.
SelectItem = Union[str, Aggregate]


# ---------------------------------------------------------------------------
# The query
# ---------------------------------------------------------------------------


@dataclass
class Query:
    """A parsed ``SELECT ... FROM ... [WHERE ...] [GROUP BY ...]`` query.

    ``select`` is ``None`` for ``SELECT *`` (all schema attributes, schema
    order); otherwise a list of select items in SELECT order — bare
    attribute names and/or :class:`Aggregate` items.  ``group_by`` lists
    the grouping attributes, or is ``None`` for an ungrouped query.
    """

    table: str
    select: Optional[List[SelectItem]] = None
    where: Optional[Node] = None
    group_by: Optional[List[str]] = None

    @property
    def is_select_star(self) -> bool:
        return self.select is None

    @property
    def is_aggregate(self) -> bool:
        """Whether this query runs through the aggregation pipeline
        (any aggregate select item, or a GROUP BY clause — the latter
        alone has DISTINCT semantics)."""
        if self.group_by is not None:
            return True
        return any(
            isinstance(item, Aggregate) for item in (self.select or [])
        )

    def aggregates(self) -> List[Aggregate]:
        """The aggregate select items, in SELECT order."""
        return [
            item for item in (self.select or []) if isinstance(item, Aggregate)
        ]

    def bare_select_names(self) -> List[str]:
        """The non-aggregate select items, in SELECT order."""
        return [
            item for item in (self.select or []) if isinstance(item, str)
        ]

    def projected_names(self, schema_names: Sequence[str]) -> List[str]:
        """Resolve the output column list against a schema.

        Only meaningful for plain (row) queries; aggregate queries
        project computed labels, resolved by the aggregate planner.
        """
        if self.select is None:
            return list(schema_names)
        names: List[str] = []
        for item in self.select:
            if isinstance(item, Aggregate):
                raise QueryValidationError(
                    f"aggregate item {item.label} has no schema projection; "
                    "aggregate queries are planned through the aggregation "
                    "pipeline"
                )
            if item not in schema_names:
                raise QueryValidationError(
                    f"SELECT references unknown attribute {item!r}"
                )
            names.append(item)
        return names

    def referenced_columns(self) -> Tuple[str, ...]:
        """All attributes the WHERE clause reads (deduplicated, ordered)."""
        if self.where is None:
            return ()
        seen: List[str] = []
        for name in self.where.referenced_columns():
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def __str__(self) -> str:
        cols = (
            "*"
            if self.select is None
            else ", ".join(str(item) for item in self.select)
        )
        text = f"SELECT {cols} FROM {self.table}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        if self.group_by is not None:
            text += f" GROUP BY {', '.join(self.group_by)}"
        return text
