"""Registry of user-defined filter functions.

The query language admits application-specific filters such as
``SPEED(OILVX, OILVY, OILVZ) <= 30.0`` (paper Figure 1) and
``DISTANCE(X, Y, Z) < 1000`` (paper Figure 7).  Functions are vectorised:
they receive numpy arrays (one per argument, aligned element-wise) and must
return an array of the same length.  They are assumed *pure* — same
inputs, same outputs — which is what lets the rewrite pass deduplicate
repeated calls and the result cache replay answers.

The default registry ships the two functions used in the paper's
evaluation; applications register their own with
:meth:`FunctionRegistry.register` or the :func:`filter_function` decorator,
optionally declaring a :class:`FunctionSignature` so the static analyzer
can check arity and argument types without calling the function.

**Vectorization contract.**  ``register(..., vectorized=True)`` declares
that a function accepts full numpy arrays and returns an aligned array —
the contract the compiled predicate kernels (``repro.core.kernels``)
need to call it directly over a whole evaluation block.  Functions left
at the default ``vectorized=False`` still work everywhere: the
interpreted path calls them exactly as before, and the kernels wrap
them in a batched ``np.vectorize`` adapter (one Python call per row —
correct but slow; the static analyzer notes the regression as RT309).
Declared-vectorized functions must also be *elementwise* (row i of the
output depends only on row i of the inputs), which is what makes fusing
several chunks into one evaluation block sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from ..errors import QueryValidationError

FilterFunction = Callable[..., np.ndarray]


@dataclass(frozen=True)
class FunctionSignature:
    """Declared static type information for a filter function.

    ``min_args``/``max_args`` bound the positional argument count
    (``max_args=None`` means variadic).  A declared signature takes
    precedence over ``inspect``-based introspection in
    :meth:`FunctionRegistry.arity` — this is what lets a ``*coords``
    builtin like DISTANCE declare that it requires *at least one*
    argument, where introspection can only see "zero or more".

    ``arg_kind``/``result_kind`` describe the value domain
    (``"numeric"`` or ``"string"``) for the typechecker; every shipped
    filter is numeric-in/numeric-out.
    """

    min_args: int
    max_args: Optional[int] = None
    arg_kind: str = "numeric"
    result_kind: str = "numeric"


class FunctionRegistry:
    """Case-insensitive name -> vectorised function mapping."""

    def __init__(self, parent: Optional["FunctionRegistry"] = None):
        self._functions: Dict[str, FilterFunction] = {}
        self._signatures: Dict[str, FunctionSignature] = {}
        self._vectorized: Dict[str, bool] = {}
        self._parent = parent

    def register(
        self,
        name: str,
        func: FilterFunction,
        signature: Optional[FunctionSignature] = None,
        vectorized: bool = False,
    ) -> None:
        key = name.upper()
        if not key.isidentifier():
            raise QueryValidationError(f"invalid function name {name!r}")
        self._functions[key] = func
        self._vectorized[key] = vectorized
        if signature is not None:
            self._signatures[key] = signature

    def get(self, name: str) -> FilterFunction:
        key = name.upper()
        registry: Optional[FunctionRegistry] = self
        while registry is not None:
            if key in registry._functions:
                return registry._functions[key]
            registry = registry._parent
        raise QueryValidationError(
            f"filter function {name!r} is not registered; "
            f"known functions: {sorted(self.names())}"
        )

    def __contains__(self, name: str) -> bool:
        try:
            self.get(name)
            return True
        except QueryValidationError:
            return False

    def signature(self, name: str) -> Optional[FunctionSignature]:
        """The declared signature of a function, or None if undeclared.

        Walks the parent chain from the registry that owns the
        function's name, so a child-registry override without a
        signature also hides the parent's signature.
        """
        key = name.upper()
        registry: Optional[FunctionRegistry] = self
        while registry is not None:
            if key in registry._functions:
                return registry._signatures.get(key)
            registry = registry._parent
        return None

    def is_vectorized(self, name: str) -> bool:
        """Whether the function declared the vectorized calling contract.

        Resolved at the registry that owns the *function* (same walk as
        :meth:`signature`): a child-registry override that does not
        declare ``vectorized=True`` also hides the parent's declaration —
        the override's body is what actually runs, so the parent's
        promise says nothing about it.  Unregistered names are False.
        """
        key = name.upper()
        registry: Optional[FunctionRegistry] = self
        while registry is not None:
            if key in registry._functions:
                return registry._vectorized.get(key, False)
            registry = registry._parent
        return False

    def arity(self, name: str) -> "Tuple[int, Optional[int]]":
        """(min, max) positional argument count of a registered function.

        ``max`` is None for variadic functions (``*args``).  A declared
        :class:`FunctionSignature` wins over introspection: a variadic
        ``*args`` builtin introspects as ``(0, None)`` even when it
        raises at runtime on zero arguments, so DISTANCE declares
        ``(1, None)`` and the static analyzer rejects ``DISTANCE()``
        instead of passing it through to a runtime error.  Used by the
        static query analyzer to flag arity mismatches before execution.
        """
        declared = self.signature(name)
        if declared is not None:
            return declared.min_args, declared.max_args

        import inspect

        func = self.get(name)
        try:
            signature = inspect.signature(func)
        except (TypeError, ValueError):  # builtins without introspection
            return 0, None
        minimum, maximum = 0, 0
        variadic = False
        for param in signature.parameters.values():
            if param.kind in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
            ):
                maximum += 1
                if param.default is inspect.Parameter.empty:
                    minimum += 1
            elif param.kind is inspect.Parameter.VAR_POSITIONAL:
                variadic = True
        return minimum, (None if variadic else maximum)

    def names(self) -> Iterator[str]:
        registry: Optional[FunctionRegistry] = self
        seen = set()
        while registry is not None:
            for name in registry._functions:
                if name not in seen:
                    seen.add(name)
                    yield name
            registry = registry._parent

    def child(self) -> "FunctionRegistry":
        """A registry layered on this one (per-query overrides)."""
        return FunctionRegistry(parent=self)


#: Global default registry with the paper's two evaluation functions.
DEFAULT_REGISTRY = FunctionRegistry()


def filter_function(
    name: str,
    registry: Optional[FunctionRegistry] = None,
    signature: Optional[FunctionSignature] = None,
    vectorized: bool = False,
):
    """Decorator: register a filter function.

    >>> @filter_function("HALF", signature=FunctionSignature(1, 1),
    ...                  vectorized=True)
    ... def half(x):
    ...     return x / 2

    ``vectorized=True`` declares the array-in/array-out elementwise
    contract (see the module docstring); leave it off for scalar
    functions and the compiled kernels fall back to ``np.vectorize``.
    """

    def wrap(func: FilterFunction) -> FilterFunction:
        (registry or DEFAULT_REGISTRY).register(
            name, func, signature=signature, vectorized=vectorized
        )
        return func

    return wrap


@filter_function("SPEED", signature=FunctionSignature(3, 3), vectorized=True)
def speed(vx, vy, vz):
    """Magnitude of a velocity vector — the paper's IPARS Speed() filter."""
    vx = np.asarray(vx, dtype=np.float64)
    vy = np.asarray(vy, dtype=np.float64)
    vz = np.asarray(vz, dtype=np.float64)
    return np.sqrt(vx * vx + vy * vy + vz * vz)


@filter_function(
    "DISTANCE", signature=FunctionSignature(1, None), vectorized=True
)
def distance(*coords):
    """Euclidean distance from the origin — the paper's Titan filter."""
    if not coords:
        raise QueryValidationError("DISTANCE requires at least one argument")
    acc = np.zeros_like(np.asarray(coords[0], dtype=np.float64))
    for coord in coords:
        c = np.asarray(coord, dtype=np.float64)
        acc = acc + c * c
    return np.sqrt(acc)
