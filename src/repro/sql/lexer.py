"""Tokenizer for the SQL subset (SELECT / FROM / WHERE / GROUP BY).

The paper's query language (Figure 1) supports attribute projection, range
predicates, ``IN`` lists, boolean connectives, and user-defined filter
functions.  We extend it with the reduction vocabulary dashboards need:
``COUNT``/``SUM``/``MIN``/``MAX``/``AVG`` select items and a ``GROUP BY``
clause (see docs/language.md).  Joins remain absent.  The aggregate
function names are *not* keywords — they are recognised contextually in
the select list, so attributes named ``count`` or ``min`` keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Union

from ..errors import QuerySyntaxError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "IN",
    "BETWEEN",
    "TRUE",
    "FALSE",
    "GROUP",
    "BY",
}

#: Multi-character operators, longest first so lexing is greedy.
_OPERATORS = ("<=", ">=", "<>", "!=", "==", "<", ">", "=")

_PUNCT = set("(),*;")


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'punct' | 'end'
    value: Union[str, int, float]
    line: int
    column: int

    def matches(self, kind: str, value: object = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(text: str) -> List[Token]:
    """Lex a query string into a token list ending with an 'end' token."""
    return list(_iter_tokens(text))


def _iter_tokens(text: str) -> Iterator[Token]:
    pos, length = 0, len(text)
    line, line_start = 1, 0

    def location(p: int) -> tuple:
        return line, p - line_start + 1

    while pos < length:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch.isspace():
            pos += 1
            continue
        if ch == "-" and text.startswith("--", pos):
            nl = text.find("\n", pos)
            pos = length if nl < 0 else nl
            continue
        lin, col = location(pos)
        if ch.isdigit() or (
            ch in "+-." and pos + 1 < length and text[pos + 1].isdigit()
        ):
            token, pos = _lex_number(text, pos, lin, col)
            yield token
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token("keyword", upper, lin, col)
            else:
                yield Token("ident", word, lin, col)
            continue
        if ch in ("'", '"'):
            end = text.find(ch, pos + 1)
            if end < 0:
                raise QuerySyntaxError("unterminated string literal", lin, col)
            yield Token("string", text[pos + 1 : end], lin, col)
            pos = end + 1
            continue
        for op in _OPERATORS:
            if text.startswith(op, pos):
                yield Token("op", op, lin, col)
                pos += len(op)
                break
        else:
            if ch in _PUNCT:
                yield Token("punct", ch, lin, col)
                pos += 1
            else:
                raise QuerySyntaxError(f"unexpected character {ch!r}", lin, col)
    lin, col = location(pos)
    yield Token("end", "", lin, col)


def _lex_number(text: str, pos: int, line: int, col: int):
    start = pos
    length = len(text)
    if text[pos] in "+-":
        pos += 1
    is_float = False
    while pos < length and (text[pos].isdigit() or text[pos] in ".eE+-"):
        ch = text[pos]
        if ch == ".":
            is_float = True
        elif ch in "eE":
            # exponent: only if followed by digit or sign+digit
            nxt = text[pos + 1] if pos + 1 < length else ""
            if not (nxt.isdigit() or (nxt in "+-" and pos + 2 < length and text[pos + 2].isdigit())):
                break
            is_float = True
        elif ch in "+-":
            # sign valid only right after exponent marker
            if text[pos - 1] not in "eE":
                break
        pos += 1
    raw = text[start:pos]
    try:
        value: Union[int, float] = float(raw) if is_float else int(raw)
    except ValueError:
        raise QuerySyntaxError(f"bad numeric literal {raw!r}", line, col) from None
    return Token("number", value, line, col), pos
