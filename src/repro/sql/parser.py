"""Recursive-descent parser for the SQL subset.

Grammar (Figure 1 of the paper, with the usual SQL extras needed by the
evaluation queries, plus aggregates and grouping)::

    query     := SELECT select FROM ident [WHERE or_expr]
                 [GROUP BY ident (',' ident)*] [';']
    select    := '*' | item (',' item)*
    item      := ident | aggfunc '(' ('*' | ident) ')'
    aggfunc   := COUNT | SUM | MIN | MAX | AVG       -- contextual, not
                                                     -- reserved words
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | primary
    primary   := '(' or_expr ')' | TRUE | FALSE | predicate
    predicate := operand cmp operand
               | operand [NOT] IN '(' literal (',' literal)* ')'
               | operand [NOT] BETWEEN literal AND literal
    operand   := ident ['(' operand (',' operand)* ')'] | literal
"""

from __future__ import annotations

from typing import List

from ..errors import QuerySyntaxError
from .ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    Node,
    Not,
    Or,
    Query,
)
from .lexer import Token, tokenize


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`repro.sql.ast.Query`."""
    return _Parser(tokenize(text)).parse_query()


def parse_where(text: str) -> Node:
    """Parse a bare boolean expression (handy for tests and filters)."""
    return _Parser(tokenize(text)).parse_bare_expr()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- plumbing ------------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def error(self, message: str) -> QuerySyntaxError:
        token = self.peek()
        shown = token.value if token.kind != "end" else "<end of query>"
        return QuerySyntaxError(f"{message} (got {shown!r})", token.line, token.column)

    def accept_keyword(self, word: str) -> bool:
        if self.peek().matches("keyword", word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def accept_punct(self, ch: str) -> bool:
        if self.peek().matches("punct", ch):
            self.advance()
            return True
        return False

    def expect_punct(self, ch: str) -> None:
        if not self.accept_punct(ch):
            raise self.error(f"expected {ch!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise self.error("expected an identifier")
        self.advance()
        return str(token.value)

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect_keyword("SELECT")
        select = self.parse_select_list()
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_or_expr()
        group_by = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = [self.expect_ident()]
            while self.accept_punct(","):
                group_by.append(self.expect_ident())
        self.accept_punct(";")
        if not self.peek().matches("end"):
            raise self.error("unexpected input after end of query")
        return Query(table=table, select=select, where=where, group_by=group_by)

    def parse_bare_expr(self) -> Node:
        expr = self.parse_or_expr()
        self.accept_punct(";")
        if not self.peek().matches("end"):
            raise self.error("unexpected input after expression")
        return expr

    def parse_select_list(self):
        if self.accept_punct("*"):
            return None
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self):
        """A bare attribute, or an aggregate call.

        Aggregate names are contextual: ``ident '('`` in the select list
        is always an aggregate attempt (plain select items are bare
        attributes; filter functions belong to WHERE), so an attribute
        that happens to be named ``count`` still projects fine.
        """
        name = self.expect_ident()
        if not self.peek().matches("punct", "("):
            return name
        func = name.lower()
        if func not in AGGREGATE_FUNCTIONS:
            raise self.error(
                f"unknown aggregate function {name!r} in SELECT "
                "(supported: COUNT, SUM, MIN, MAX, AVG)"
            )
        self.advance()  # '('
        if self.accept_punct("*"):
            self.expect_punct(")")
            if func != "count":
                raise self.error(f"{func.upper()}(*) is not defined")
            return Aggregate("count", None)
        column = self.expect_ident()
        self.expect_punct(")")
        return Aggregate(func, column)

    def parse_or_expr(self) -> Node:
        terms = [self.parse_and_expr()]
        while self.accept_keyword("OR"):
            terms.append(self.parse_and_expr())
        if len(terms) == 1:
            return terms[0]
        return Or(tuple(terms))

    def parse_and_expr(self) -> Node:
        terms = [self.parse_not_expr()]
        while self.accept_keyword("AND"):
            terms.append(self.parse_not_expr())
        if len(terms) == 1:
            return terms[0]
        return And(tuple(terms))

    def parse_not_expr(self) -> Node:
        if self.accept_keyword("NOT"):
            return Not(self.parse_not_expr())
        return self.parse_primary()

    def parse_primary(self) -> Node:
        token = self.peek()
        if token.matches("keyword", "TRUE"):
            self.advance()
            return BoolLiteral(True)
        if token.matches("keyword", "FALSE"):
            self.advance()
            return BoolLiteral(False)
        if token.matches("punct", "("):
            # Could be a parenthesised boolean expression; a predicate whose
            # left operand is parenthesised is not part of the subset.
            self.advance()
            expr = self.parse_or_expr()
            self.expect_punct(")")
            return expr
        return self.parse_predicate()

    def parse_predicate(self) -> Node:
        left = self.parse_operand()
        token = self.peek()
        negated = False
        if token.matches("keyword", "NOT"):
            self.advance()
            negated = True
            token = self.peek()
        if token.matches("keyword", "IN"):
            self.advance()
            node: Node = InList(left, tuple(self.parse_literal_list()))
            return Not(node) if negated else node
        if token.matches("keyword", "BETWEEN"):
            self.advance()
            lo = self.parse_literal_value()
            self.expect_keyword("AND")
            hi = self.parse_literal_value()
            node = Between(left, lo, hi)
            return Not(node) if negated else node
        if negated:
            raise self.error("expected IN or BETWEEN after NOT")
        if token.kind != "op":
            raise self.error("expected a comparison operator")
        self.advance()
        right = self.parse_operand()
        return Comparison(str(token.value), left, right)

    def parse_operand(self) -> Node:
        token = self.peek()
        if token.kind == "number" or token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "ident":
            name = self.expect_ident()
            if self.accept_punct("("):
                args: List[Node] = []
                if not self.accept_punct(")"):
                    args.append(self.parse_operand())
                    while self.accept_punct(","):
                        args.append(self.parse_operand())
                    self.expect_punct(")")
                return FunctionCall(name, tuple(args))
            return Column(name)
        raise self.error("expected an attribute, literal, or function call")

    def parse_literal_list(self) -> List:
        self.expect_punct("(")
        values = [self.parse_literal_value()]
        while self.accept_punct(","):
            values.append(self.parse_literal_value())
        self.expect_punct(")")
        return values

    def parse_literal_value(self):
        token = self.peek()
        if token.kind in ("number", "string"):
            self.advance()
            return token.value
        raise self.error("expected a literal value")
