"""Interval algebra: turning WHERE clauses into per-attribute ranges.

The indexing service prunes aligned file chunks using *necessary* range
conditions derived from the query: for every attribute, a set of intervals
that must contain the attribute's value in any qualifying row.  Pruning with
an over-approximation is always safe because the full predicate is still
applied to extracted rows by the filtering service.

Derivation rules:

* ``attr op literal``      -> a single (half-)interval,
* ``attr IN (v1, ...)``    -> union of points,
* ``attr BETWEEN lo AND hi`` -> one closed interval,
* ``AND``                  -> per-attribute intersection,
* ``OR``                   -> per-attribute union; an attribute
  unconstrained on either branch becomes unconstrained,
* ``NOT``                  -> pushed inward through connectives and
  comparisons (De Morgan); unsupported negations fall back to "no
  constraint", which is conservative and therefore safe,
* function calls and column-to-column comparisons contribute nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .ast import (
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    InList,
    Literal,
    Node,
    Not,
    Or,
    MIRROR_OP,
)

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    """A numeric interval with independently open/closed endpoints."""

    lo: float = -_INF
    hi: float = _INF
    lo_open: bool = False
    hi_open: bool = False

    def is_empty(self) -> bool:
        if self.lo > self.hi:
            return True
        if self.lo == self.hi and (self.lo_open or self.hi_open):
            return True
        return False

    def contains(self, value: float) -> bool:
        if value < self.lo or (value == self.lo and self.lo_open):
            return False
        if value > self.hi or (value == self.hi and self.hi_open):
            return False
        return True

    def intersect(self, other: "Interval") -> "Interval":
        if self.lo > other.lo or (self.lo == other.lo and self.lo_open):
            lo, lo_open = self.lo, self.lo_open
        else:
            lo, lo_open = other.lo, other.lo_open
        if self.hi < other.hi or (self.hi == other.hi and self.hi_open):
            hi, hi_open = self.hi, self.hi_open
        else:
            hi, hi_open = other.hi, other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def overlaps(self, other: "Interval") -> bool:
        return not self.intersect(other).is_empty()

    def touches_or_overlaps(self, other: "Interval") -> bool:
        """True when the union with ``other`` is a single interval."""
        if self.overlaps(other):
            return True
        # Adjacent like [a, b) and [b, c]: closed meets open at b.
        if self.hi == other.lo and not (self.hi_open and other.lo_open):
            return True
        if other.hi == self.lo and not (other.hi_open and self.lo_open):
            return True
        return False

    def hull(self, other: "Interval") -> "Interval":
        if self.lo < other.lo or (self.lo == other.lo and not self.lo_open):
            lo, lo_open = self.lo, self.lo_open
        else:
            lo, lo_open = other.lo, other.lo_open
        if self.hi > other.hi or (self.hi == other.hi and not self.hi_open):
            hi, hi_open = self.hi, self.hi_open
        else:
            hi, hi_open = other.hi, other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    @staticmethod
    def point(value: float) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def from_comparison(op: str, value: float) -> "Interval":
        if op in ("=", "=="):
            return Interval(value, value)
        if op == "<":
            return Interval(hi=value, hi_open=True)
        if op == "<=":
            return Interval(hi=value)
        if op == ">":
            return Interval(lo=value, lo_open=True)
        if op == ">=":
            return Interval(lo=value)
        raise ValueError(f"operator {op!r} has no interval form")

    def __str__(self) -> str:
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo}, {self.hi}{right}"


class IntervalSet:
    """A normalised union of disjoint intervals.

    Immutable; ``FULL`` means "no constraint" and ``EMPTY`` means
    "no value can qualify" (the chunk/file can be skipped outright).
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self.intervals: Tuple[Interval, ...] = _normalise(intervals)

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def full() -> "IntervalSet":
        return _FULL

    @staticmethod
    def empty() -> "IntervalSet":
        return _EMPTY

    @staticmethod
    def of(lo: float, hi: float, lo_open: bool = False, hi_open: bool = False):
        return IntervalSet([Interval(lo, hi, lo_open, hi_open)])

    @staticmethod
    def points(values: Iterable[float]) -> "IntervalSet":
        return IntervalSet([Interval.point(v) for v in values])

    # -- predicates --------------------------------------------------------------

    def is_full(self) -> bool:
        return (
            len(self.intervals) == 1
            and self.intervals[0].lo == -_INF
            and self.intervals[0].hi == _INF
        )

    def is_empty(self) -> bool:
        return not self.intervals

    def contains(self, value: float) -> bool:
        return any(iv.contains(value) for iv in self.intervals)

    def overlaps_interval(self, interval: Interval) -> bool:
        return any(iv.overlaps(interval) for iv in self.intervals)

    def overlaps_range(self, lo: float, hi: float) -> bool:
        """Whether the set intersects the closed range [lo, hi]."""
        return self.overlaps_interval(Interval(lo, hi))

    # -- algebra -------------------------------------------------------------------

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        if self.is_full():
            return other
        if other.is_full():
            return self
        out: List[Interval] = []
        for a in self.intervals:
            for b in other.intervals:
                c = a.intersect(b)
                if not c.is_empty():
                    out.append(c)
        return IntervalSet(out)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        if self.is_full() or other.is_full():
            return _FULL
        return IntervalSet(self.intervals + other.intervals)

    @property
    def bounds(self) -> Tuple[float, float]:
        """(min, max) hull of the set; (+inf, -inf) when empty."""
        if not self.intervals:
            return (_INF, -_INF)
        return (self.intervals[0].lo, self.intervals[-1].hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __str__(self) -> str:
        if self.is_empty():
            return "{}"
        return " u ".join(str(iv) for iv in self.intervals)

    def __repr__(self) -> str:
        return f"IntervalSet({self})"


def _normalise(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
    live = [iv for iv in intervals if not iv.is_empty()]
    live.sort(key=lambda iv: (iv.lo, iv.lo_open))
    merged: List[Interval] = []
    for iv in live:
        if merged and merged[-1].touches_or_overlaps(iv):
            merged[-1] = merged[-1].hull(iv)
        else:
            merged.append(iv)
    return tuple(merged)


_FULL = IntervalSet.__new__(IntervalSet)
_FULL.intervals = (Interval(),)
_EMPTY = IntervalSet.__new__(IntervalSet)
_EMPTY.intervals = ()


# ---------------------------------------------------------------------------
# Extraction from WHERE expressions
# ---------------------------------------------------------------------------

RangeMap = Dict[str, IntervalSet]


def extract_ranges(node: Optional[Node]) -> RangeMap:
    """Per-attribute necessary ranges implied by a WHERE expression.

    Attributes absent from the result are unconstrained.  An attribute
    mapped to an empty set means the whole query selects nothing.
    """
    if node is None:
        return {}
    return _extract(node, negated=False)


def _extract(node: Node, negated: bool) -> RangeMap:
    if isinstance(node, Not):
        return _extract(node.term, not negated)

    if isinstance(node, And):
        branches = [_extract(t, negated) for t in node.terms]
        return _merge(branches, all_of=not negated)

    if isinstance(node, Or):
        branches = [_extract(t, negated) for t in node.terms]
        return _merge(branches, all_of=negated)

    if isinstance(node, BoolLiteral):
        value = node.value != negated
        if value:
            return {}
        # FALSE constrains every attribute to nothing; represent with a
        # sentinel on the empty attribute name, handled by callers via
        # query_is_unsatisfiable().
        return {_FALSE_KEY: IntervalSet.empty()}

    if isinstance(node, Comparison):
        return _from_comparison(node, negated)

    if isinstance(node, InList):
        if negated or not isinstance(node.operand, Column):
            return {}
        numeric = [v for v in node.values if isinstance(v, (int, float))]
        if len(numeric) != len(node.values):
            return {}
        return {node.operand.name: IntervalSet.points(numeric)}

    if isinstance(node, Between):
        if not isinstance(node.operand, Column):
            return {}
        lo, hi = node.lo, node.hi
        if not isinstance(lo, (int, float)) or not isinstance(hi, (int, float)):
            return {}
        if negated:
            return {
                node.operand.name: IntervalSet(
                    [Interval(hi=lo, hi_open=True), Interval(lo=hi, lo_open=True)]
                )
            }
        return {node.operand.name: IntervalSet.of(lo, hi)}

    # Function calls or anything else: no derivable constraint.
    return {}


_FALSE_KEY = "\x00unsatisfiable"


def query_is_unsatisfiable(ranges: RangeMap) -> bool:
    """Whether the derived ranges prove the query selects no rows."""
    return any(s.is_empty() for s in ranges.values())


def _from_comparison(node: Comparison, negated: bool) -> RangeMap:
    column: Optional[Column] = None
    value = None
    op = node.op
    if isinstance(node.left, Column) and isinstance(node.right, Literal):
        column, value = node.left, node.right.value
    elif isinstance(node.right, Column) and isinstance(node.left, Literal):
        column, value = node.right, node.left.value
        op = MIRROR_OP[op]
    if column is None or not isinstance(value, (int, float)):
        return {}
    if negated:
        from .ast import NEGATE_OP

        op = NEGATE_OP[op]
    if op in ("!=", "<>"):
        return {
            column.name: IntervalSet(
                [Interval(hi=value, hi_open=True), Interval(lo=value, lo_open=True)]
            )
        }
    return {column.name: IntervalSet([Interval.from_comparison(op, value)])}


def _merge(branches: List[RangeMap], all_of: bool) -> RangeMap:
    """Combine branch range maps: intersection (AND) or union (OR)."""
    if not branches:
        return {}
    if all_of:
        out: RangeMap = {}
        for branch in branches:
            for name, ivs in branch.items():
                out[name] = out[name].intersect(ivs) if name in out else ivs
        return out
    # OR: an attribute must be constrained in EVERY branch to stay constrained.
    common = set(branches[0])
    for branch in branches[1:]:
        common &= set(branch)
    out = {}
    for name in common:
        acc = branches[0][name]
        for branch in branches[1:]:
            acc = acc.union(branch[name])
        out[name] = acc
    return out
