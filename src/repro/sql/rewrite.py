"""Provably-equivalence-preserving query normalization.

Every query passes through :func:`rewrite_query` before planning and
cache keying.  Each transformation preserves the *vectorised evaluation
semantics* of the WHERE tree exactly — including IEEE NaN behaviour on
float attributes, where every comparison against NaN is elementwise
False.  That rules out one classically "obvious" rewrite: an interval
union that covers the whole number line (``X < 5 OR X >= 5``) is *not*
folded to TRUE, because a NaN row fails both sides.  Interval algebra is
therefore only applied to *conjuncts* over one operand — and only to the
comparisons that are elementwise False on NaN (``=``, ``<``, ``<=``,
``>``, ``>=``, positive IN).  ``!=`` is excluded: it is True on NaN, so
re-rendering its co-finite interval set as ranges would flip NaN rows.
The reachable outcomes (dropping a subsumed bound, folding an empty
intersection to FALSE) are then pointwise sound under NaN.

Filter functions are assumed pure (same inputs, same outputs); the
result cache and plan memoizer already rely on this, and
``docs/language.md`` documents it as a language-level contract.

Each applied rewrite is recorded as a :class:`RewriteStep` carrying an
``RW4xx`` diagnostic code, surfaced by ``repro check --explain`` and as
a ``rewrite`` span in the trace:

========  ==========================================================
RW400     constant folded (``3 < 5`` → TRUE, ``5 IN (1, 2)`` → FALSE)
RW401     comparison canonicalized (``10 > a`` → ``a < 10``,
          ``==`` → ``=``, ``<>`` → ``!=``)
RW402     NOT pushed inward (De Morgan, double negation; comparisons
          stay wrapped — flipping the operator is NaN-unsound)
RW403     BETWEEN expanded (``x BETWEEN 1 AND 5`` →
          ``x >= 1 AND x <= 5``; bit-identical evaluation)
RW404     IN list canonicalized (deduplicated, sorted, singleton → ``=``)
RW405     duplicate term eliminated (``a AND a`` → ``a``)
RW406     subsumed range conjunct merged (``x > 1 AND x > 3`` →
          ``x > 3``)
RW407     neutral/absorbing constant eliminated (TRUE in AND, FALSE in
          OR, TRUE disjunct absorbs, WHERE TRUE dropped)
RW408     contradiction folded to FALSE (``x > 1 AND x < 0``)
RW409     term order canonicalized (nested AND/OR flattened, terms
          sorted)
========  ==========================================================

The pass runs bottom-up to a structural fixpoint, so the output is a
*canonical form*: two equivalent spellings (commuted conjuncts, flipped
comparisons, folded constants) normalize to the same tree, which is how
``repro.cache`` collapses them onto one ``QueryKey``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .ast import (
    MIRROR_OP,
    And,
    Between,
    BoolLiteral,
    Comparison,
    InList,
    Literal,
    Node,
    Not,
    Or,
    Query,
    Value,
)
from .ranges import Interval, IntervalSet

__all__ = ["RewriteStep", "rewrite_where", "rewrite_query"]

TRUE = BoolLiteral(True)
FALSE = BoolLiteral(False)

#: Upper bound on fixpoint passes; each pass strictly shrinks or
#: canonicalizes the tree, so real queries converge in 2-3 passes.
_MAX_PASSES = 16

_PY_CMP: Dict[str, Callable[[Value, Value], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Operator spellings normalized away by RW401.
_OP_SPELLING = {"==": "=", "<>": "!="}


@dataclass(frozen=True)
class RewriteStep:
    """One auditable normalization step (an ``RW4xx`` explain entry)."""

    code: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.detail}"


def _is_plain_number(value: object) -> bool:
    """A numeric literal value usable in interval algebra (bools are
    excluded: TRUE/FALSE compare as 1/0 but are not ranges)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _sort_key(value: Value) -> Tuple[bool, Value]:
    """Total order over IN-list values that never compares str to num."""
    return (isinstance(value, str), value)


# ---------------------------------------------------------------------------
# Leaf rewrites
# ---------------------------------------------------------------------------


def _fold_comparison(op: str, a: Value, b: Value) -> Optional[BoolLiteral]:
    """Fold ``literal op literal`` when both sides share a type class."""
    if isinstance(a, bool) or isinstance(b, bool):
        return None
    if isinstance(a, str) != isinstance(b, str):
        return None
    return TRUE if _PY_CMP[op](a, b) else FALSE


def _rewrite_comparison(node: Comparison, steps: List[RewriteStep]) -> Node:
    op = _OP_SPELLING.get(node.op, node.op)
    if op != node.op:
        steps.append(
            RewriteStep(
                "RW401",
                f"canonicalized operator spelling {node.op!r} to {op!r}",
            )
        )
    left, right = node.left, node.right
    if isinstance(left, Literal) and isinstance(right, Literal):
        folded = _fold_comparison(op, left.value, right.value)
        if folded is not None:
            steps.append(
                RewriteStep("RW400", f"folded constant {node} to {folded}")
            )
            return folded
    if isinstance(left, Literal) and not isinstance(right, Literal):
        # Literal on the left: mirror so the attribute/function leads.
        left, right, op = right, left, MIRROR_OP[op]
        steps.append(
            RewriteStep("RW401", f"oriented {node} as {left} {op} {right}")
        )
    elif (
        not isinstance(left, Literal)
        and not isinstance(right, Literal)
        and str(right) < str(left)
    ):
        # Neither side is a literal (e.g. ``SOIL > SGAS``): order the
        # operands lexicographically so commuted spellings converge.
        left, right, op = right, left, MIRROR_OP[op]
        steps.append(
            RewriteStep("RW401", f"oriented {node} as {left} {op} {right}")
        )
    if op == node.op and left is node.left and right is node.right:
        return node
    return Comparison(op, left, right)


def _rewrite_inlist(node: InList, steps: List[RewriteStep]) -> Node:
    if not node.values:
        steps.append(
            RewriteStep("RW400", f"folded empty IN list {node} to FALSE")
        )
        return FALSE
    if isinstance(node.operand, Literal):
        ov = node.operand.value
        pool = (ov,) + node.values
        all_num = all(_is_plain_number(v) for v in pool)
        all_str = all(isinstance(v, str) for v in pool)
        if all_num or all_str:
            folded = TRUE if any(v == ov for v in node.values) else FALSE
            steps.append(
                RewriteStep("RW400", f"folded constant {node} to {folded}")
            )
            return folded
    unique: List[Value] = []
    for value in node.values:
        if value not in unique:
            unique.append(value)
    unique.sort(key=_sort_key)
    if len(unique) == 1:
        result: Node = Comparison("=", node.operand, Literal(unique[0]))
        steps.append(
            RewriteStep("RW404", f"reduced singleton {node} to {result}")
        )
        return result
    canonical = tuple(unique)
    if canonical != node.values:
        steps.append(
            RewriteStep(
                "RW404",
                f"canonicalized IN list {node.values} to {canonical}",
            )
        )
        return InList(node.operand, canonical)
    return node


def _expand_between(node: Between, steps: List[RewriteStep]) -> Node:
    steps.append(
        RewriteStep(
            "RW403",
            f"expanded {node} to {node.operand} >= {Literal(node.lo)} "
            f"AND {node.operand} <= {Literal(node.hi)}",
        )
    )
    terms = [
        _rewrite_comparison(
            Comparison(">=", node.operand, Literal(node.lo)), steps
        ),
        _rewrite_comparison(
            Comparison("<=", node.operand, Literal(node.hi)), steps
        ),
    ]
    return _rebuild_and(terms, steps)


# ---------------------------------------------------------------------------
# NOT push-down
# ---------------------------------------------------------------------------


def _negate(term: Node, steps: List[RewriteStep]) -> Node:
    """Negate a term using only mask-level identities.

    ``NOT`` evaluates as elementwise mask complement, so double
    negation, TRUE/FALSE flips, and De Morgan (``~(x & y) == ~x | ~y``)
    hold row-for-row unconditionally.  Rewriting the *operator* instead
    (``NOT (A > 2)`` → ``A <= 2``) does NOT: on a NaN row the original
    is True (complement of a False comparison) but the flipped
    comparison is False, so comparisons stay wrapped in ``NOT``.
    """
    if isinstance(term, BoolLiteral):
        return FALSE if term.value else TRUE
    if isinstance(term, Not):
        return term.term
    if isinstance(term, And):
        return _rebuild_or([_negate(t, steps) for t in term.terms], steps)
    if isinstance(term, Or):
        return _rebuild_and([_negate(t, steps) for t in term.terms], steps)
    # NOT over a comparison, IN, or another opaque predicate stays.
    return Not(term)


def _rewrite_not(node: Not, steps: List[RewriteStep]) -> Node:
    inner = _rewrite(node.term, steps)
    if isinstance(inner, (BoolLiteral, Not, And, Or)):
        result = _negate(inner, steps)
        steps.append(
            RewriteStep("RW402", f"pushed NOT inward: NOT ({inner}) is {result}")
        )
        return result
    if inner is node.term:
        return node
    return Not(inner)


# ---------------------------------------------------------------------------
# Conjunction rebuild: flatten, dedupe, interval-merge, sort
# ---------------------------------------------------------------------------


def _atomic_range(term: Node) -> Optional[Tuple[str, Node, IntervalSet]]:
    """The interval set an *atomic* conjunct confines its operand to.

    Only atoms participate (a single ordered/equality Comparison against
    a numeric literal, or a positive all-numeric IN): intersections of
    atom sets can produce FALSE (sound under NaN: every such atom is
    elementwise False on a NaN row, so the conjunct already was) or
    tighter bounds, but never a full set — the NaN-unsound full→TRUE
    collapse is unreachable.  ``!=`` is deliberately NOT an atom: it is
    the one comparison that is *True* on NaN, so rendering its co-finite
    interval set back as ranges (False on NaN) would change results —
    ``B != 5 AND B != 7`` must survive as written.
    The key generalizes beyond plain columns: ``f(X) > 1 AND f(X) <= 1``
    folds to FALSE because both atoms share the operand key ``f(X)``.
    """
    if isinstance(term, Comparison):
        if isinstance(term.left, Literal) or not isinstance(term.right, Literal):
            return None
        value = term.right.value
        if not _is_plain_number(value):
            return None
        if term.op not in ("=", "==", "<", "<=", ">", ">="):
            return None
        op = "=" if term.op == "==" else term.op
        ivs = IntervalSet([Interval.from_comparison(op, value)])
        return str(term.left), term.left, ivs
    if isinstance(term, InList) and not isinstance(term.operand, Literal):
        if term.values and all(_is_plain_number(v) for v in term.values):
            return str(term.operand), term.operand, IntervalSet.points(term.values)
    return None


def _interval_terms(operand: Node, interval: Interval) -> List[Node]:
    """Synthesize AST terms equivalent to one (non-empty) interval."""
    lo, hi = interval.lo, interval.hi
    terms: List[Node] = []
    if lo == hi:
        return [Comparison("=", operand, Literal(_numeric(lo)))]
    if lo != float("-inf"):
        op = ">" if interval.lo_open else ">="
        terms.append(Comparison(op, operand, Literal(_numeric(lo))))
    if hi != float("inf"):
        op = "<" if interval.hi_open else "<="
        terms.append(Comparison(op, operand, Literal(_numeric(hi))))
    return terms


def _numeric(value: float) -> Value:
    """Prefer the int spelling for integral endpoints (``2.0`` → ``2``)."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return int(value)
    return value


def _set_to_terms(operand: Node, ivs: IntervalSet) -> Optional[List[Node]]:
    """Synthesize conjunct terms equivalent to a non-empty interval set.

    Atom sets are single intervals or finite point sets, and both are
    closed under intersection, so those are the only shapes to render;
    None (keep the original terms) is a sound fallback for anything
    else.
    """
    intervals = ivs.intervals
    if len(intervals) == 1:
        terms = _interval_terms(operand, intervals[0])
        return terms or None
    if all(
        iv.lo == iv.hi and not iv.lo_open and not iv.hi_open
        for iv in intervals
    ):
        values = tuple(_numeric(iv.lo) for iv in intervals)
        return [InList(operand, values)]
    return None


def _merge_range_conjuncts(
    terms: Sequence[Node], steps: List[RewriteStep]
) -> Optional[List[Node]]:
    """Intersect atomic range conjuncts per operand; None = contradiction."""
    groups: Dict[str, List[Tuple[Node, Node, IntervalSet]]] = {}
    for term in terms:
        atom = _atomic_range(term)
        if atom is not None:
            groups.setdefault(atom[0], []).append((term, atom[1], atom[2]))
    out: List[Node] = []
    emitted: Set[str] = set()
    for term in terms:
        atom = _atomic_range(term)
        if atom is None or len(groups[atom[0]]) < 2:
            out.append(term)
            continue
        key = atom[0]
        if key in emitted:
            continue
        emitted.add(key)
        group = groups[key]
        acc = group[0][2]
        for _, _, ivs in group[1:]:
            acc = acc.intersect(ivs)
        originals = [entry[0] for entry in group]
        if acc.is_empty():
            steps.append(
                RewriteStep(
                    "RW408",
                    f"conjuncts on {key} are contradictory "
                    f"({' AND '.join(str(t) for t in originals)}); "
                    "folded to FALSE",
                )
            )
            return None
        synthesized = None if acc.is_full() else _set_to_terms(atom[1], acc)
        if synthesized is None or sorted(str(t) for t in synthesized) == sorted(
            str(t) for t in originals
        ):
            out.extend(originals)
            continue
        steps.append(
            RewriteStep(
                "RW406",
                f"merged range conjuncts on {key}: "
                f"{' AND '.join(str(t) for t in originals)} is "
                f"{' AND '.join(str(t) for t in synthesized)}",
            )
        )
        out.extend(synthesized)
    return out


def _rebuild_and(terms: Sequence[Node], steps: List[RewriteStep]) -> Node:
    flat: List[Node] = []
    flattened = False
    for term in terms:
        if isinstance(term, And):
            flat.extend(term.terms)
            flattened = True
        else:
            flat.append(term)
    if flattened:
        steps.append(RewriteStep("RW409", "flattened nested AND"))
    kept: List[Node] = []
    for term in flat:
        if isinstance(term, BoolLiteral):
            if term.value:
                steps.append(
                    RewriteStep("RW407", "dropped neutral TRUE conjunct")
                )
                continue
            steps.append(
                RewriteStep("RW408", "FALSE conjunct folds the AND to FALSE")
            )
            return FALSE
        kept.append(term)
    unique: List[Node] = []
    seen: Set[str] = set()
    for term in kept:
        spelled = str(term)
        if spelled in seen:
            steps.append(
                RewriteStep("RW405", f"dropped duplicate conjunct {spelled}")
            )
            continue
        seen.add(spelled)
        unique.append(term)
    merged = _merge_range_conjuncts(unique, steps)
    if merged is None:
        return FALSE
    ordered = sorted(merged, key=str)
    if [str(t) for t in ordered] != [str(t) for t in merged]:
        steps.append(RewriteStep("RW409", "canonicalized conjunct order"))
    if not ordered:
        return TRUE
    if len(ordered) == 1:
        return ordered[0]
    return And(tuple(ordered))


def _rebuild_or(terms: Sequence[Node], steps: List[RewriteStep]) -> Node:
    flat: List[Node] = []
    flattened = False
    for term in terms:
        if isinstance(term, Or):
            flat.extend(term.terms)
            flattened = True
        else:
            flat.append(term)
    if flattened:
        steps.append(RewriteStep("RW409", "flattened nested OR"))
    kept: List[Node] = []
    for term in flat:
        if isinstance(term, BoolLiteral):
            if not term.value:
                steps.append(
                    RewriteStep("RW407", "dropped neutral FALSE disjunct")
                )
                continue
            steps.append(
                RewriteStep("RW407", "TRUE disjunct absorbs the OR")
            )
            return TRUE
        kept.append(term)
    unique: List[Node] = []
    seen: Set[str] = set()
    for term in kept:
        spelled = str(term)
        if spelled in seen:
            steps.append(
                RewriteStep("RW405", f"dropped duplicate disjunct {spelled}")
            )
            continue
        seen.add(spelled)
        unique.append(term)
    ordered = sorted(unique, key=str)
    if [str(t) for t in ordered] != [str(t) for t in unique]:
        steps.append(RewriteStep("RW409", "canonicalized disjunct order"))
    if not ordered:
        return FALSE
    if len(ordered) == 1:
        return ordered[0]
    return Or(tuple(ordered))


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


def _rewrite(node: Node, steps: List[RewriteStep]) -> Node:
    if isinstance(node, Comparison):
        return _rewrite_comparison(node, steps)
    if isinstance(node, InList):
        return _rewrite_inlist(node, steps)
    if isinstance(node, Between):
        return _expand_between(node, steps)
    if isinstance(node, Not):
        return _rewrite_not(node, steps)
    if isinstance(node, And):
        return _rebuild_and([_rewrite(t, steps) for t in node.terms], steps)
    if isinstance(node, Or):
        return _rebuild_or([_rewrite(t, steps) for t in node.terms], steps)
    return node


def rewrite_where(
    where: Optional[Node],
) -> Tuple[Optional[Node], List[RewriteStep]]:
    """Normalize a WHERE tree; returns (canonical tree, applied steps).

    The canonical tree evaluates bit-identically to the input on every
    column mapping (NaN included).  A tree that reduces to TRUE returns
    ``None`` (no WHERE clause); a contradiction returns
    ``BoolLiteral(False)``, which the planner short-circuits to a plan
    with zero read calls.
    """
    steps: List[RewriteStep] = []
    if where is None:
        return None, steps
    node = where
    for _ in range(_MAX_PASSES):
        before = len(steps)
        new = _rewrite(node, steps)
        if new == node and len(steps) == before:
            break
        node = new
    if isinstance(node, BoolLiteral) and node.value:
        steps.append(
            RewriteStep("RW407", "WHERE clause reduced to TRUE; dropped")
        )
        return None, steps
    return node, steps


def rewrite_query(query: Query) -> Tuple[Query, List[RewriteStep]]:
    """Normalize a query's WHERE clause.

    Returns the original object untouched when no rewrite applies, so
    identity checks and object reuse keep working for already-canonical
    queries.
    """
    where, steps = rewrite_where(query.where)
    if not steps:
        return query, steps
    return Query(
        table=query.table,
        select=None if query.select is None else list(query.select),
        where=where,
        group_by=None if query.group_by is None else list(query.group_by),
    ), steps
