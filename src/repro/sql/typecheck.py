"""Static type inference and checking for queries against a descriptor.

The descriptor's schema is a *type declaration*: every attribute has a
declared fixed-width scalar type, so a query's operand types are fully
known before any data is read.  :func:`typecheck_query` infers a type
for every WHERE/SELECT operand and reports the ``RT3xx`` diagnostic
family through a ``repro.diag`` collector:

========  ==========================================================
RT301     incomparable operand types in a comparison (error)
RT302     function argument type mismatch (error)
RT303     IN/BETWEEN value type mismatch (error)
RT304     aggregate over a non-numeric attribute (error)
RT305     SUM over a 64-bit integer attribute may overflow (warning)
RT306     equality against a literal unrepresentable in the
          attribute's type — can never (or always) match (warning)
RT307     comparison bound outside the attribute type's representable
          range — the comparison is constant (warning)
RT308     function result type assumed numeric; no signature
          registered (info)
RT309     filter function not declared vectorized; the compiled
          kernel calls it once per row (info)
========  ==========================================================

Errors block execution under ``ExecOptions(strict=True)`` before any
node is contacted; warnings flag queries that execute but almost
certainly do not mean what they say.

This module also owns the *aggregate dtype policy* — which accumulator
and output dtypes each reduction uses given the input attribute type —
so the decision is made statically in one place and shared by the
typechecker (overflow warnings) and the execution engine
(``repro.core.aggregate``).

The string/numeric type lattice is deliberately coarse: the storage
model has only fixed-width numerics and fixed-width byte strings, and
numpy's elementwise kernels handle all numeric-to-numeric comparisons
exactly as the interpreter does.  The checker therefore only rejects
cross-domain mixes (string vs numeric, bool vs value) that numpy would
resolve to a constant or raise on at runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Set, Tuple, Union

import numpy as np

from .ast import (
    MIRROR_OP,
    And,
    Between,
    BoolLiteral,
    Column,
    Comparison,
    FunctionCall,
    InList,
    Literal,
    Node,
    Not,
    Or,
    Query,
    Value,
)
from .functions import FunctionRegistry

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.diag
    from ..diag.core import Collector
    from ..metadata.descriptor import Descriptor
    from ..metadata.spans import Span

__all__ = [
    "ExprType",
    "NUMERIC",
    "STRING",
    "BOOLEAN",
    "UNKNOWN",
    "infer_type",
    "typecheck_query",
    "sum_accumulator_dtype",
    "aggregate_output_dtype",
    "aggregate_state_dtypes",
    "sum_may_overflow",
]

SpanLookup = Callable[[str], Optional["Span"]]


@dataclass(frozen=True)
class ExprType:
    """The inferred static type of one expression operand.

    ``kind`` is one of ``"numeric"``, ``"string"``, ``"bool"`` or
    ``"unknown"``; ``dtype`` is the declared numpy dtype when the
    operand maps directly onto a schema attribute (None for literals
    and function results, whose width numpy chooses at evaluation).
    """

    kind: str
    dtype: Optional[np.dtype] = None

    def __str__(self) -> str:
        if self.dtype is not None:
            return f"{self.kind}[{self.dtype}]"
        return self.kind


NUMERIC = ExprType("numeric")
STRING = ExprType("string")
BOOLEAN = ExprType("bool")
UNKNOWN = ExprType("unknown")

_EQUALITY_OPS = ("=", "==")
_INEQUALITY_OPS = ("!=", "<>")


# ---------------------------------------------------------------------------
# Aggregate dtype policy (shared with repro.core.aggregate)
# ---------------------------------------------------------------------------


def sum_accumulator_dtype(col_dtype: np.dtype) -> np.dtype:
    """The accumulator dtype SUM/AVG use for an input attribute.

    Integer and boolean inputs accumulate in int64 (exact, but can
    overflow for 64-bit inputs — RT305 warns); everything else
    accumulates in float64.
    """
    if col_dtype.kind in "iub":
        return np.dtype(np.int64)
    return np.dtype(np.float64)


def aggregate_output_dtype(func: str, col_dtype: Optional[np.dtype]) -> np.dtype:
    """The output dtype of one aggregate over an input attribute."""
    if func == "count":
        return np.dtype(np.int64)
    if col_dtype is None:  # pragma: no cover - only COUNT lacks a column
        raise ValueError(f"aggregate {func!r} requires an input attribute")
    if func == "avg":
        return np.dtype(np.float64)
    if func == "sum":
        return sum_accumulator_dtype(col_dtype)
    return col_dtype


def sum_may_overflow(col_dtype: np.dtype) -> bool:
    """Whether SUM's int64 accumulator can overflow for this input."""
    return col_dtype.kind in "iu" and col_dtype.itemsize >= 8


# ---------------------------------------------------------------------------
# Inference
# ---------------------------------------------------------------------------


def _literal_type(value: Union[Value, bool]) -> ExprType:
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, str):
        return STRING
    return NUMERIC


def infer_type(
    node: Node,
    descriptor: "Descriptor",
    functions: FunctionRegistry,
) -> ExprType:
    """Infer the static type of an operand expression.

    Unknown attributes and unregistered functions infer ``UNKNOWN``
    (their existence is reported by the RQ2xx analyzers; the
    typechecker does not double-report).
    """
    if isinstance(node, Column):
        if node.name not in descriptor.schema:
            return UNKNOWN
        attr = descriptor.schema.attribute(node.name)
        if attr.type.is_numeric:
            return ExprType("numeric", attr.dtype)
        return ExprType("string", attr.dtype)
    if isinstance(node, Literal):
        return _literal_type(node.value)
    if isinstance(node, BoolLiteral):
        return BOOLEAN
    if isinstance(node, FunctionCall):
        if node.name not in functions:
            return UNKNOWN
        declared = functions.signature(node.name)
        if declared is not None and declared.result_kind == "string":
            return STRING
        return NUMERIC
    return UNKNOWN


def _incomparable(left: ExprType, right: ExprType) -> bool:
    if left.kind == "unknown" or right.kind == "unknown":
        return False
    if left.kind == "bool" or right.kind == "bool":
        # TRUE/FALSE against a value column is a category error even
        # though numpy would coerce it to 1/0.
        return left.kind != right.kind
    return left.kind != right.kind


class _Checker:
    """One typecheck run over a single query."""

    def __init__(
        self,
        descriptor: "Descriptor",
        query: Query,
        functions: FunctionRegistry,
        collector: "Collector",
        span_of: Optional[SpanLookup],
    ) -> None:
        self.descriptor = descriptor
        self.query = query
        self.functions = functions
        self.collector = collector
        self.span_of = span_of
        self._assumed: Set[str] = set()
        self._unvectorized: Set[str] = set()

    # -- helpers -------------------------------------------------------------

    def _span(self, token: str) -> Optional["Span"]:
        if self.span_of is None:
            return None
        return self.span_of(token)

    def _emit(self, code: str, message: str, token: str) -> None:
        self.collector.emit(code, message, span=self._span(token))

    def _infer(self, node: Node) -> ExprType:
        kind = infer_type(node, self.descriptor, self.functions)
        if isinstance(node, FunctionCall):
            self._check_function(node)
        return kind

    def _is_rq206_pair(self, a: Node, b: Node) -> bool:
        """RQ206 already reports numeric-column-vs-string-literal."""
        for column, literal in ((a, b), (b, a)):
            if (
                isinstance(column, Column)
                and isinstance(literal, Literal)
                and isinstance(literal.value, str)
                and column.name in self.descriptor.schema
                and self.descriptor.schema.attribute(column.name).type.is_numeric
            ):
                return True
        return False

    # -- function calls ------------------------------------------------------

    def _check_function(self, node: FunctionCall) -> None:
        if node.name not in self.functions:
            return
        if not self.functions.is_vectorized(node.name):
            key = node.name.upper()
            if key not in self._unvectorized:
                self._unvectorized.add(key)
                self._emit(
                    "RT309",
                    f"filter function {node.name!r} is not declared "
                    "vectorized; the compiled kernel falls back to one "
                    "Python call per row for it (register with "
                    "vectorized=True if it is elementwise over arrays)",
                    node.name,
                )
        declared = self.functions.signature(node.name)
        if declared is None:
            key = node.name.upper()
            if key not in self._assumed:
                self._assumed.add(key)
                self._emit(
                    "RT308",
                    f"filter function {node.name!r} has no registered type "
                    "signature; its result is assumed numeric",
                    node.name,
                )
            for arg in node.args:
                self._infer(arg)
            return
        for position, arg in enumerate(node.args, start=1):
            arg_type = self._infer(arg)
            if declared.arg_kind == "numeric" and arg_type.kind == "string":
                self._emit(
                    "RT302",
                    f"argument {position} of {node.name}() has type "
                    f"{arg_type} but {node.name} expects numeric arguments",
                    node.name,
                )

    # -- literal representability against a typed column ---------------------

    def _check_column_literal(self, column: Column, value: Value, op: str) -> None:
        """RT306/RT307: a numeric literal the column's type cannot hold."""
        if column.name not in self.descriptor.schema:
            return
        attr = self.descriptor.schema.attribute(column.name)
        if not attr.type.is_numeric:
            return
        if isinstance(value, (bool, str)):
            return
        dtype = attr.dtype
        if dtype.kind in "iu":
            if isinstance(value, float) and not value.is_integer():
                if op in _EQUALITY_OPS + _INEQUALITY_OPS:
                    outcome = (
                        "never match" if op in _EQUALITY_OPS else "always match"
                    )
                    self._emit(
                        "RT306",
                        f"attribute {column.name!r} has integer type "
                        f"{attr.type.name!r}; comparison with fractional "
                        f"literal {value!r} can {outcome}",
                        column.name,
                    )
                return
            info = np.iinfo(dtype)
            self._check_bounds(
                column, attr.type.name, value, op, float(info.min), float(info.max)
            )
        elif dtype.kind == "f":
            if not math.isfinite(value):
                return
            if dtype.itemsize < 8:
                finfo = np.finfo(dtype)
                if (
                    op in _EQUALITY_OPS + _INEQUALITY_OPS
                    and abs(value) <= float(finfo.max)
                    and float(dtype.type(value)) != float(value)
                ):
                    outcome = (
                        "never match" if op in _EQUALITY_OPS else "always match"
                    )
                    self._emit(
                        "RT306",
                        f"literal {value!r} is not exactly representable in "
                        f"the {attr.type.name!r} type of attribute "
                        f"{column.name!r}; equality can {outcome}",
                        column.name,
                    )
                self._check_bounds(
                    column,
                    attr.type.name,
                    value,
                    op,
                    -float(finfo.max),
                    float(finfo.max),
                )

    def _check_bounds(
        self,
        column: Column,
        type_name: str,
        value: Value,
        op: str,
        lo: float,
        hi: float,
    ) -> None:
        if isinstance(value, str):  # pragma: no cover - filtered by caller
            return
        if lo <= value <= hi:
            return
        if value > hi:
            constant = op in ("<", "<=") + _INEQUALITY_OPS
        else:
            constant = op in (">", ">=") + _INEQUALITY_OPS
        self._emit(
            "RT307",
            f"literal {value!r} is outside the representable range "
            f"[{lo:g}, {hi:g}] of attribute {column.name!r} "
            f"({type_name!r}); the comparison is always "
            f"{'true' if constant else 'false'}",
            column.name,
        )

    # -- predicate checks ----------------------------------------------------

    def _check_comparison(self, node: Comparison) -> None:
        left = self._infer(node.left)
        right = self._infer(node.right)
        if _incomparable(left, right):
            if not self._is_rq206_pair(node.left, node.right):
                self._emit(
                    "RT301",
                    f"cannot compare {left} with {right} in {node}",
                    str(node.left)
                    if isinstance(node.left, Column)
                    else str(node),
                )
            return
        if isinstance(node.left, Column) and isinstance(node.right, Literal):
            self._check_column_literal(node.left, node.right.value, node.op)
        elif isinstance(node.right, Column) and isinstance(node.left, Literal):
            self._check_column_literal(
                node.right, node.left.value, MIRROR_OP[node.op]
            )

    def _check_membership(
        self, operand: Node, value: Value, op: str, clause: str
    ) -> None:
        operand_type = self._infer(operand)
        value_type = _literal_type(value)
        if _incomparable(operand_type, value_type):
            if not (
                isinstance(operand, Column)
                and isinstance(value, str)
                and operand.name in self.descriptor.schema
                and self.descriptor.schema.attribute(
                    operand.name
                ).type.is_numeric
            ):
                self._emit(
                    "RT303",
                    f"{clause} value {value!r} has type {value_type} but "
                    f"{operand} has type {operand_type}",
                    str(operand) if isinstance(operand, Column) else clause,
                )
            return
        if isinstance(operand, Column):
            self._check_column_literal(operand, value, op)

    def _check_predicate(self, node: Optional[Node]) -> None:
        if node is None or isinstance(node, BoolLiteral):
            return
        if isinstance(node, (And, Or)):
            for term in node.terms:
                self._check_predicate(term)
        elif isinstance(node, Not):
            self._check_predicate(node.term)
        elif isinstance(node, Comparison):
            self._check_comparison(node)
        elif isinstance(node, Between):
            self._check_membership(node.operand, node.lo, ">=", "BETWEEN")
            self._check_membership(node.operand, node.hi, "<=", "BETWEEN")
        elif isinstance(node, InList):
            for value in node.values:
                self._check_membership(node.operand, value, "=", "IN")
        else:
            # Bare operand used as a predicate: infer for side effects
            # (function signature checks) but leave validity to RQ2xx.
            self._infer(node)

    # -- aggregates ----------------------------------------------------------

    def _check_aggregates(self) -> None:
        for item in self.query.aggregates():
            if item.column is None or item.column not in self.descriptor.schema:
                continue  # COUNT(*) / RQ213 territory
            attr = self.descriptor.schema.attribute(item.column)
            if item.func == "count":
                continue
            if not attr.type.is_numeric:
                self._emit(
                    "RT304",
                    f"{item.label} aggregates attribute {item.column!r} of "
                    f"non-numeric type {attr.type.name!r}",
                    item.column,
                )
            elif item.func == "sum" and sum_may_overflow(attr.dtype):
                self._emit(
                    "RT305",
                    f"{item.label} accumulates {attr.type.name!r} values in "
                    "a 64-bit integer accumulator; large datasets can "
                    "overflow silently",
                    item.column,
                )

    def run(self) -> None:
        self._check_predicate(self.query.where)
        self._check_aggregates()


def typecheck_query(
    descriptor: "Descriptor",
    query: Query,
    functions: FunctionRegistry,
    collector: "Collector",
    span_of: Optional[SpanLookup] = None,
) -> None:
    """Type-check one query against a descriptor, emitting RT3xx codes.

    ``span_of`` maps a source token (attribute or function name) to a
    :class:`~repro.metadata.spans.Span` in the original SQL text; when
    omitted, diagnostics carry no spans (programmatic queries).
    """
    _Checker(descriptor, query, functions, collector, span_of).run()


def aggregate_state_dtypes(
    func: str, col_dtype: Optional[np.dtype]
) -> Tuple[np.dtype, ...]:
    """Dtypes of the partial-aggregation state columns for one item.

    COUNT keeps one int64 counter; AVG keeps an exact (sum, count)
    pair; SUM keeps its accumulator; MIN/MAX keep the input dtype.
    """
    if func == "count":
        return (np.dtype(np.int64),)
    if col_dtype is None:  # pragma: no cover - only COUNT lacks a column
        raise ValueError(f"aggregate {func!r} requires an input attribute")
    if func == "avg":
        return (sum_accumulator_dtype(col_dtype), np.dtype(np.int64))
    if func == "sum":
        return (sum_accumulator_dtype(col_dtype),)
    return (col_dtype,)
