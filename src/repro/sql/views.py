"""Virtual views: named, stored subsetting queries.

The paper's data virtualization exposes one "abstract view" per
descriptor — the full relational table.  Sites usually want more than
one: a public subset, a per-study slice, a filtered quality-controlled
view.  A :class:`View` is a stored SELECT/WHERE query over a base table
(or another view); querying a view *composes* the stored query with the
incoming one and runs the result against the base table — no data is
materialised, in keeping with the paper's no-copies philosophy.

Composition rules (standard read-only SQL view semantics):

* the view's WHERE is ANDed with the incoming WHERE;
* the view exposes exactly its projected columns: ``SELECT *`` over a
  view returns them, and referencing any other column (in SELECT or
  WHERE) is an error;
* views stack — a view over a view composes transitively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..errors import QueryValidationError
from .ast import And, Node, Query
from .parser import parse_query


@dataclass(frozen=True)
class View:
    """A named stored query."""

    name: str
    definition: Query

    @property
    def base_table(self) -> str:
        return self.definition.table

    def exposed_columns(
        self, base_columns: Sequence[str]
    ) -> List[str]:
        """The columns this view presents to its users."""
        return self.definition.projected_names(base_columns)


class ViewRegistry:
    """Named views over base tables (and over other views)."""

    def __init__(self):
        self._views: Dict[str, View] = {}

    def define(self, name: str, definition: Union[Query, str]) -> View:
        """Define (or refuse to redefine) a view.

        ``definition`` is a SELECT/WHERE query whose FROM names a base
        table or an existing view.
        """
        if isinstance(definition, str):
            definition = parse_query(definition)
        if name in self._views:
            raise QueryValidationError(f"view {name!r} already exists")
        if name == definition.table:
            raise QueryValidationError(
                f"view {name!r} cannot be defined over itself"
            )
        # Reject definition cycles through existing views: follow the
        # chain to its base; if it reaches the name being defined, the
        # new view would close a loop.
        table = definition.table
        seen = set()
        while table in self._views:
            if table in seen:  # pragma: no cover - pre-existing cycle
                break
            seen.add(table)
            table = self._views[table].base_table
        if table == name:
            raise QueryValidationError(
                f"view {name!r} would create a definition cycle"
            )
        view = View(name, definition)
        self._views[name] = view
        return view

    def drop(self, name: str) -> None:
        self._views.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def get(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise QueryValidationError(f"no view named {name!r}") from None

    @property
    def names(self) -> List[str]:
        return sorted(self._views)

    def base_table_of(self, name: str) -> str:
        """Follow a view chain down to the underlying base table name."""
        while name in self._views:
            name = self._views[name].base_table
        return name

    # -- composition -----------------------------------------------------------

    def resolve(
        self, query: Union[Query, str], base_columns: Sequence[str]
    ) -> Query:
        """Rewrite a query over views into a query over the base table.

        ``base_columns`` is the base table's schema column order, used to
        expand ``SELECT *`` at each level and to validate column
        visibility.
        """
        if isinstance(query, str):
            query = parse_query(query)
        depth = 0
        while query.table in self._views:
            view = self.get(query.table)
            query = _compose(view, query, base_columns, self)
            depth += 1
            if depth > 32:  # pragma: no cover - cycles rejected at define
                raise QueryValidationError("view nesting too deep")
        return query


def _compose(
    view: View,
    query: Query,
    base_columns: Sequence[str],
    registry: ViewRegistry,
) -> Query:
    # What the view exposes, with SELECT * expanded against what the
    # *inner* level exposes.
    inner_table = view.definition.table
    if inner_table in registry._views:
        inner_exposed = registry.get(inner_table).exposed_columns(base_columns)
    else:
        inner_exposed = list(base_columns)
    exposed = view.definition.projected_names(inner_exposed)

    # Column visibility: the incoming query may only touch exposed columns.
    requested = query.projected_names(exposed)  # raises on hidden columns
    for name in query.referenced_columns():
        if name not in exposed:
            raise QueryValidationError(
                f"column {name!r} is not exposed by view {view.name!r} "
                f"(exposes {exposed})"
            )

    terms = [t for t in (view.definition.where, query.where) if t is not None]
    where: Optional[Node]
    if not terms:
        where = None
    elif len(terms) == 1:
        where = terms[0]
    else:
        where = And(tuple(terms))
    return Query(table=inner_table, select=requested, where=where)
