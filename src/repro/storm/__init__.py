"""STORM runtime: the service suite of the paper's Section 2.3.

Query service, data source service, indexing service, filtering service,
partition generation service, and data mover service, running over a
virtual cluster with a deterministic cost model.
"""

from ..core.stats import IOStats
from .catalog import Catalog
from .cluster import VirtualCluster, VirtualNode
from .cost import POSTGRES_COST, STORM_COST, CostModel
from .data_source import DataSourceService
from .filtering import FilteringService
from .indexing_service import IndexingService
from .mover import DataMoverService, Delivery
from .partition import (
    BlockPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    make_partitioner,
)
from .query_service import QueryResult, QueryService

__all__ = [
    "BlockPartitioner",
    "Catalog",
    "CostModel",
    "DataMoverService",
    "DataSourceService",
    "Delivery",
    "FilteringService",
    "HashPartitioner",
    "IOStats",
    "IndexingService",
    "POSTGRES_COST",
    "Partitioner",
    "QueryResult",
    "QueryService",
    "RangePartitioner",
    "RoundRobinPartitioner",
    "STORM_COST",
    "VirtualCluster",
    "VirtualNode",
    "make_partitioner",
]
