"""Catalog: one query front door for many datasets.

A data repository hosts many datasets; clients address them by table
name.  The catalog owns the descriptor -> service wiring (compilation,
summary loading, service construction are all lazy and cached) and routes
each query to the right dataset's service — the "suite of loosely coupled
services" of the paper's STORM, packaged for multi-dataset sites.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..core.codegen import GeneratedDataset
from ..core.options import ExecOptions
from ..core.planner import CompiledDataset
from ..errors import StormError
from ..index.summaries import MinMaxSummaries, summaries_path
from ..metadata import Descriptor, parse_descriptor
from ..metadata.xml_io import xml_to_descriptor
from ..sql.ast import Query
from ..sql.functions import FunctionRegistry
from ..sql.parser import parse_query
from ..sql.views import View, ViewRegistry
from .cluster import VirtualCluster
from .cost import CostModel, STORM_COST
from .query_service import QueryResult, QueryService


@dataclass
class _Entry:
    descriptor: Descriptor
    use_codegen: bool
    dataset: Optional[CompiledDataset] = None
    service: Optional[QueryService] = None


class Catalog:
    """Registers datasets on a cluster and routes queries by table name."""

    def __init__(
        self,
        cluster: VirtualCluster,
        functions: Optional[FunctionRegistry] = None,
        cost_model: CostModel = STORM_COST,
    ):
        self.cluster = cluster
        self.functions = functions
        self.cost_model = cost_model
        self._entries: Dict[str, _Entry] = {}
        self.views = ViewRegistry()

    # -- registration -----------------------------------------------------------

    def register(
        self,
        descriptor: Union[Descriptor, str],
        use_codegen: bool = True,
    ) -> str:
        """Register a dataset; returns its table name.

        Accepts a Descriptor, descriptor text, or XML descriptor text.
        """
        if isinstance(descriptor, str):
            if descriptor.lstrip().startswith("<"):
                descriptor = xml_to_descriptor(descriptor)
            else:
                descriptor = parse_descriptor(descriptor)
        name = descriptor.name
        if name in self._entries:
            raise StormError(f"dataset {name!r} is already registered")
        self._entries[name] = _Entry(descriptor, use_codegen)
        return name

    def unregister(self, name: str) -> None:
        entry = self._entries.pop(name, None)
        if entry and entry.service is not None:
            entry.service.close()

    @property
    def table_names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    # -- lazy wiring ---------------------------------------------------------------

    def _entry(self, name: str) -> _Entry:
        entry = self._entries.get(name)
        if entry is None:
            raise StormError(
                f"no dataset {name!r} in the catalog; "
                f"registered: {self.table_names}"
            )
        return entry

    def dataset(self, name: str) -> CompiledDataset:
        entry = self._entry(name)
        if entry.dataset is None:
            summaries = self._load_summaries(entry.descriptor)
            if entry.use_codegen:
                entry.dataset = GeneratedDataset(entry.descriptor, summaries)
            else:
                entry.dataset = CompiledDataset(entry.descriptor, summaries)
        return entry.dataset

    def _load_summaries(self, descriptor: Descriptor) -> Optional[MinMaxSummaries]:
        path = summaries_path(self.cluster.root, descriptor.name)
        if os.path.exists(path):
            return MinMaxSummaries.load(path)
        return None

    def service(self, name: str) -> QueryService:
        entry = self._entry(name)
        if entry.service is None:
            entry.service = QueryService(
                self.dataset(name),
                self.cluster,
                functions=self.functions,
                cost_model=self.cost_model,
            )
        return entry.service

    # -- views ------------------------------------------------------------------

    def create_view(self, name: str, definition: Union[Query, str]) -> View:
        """Define a named view over a registered dataset (or another view).

        The definition is validated immediately: its chain must bottom
        out at a registered dataset and reference only visible columns.
        """
        query = (
            parse_query(definition) if isinstance(definition, str) else definition
        )
        base = self.views.base_table_of(query.table)
        if base not in self._entries and base != name:
            raise StormError(
                f"view {name!r} is defined over unknown table {base!r}"
            )
        view = self.views.define(name, query)
        try:
            # Probe-resolve SELECT * to surface column errors at define time.
            schema_names = self.dataset(base).schema.names
            self.views.resolve(Query(table=name), schema_names)
        except Exception:
            self.views.drop(name)
            raise
        return view

    def drop_view(self, name: str) -> None:
        self.views.drop(name)

    # -- querying ------------------------------------------------------------------

    def _resolve(self, sql: Union[Query, str]) -> Query:
        query = parse_query(sql) if isinstance(sql, str) else sql
        if query.table in self.views:
            base = self.views.base_table_of(query.table)
            schema_names = self.dataset(base).schema.names
            query = self.views.resolve(query, schema_names)
        return query

    def query(
        self,
        sql: Union[Query, str],
        options: Optional[ExecOptions] = None,
        **submit_kwargs,
    ) -> QueryResult:
        """Route a query (possibly over a view) to its dataset's service.

        ``options`` carries the execution knobs; extra keywords are the
        deprecated per-call overrides that ``QueryService.submit`` shims.
        """
        query = self._resolve(sql)
        return self.service(query.table).submit(query, options, **submit_kwargs)

    def explain(self, sql: Union[Query, str]) -> str:
        query = self._resolve(sql)
        return self.dataset(query.table).explain(query)

    def close(self) -> None:
        for entry in self._entries.values():
            if entry.service is not None:
                entry.service.close()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
