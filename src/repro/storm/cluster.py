"""The virtual cluster: nodes, directories, and mounts.

The paper's experiments run on a Linux cluster where every node hosts part
of each dataset on its local disks.  We reproduce the topology on one
machine: a :class:`VirtualCluster` maps node names to directory trees
(``root/osu0/...``, ``root/osu1/...``), and a *mount* function resolves
``(node, dataset-relative path)`` to an absolute path.  All data placement
decisions flow from the descriptor's storage component, so moving a
dataset between cluster shapes only changes ``DIR[...]`` lines.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ClusterError
from ..metadata.storage import StorageDescriptor


class VirtualNode:
    """One cluster node: a name and its filesystem root."""

    def __init__(self, name: str, root: str):
        self.name = name
        self.root = root

    def path(self, relative: str) -> str:
        """Absolute path of a node-relative file or directory."""
        return os.path.join(self.root, relative)

    def ensure_dir(self, relative: str = "") -> str:
        path = self.path(relative)
        os.makedirs(path, exist_ok=True)
        return path

    def disk_usage(self) -> int:
        """Total bytes stored on this node."""
        total = 0
        for base, _, files in os.walk(self.root):
            for name in files:
                total += os.path.getsize(os.path.join(base, name))
        return total

    def __repr__(self) -> str:
        return f"VirtualNode({self.name!r}, {self.root!r})"


class VirtualCluster:
    """A named set of virtual nodes rooted under one directory."""

    def __init__(self, root: str, node_names: Iterable[str]):
        self.root = root
        self.nodes: Dict[str, VirtualNode] = {}
        for name in node_names:
            if name in self.nodes:
                raise ClusterError(f"duplicate node name {name!r}")
            self.nodes[name] = VirtualNode(name, os.path.join(root, name))

    @classmethod
    def create(cls, root: str, num_nodes: int, prefix: str = "osu") -> "VirtualCluster":
        """Create a cluster of ``num_nodes`` nodes with directories on disk."""
        cluster = cls(root, [f"{prefix}{i}" for i in range(num_nodes)])
        for node in cluster.nodes.values():
            node.ensure_dir()
        return cluster

    @classmethod
    def for_storage(cls, root: str, storage: StorageDescriptor) -> "VirtualCluster":
        """A cluster with exactly the nodes a storage descriptor names."""
        cluster = cls(root, storage.nodes)
        for node in cluster.nodes.values():
            node.ensure_dir()
        return cluster

    # -- access -----------------------------------------------------------------

    def node(self, name: str) -> VirtualNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ClusterError(
                f"unknown node {name!r}; cluster has {sorted(self.nodes)}"
            ) from None

    @property
    def node_names(self) -> List[str]:
        return list(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def mount(self):
        """The mount function extractors use to resolve chunk paths."""

        def resolve(node: str, path: str) -> str:
            return self.node(node).path(path)

        return resolve

    # -- maintenance -----------------------------------------------------------------

    def wipe(self) -> None:
        """Delete all node data (used between benchmark configurations)."""
        for node in self.nodes.values():
            if os.path.isdir(node.root):
                shutil.rmtree(node.root)
            node.ensure_dir()

    def disk_usage(self) -> Dict[str, int]:
        return {name: node.disk_usage() for name, node in self.nodes.items()}

    def __repr__(self) -> str:
        return f"<VirtualCluster {len(self)} nodes at {self.root!r}>"
