"""Deterministic cost model: operation counts -> simulated seconds.

The paper's absolute numbers come from PIII-933 nodes with IDE disks on
switched Fast Ethernet.  A single modern machine cannot reproduce those
wall-clock values, but the *shapes* of the figures are determined by how
many bytes each system reads, how many files it opens, how many tuples it
touches, and how many bytes cross the network.  All extraction paths count
those operations (:class:`repro.core.stats.IOStats`); this module converts
the counts into simulated seconds with constants calibrated to the paper's
hardware (see EXPERIMENTS.md for the calibration).

Simulated time is exact and deterministic, so benchmark orderings never
depend on the load of the machine running them; wall-clock time is
reported alongside by the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from ..core.stats import IOStats


@dataclass(frozen=True)
class CostModel:
    """Cost constants of one node of the 2004-era evaluation cluster."""

    #: Sequential disk bandwidth, bytes/second (IDE disk, ~25 MB/s).
    disk_bandwidth: float = 25e6
    #: Effective cost per repositioning read, seconds.  Raw IDE seek +
    #: rotational latency is ~9 ms, but OS readahead and elevator
    #: scheduling amortize interleaved chunk reads heavily; 1 ms matches
    #: the throughput the paper reports for multi-file layouts.  The
    #: extractor charges a seek only when a read (plain or coalesced)
    #: actually repositions the simulated head, so merged reads pay one
    #: seek for their whole span.
    seek_time: float = 0.001
    #: File open cost (directory lookup + inode fetch), seconds.
    open_time: float = 0.002
    #: CPU cost to decode/extract one tuple into table form, seconds.
    tuple_cpu: float = 12e-6
    #: CPU cost to evaluate the residual predicate per tuple, seconds.
    filter_cpu: float = 1.5e-6
    #: Per-tuple predicate cost when the residual WHERE runs through a
    #: compiled vectorized kernel (``repro.core.kernels``) instead of
    #: the interpreted AST walk — batch evaluation amortizes the
    #: per-node dispatch, roughly an order of magnitude per row.
    vector_filter_cpu: float = 0.15e-6
    #: CPU cost to fold one filtered tuple into partial aggregate state
    #: (group-key sort amortised into the per-row constant), seconds.
    agg_cpu: float = 2e-6
    #: Network bandwidth towards clients, bytes/second (Fast Ethernet).
    network_bandwidth: float = 11e6
    #: Per-message network latency, seconds.
    network_latency: float = 0.0005
    #: Fixed per-query startup (parse, plan dispatch), seconds.
    query_overhead: float = 0.05

    def node_time(self, stats: IOStats) -> float:
        """Simulated seconds one node spends producing its tuples.

        Coalesced reads are charged faithfully by the counters alone: a
        merged read that replaces k chunk reads contributes one
        ``read_calls``/at most one ``seeks`` repositioning, and its gap
        bytes (``readahead_waste_bytes``) are part of ``bytes_read``, so
        readahead waste is paid for at disk bandwidth — the model prices
        the seek-vs-waste trade that ``ExecOptions.coalesce_gap_bytes``
        tunes, with no extra constants.
        """
        io = (
            stats.files_opened * self.open_time
            + stats.seeks * self.seek_time
            + stats.bytes_read / self.disk_bandwidth
        )
        # Rows filtered through a compiled kernel pay the (much lower)
        # vectorized rate; everything else pays the interpreted rate.
        # ``rows_vectorized`` is a subset of extracted + refiltered rows,
        # so with vectorize off the formula reduces to the old one.
        interp_rows = max(
            0,
            stats.rows_extracted
            + stats.rows_refiltered
            - stats.rows_vectorized,
        )
        cpu = (
            stats.rows_extracted * self.tuple_cpu
            + interp_rows * self.filter_cpu
            # Subsumption hits re-filter cached rows instead of reading
            # them: no disk or tuple-decode cost, but the predicate pass
            # is real work and is priced like any other filtered row
            # (at the vectorized rate when a kernel ran it).
            + stats.rows_vectorized * self.vector_filter_cpu
            # Aggregate pushdown trades network for a little node CPU:
            # every row folded into partial state is priced here.
            + stats.rows_aggregated * self.agg_cpu
        )
        # Chunks pulled from other nodes cross the interconnect as well.
        remote = stats.remote_bytes_read / self.network_bandwidth
        return io + cpu + remote

    def estimate_plan(self, plan, remote: bool = False) -> float:
        """Predicted simulated seconds for a plan *before* running it.

        The a-priori counterpart of :meth:`makespan`, driving admission
        control: per node, planned chunk bytes (projection pushdown
        respected) at disk bandwidth plus an open per distinct file, a
        seek per chunk, and per-row decode+filter CPU; the slowest node
        plus query overhead is the estimate.  Deliberately an upper
        bound on the I/O side — it assumes no coalescing, no caches,
        and no summary fast path — because admission exists to protect
        the service from the worst case, not the lucky one.
        """
        needed = set(plan.needed)
        per_node_io: Dict[str, float] = {}
        per_node_rows: Dict[str, int] = {}
        for afc in plan.afcs:
            node = afc.chunks[0].node if afc.chunks else "local"
            files = set()
            nbytes = 0
            chunks = 0
            for chunk in afc.chunks:
                if not needed.intersection(chunk.strip.attrs):
                    continue
                files.add((chunk.node, chunk.path))
                nbytes += chunk.total_bytes(afc.num_rows)
                chunks += 1
            per_node_io[node] = per_node_io.get(node, 0.0) + (
                len(files) * self.open_time
                + chunks * self.seek_time
                + nbytes / self.disk_bandwidth
            )
            per_node_rows[node] = per_node_rows.get(node, 0) + afc.num_rows
        slowest = 0.0
        for node, io in per_node_io.items():
            cpu = per_node_rows[node] * (self.tuple_cpu + self.filter_cpu)
            slowest = max(slowest, io + cpu)
        transfer = 0.0
        if remote and plan.afcs:
            # Upper-bound the shipped bytes: every planned row survives
            # the filter and carries the full output row width.
            row_bytes = 8 * max(1, len(plan.output))
            transfer = self.network_time(
                sum(a.num_rows for a in plan.afcs) * row_bytes, 1
            )
        return self.query_overhead + slowest + transfer

    def network_time(self, bytes_sent: int, messages: int = 1) -> float:
        return messages * self.network_latency + bytes_sent / self.network_bandwidth

    def makespan(self, per_node: Mapping[str, IOStats], bytes_sent: int = 0,
                 messages: int = 0) -> float:
        """End-to-end simulated time: slowest node + transfer + startup.

        Nodes read their local disks concurrently (that is the point of
        declustering the dataset), so disk/CPU time is the max over nodes;
        the network serialises at the server's uplink, so transfer adds.
        """
        slowest = max(
            (self.node_time(stats) for stats in per_node.values()), default=0.0
        )
        return self.query_overhead + slowest + self.network_time(bytes_sent, messages)


#: Cost model used for the row-store baseline: same disk, but generic
#: row-at-a-time processing costs more CPU per tuple (heap-tuple header
#: decoding, generic datum dispatch), which is the second ingredient —
#: besides the 3x storage blow-up — of Figure 6's shape.
POSTGRES_COST = CostModel(tuple_cpu=45e-6, filter_cpu=6e-6, seek_time=0.004)

#: Cost model for STORM-side extraction (paper-calibrated defaults).
STORM_COST = CostModel()
