"""Data source service: per-node chunk extraction.

STORM's data source service "provides a view of a dataset to other
services ... an extraction function returns an ordered list of attribute
values for a tuple in the dataset, thus effectively creating a virtual
table" (paper Section 2.3).  One service instance runs per node, owns that
node's file handles and caches, and materialises the rows of the AFCs
assigned to it.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from ..core.afc import AlignedFileChunkSet, ExtractionPlan
from ..core.extractor import Extractor, Mount
from ..core.stats import IOStats
from ..core.table import VirtualTable, own_column
from ..obs.tracer import NULL_TRACER
from .filtering import FilteringService


class DataSourceService:
    """Extraction executor for one node of the virtual cluster."""

    def __init__(
        self,
        node: str,
        mount: Mount,
        filtering: FilteringService,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
    ):
        self.node = node
        self.extractor = Extractor(
            mount,
            filtering.functions,
            segment_cache_bytes=segment_cache_bytes,
            handle_cache=handle_cache,
        )
        self.filtering = filtering
        self.stats = IOStats()
        #: The extractor's handle/segment caches are not thread-safe;
        #: concurrent queries serialise per node (different nodes still
        #: run in parallel, which is the parallelism that matters).
        self._lock = threading.Lock()

    def drop_caches(self) -> None:
        """Cold-cache mode for benchmarks: forget handles and segments."""
        self.extractor.drop_caches()

    def execute(
        self,
        plan: ExtractionPlan,
        afcs: List[AlignedFileChunkSet],
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
    ) -> VirtualTable:
        """Extract + filter the given AFCs; returns this node's partial table."""
        with self._lock:
            return self._execute_locked(plan, afcs, stats, tracer)

    def _execute_locked(
        self,
        plan: ExtractionPlan,
        afcs: List[AlignedFileChunkSet],
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
    ) -> VirtualTable:
        stats = stats if stats is not None else self.stats
        tracing = tracer.enabled
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in plan.output}
        needed_set = set(plan.needed)
        for afc in afcs:
            stats.afcs_processed += 1
            for chunk in afc.chunks:
                if chunk.node != self.node and needed_set.intersection(
                    chunk.strip.attrs
                ):
                    stats.remote_bytes_read += chunk.total_bytes(afc.num_rows)
            if tracing:
                with tracer.span("extract_afc", node=self.node, rows=afc.num_rows):
                    columns = self.extractor.extract_afc(
                        afc, plan.needed, stats, plan.dtypes, tracer
                    )
            else:
                columns = self.extractor.extract_afc(
                    afc, plan.needed, stats, plan.dtypes
                )
            stats.rows_extracted += afc.num_rows
            selected = self.filtering.apply(
                plan.where, columns, plan.output, afc.num_rows, stats, tracer
            )
            if selected is None:
                continue
            for name in plan.output:
                pieces[name].append(own_column(selected[name]))
        final: Dict[str, np.ndarray] = {}
        for name in plan.output:
            if pieces[name]:
                final[name] = np.concatenate(pieces[name])
            else:
                final[name] = np.empty(0, dtype=plan.dtypes.get(name, np.float64))
        return VirtualTable(final, order=plan.output)

    def close(self) -> None:
        self.extractor.close()
