"""Data source service: per-node chunk extraction.

STORM's data source service "provides a view of a dataset to other
services ... an extraction function returns an ordered list of attribute
values for a tuple in the dataset, thus effectively creating a virtual
table" (paper Section 2.3).  One service instance runs per node, owns that
node's file handles and caches, and materialises the rows of the AFCs
assigned to it.

Concurrency: the extractor's handle/segment caches are internally locked
and all chunk I/O is positional, so there is no coarse per-node lock —
concurrent queries share one service, and within one query
``ExecOptions.intra_node_workers`` threads extract a node's AFCs in
parallel.  Output row order is always the AFC order of the plan,
regardless of worker count, and per-worker stats are merged
deterministically in that same order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set

import numpy as np

from ..core.afc import AlignedFileChunkSet, ExtractionPlan
from ..core.aggregate import partial_aggregate
from ..core.extractor import CoalescePlan, Extractor, Mount
from ..core.kernels import KERNEL_BLOCK_ROWS, BlockPipeline
from ..core.options import DEFAULT_OPTIONS, ExecOptions
from ..core.stats import IOStats
from ..core.table import VirtualTable, own_column
from ..obs.tracer import NULL_TRACER
from .filtering import FilteringService


class DataSourceService:
    """Extraction executor for one node of the virtual cluster."""

    def __init__(
        self,
        node: str,
        mount: Mount,
        filtering: FilteringService,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
    ):
        self.node = node
        self.extractor = Extractor(
            mount,
            filtering.functions,
            segment_cache_bytes=segment_cache_bytes,
            handle_cache=handle_cache,
        )
        self.filtering = filtering
        self.stats = IOStats()

    def drop_caches(self) -> None:
        """Cold-cache mode for benchmarks: forget handles and segments.

        Safe during in-flight queries: handles pinned by a concurrent
        read are closed by their last unpin, never mid-read.
        """
        self.extractor.drop_caches()

    def execute(
        self,
        plan: ExtractionPlan,
        afcs: List[AlignedFileChunkSet],
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
        options: Optional[ExecOptions] = None,
    ) -> VirtualTable:
        """Extract + filter the given AFCs; returns this node's partial table.

        ``options`` supplies the I/O shape: ``coalesce_gap_bytes`` merges
        nearby chunk reads across all of this node's AFCs into wide
        reads, and ``intra_node_workers`` extracts AFCs concurrently.
        """
        stats = stats if stats is not None else self.stats
        opts = options if options is not None else DEFAULT_OPTIONS
        coalesce = self.extractor.coalesce_for(
            afcs, plan.needed, opts.coalesce_gap_bytes
        )
        if plan.aggregate is not None:
            return self._execute_aggregate(
                plan, afcs, stats, tracer, opts, coalesce
            )
        needed_set = set(plan.needed)
        run_state = opts.run_state
        vectorize = opts.vectorize == "on"
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in plan.output}
        workers = min(max(1, opts.intra_node_workers), len(afcs) or 1)
        if workers > 1:

            def job(afc: AlignedFileChunkSet):
                local = IOStats()
                selected = self._extract_one(
                    plan, afc, needed_set, local, tracer, coalesce, run_state,
                    vectorize,
                )
                return selected, local

            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"intra-{self.node}"
            ) as pool:
                outcomes = list(pool.map(job, afcs))
            # Merge in AFC order: row order and stats totals are identical
            # to a serial run whatever the thread interleaving was.
            for selected, local in outcomes:
                stats.merge(local)
                if selected is None:
                    continue
                for name in plan.output:
                    pieces[name].append(selected[name])
        elif vectorize and plan.where is not None and run_state is None:
            # Serial, unmetered path: fuse small AFCs into shared kernel
            # evaluation blocks.  Skipped under a run_state because the
            # scheduler charges quotas at per-AFC boundaries — batching
            # across AFCs would widen the documented overshoot bound.
            pieces = self._execute_vectorized(
                plan, afcs, needed_set, stats, tracer, coalesce
            )
        else:
            for afc in afcs:
                selected = self._extract_one(
                    plan, afc, needed_set, stats, tracer, coalesce, run_state,
                    vectorize,
                )
                if selected is None:
                    continue
                for name in plan.output:
                    pieces[name].append(selected[name])
        final: Dict[str, np.ndarray] = {}
        for name in plan.output:
            if pieces[name]:
                final[name] = np.concatenate(pieces[name])
            else:
                final[name] = np.empty(0, dtype=plan.dtypes.get(name, np.float64))
        return VirtualTable(final, order=plan.output)

    def _execute_vectorized(
        self,
        plan: ExtractionPlan,
        afcs: List[AlignedFileChunkSet],
        needed_set: Set[str],
        stats: IOStats,
        tracer,
        coalesce: Optional[CoalescePlan],
    ) -> Dict[str, List[np.ndarray]]:
        """Batched kernel filtering: per-AFC extraction, per-block WHERE.

        Emits the same rows in the same serial AFC order as the per-AFC
        path; only the number of predicate evaluations (and the Python
        overhead per chunk set) changes.  The gathered pieces are owned
        arrays, so no per-AFC ``own_column`` pass is needed.
        """
        kernel = self.filtering.kernel_for(plan.where, tracer)
        pipeline = BlockPipeline(
            kernel, plan.needed, plan.output, KERNEL_BLOCK_ROWS, stats, tracer
        )
        for afc in afcs:
            columns = self._extract_columns(
                plan, afc, needed_set, stats, tracer, coalesce
            )
            pipeline.add(columns, afc.num_rows)
        pipeline.finish()
        return pipeline.pieces

    def _execute_aggregate(
        self,
        plan: ExtractionPlan,
        afcs: List[AlignedFileChunkSet],
        stats: IOStats,
        tracer,
        opts: ExecOptions,
        coalesce: Optional[CoalescePlan],
    ) -> VirtualTable:
        """Aggregate pushdown: fold this node's AFCs into one state frame.

        Each AFC is extracted and filtered exactly as in the row path,
        then reduced immediately via
        :func:`repro.core.aggregate.partial_aggregate`; per-AFC frames
        merge into a single per-node frame.  Extracted row blocks die
        here — only (group key, state) rows leave the node.
        """
        from ..core.aggregate import merge_partials

        spec = plan.aggregate
        needed_set = set(plan.needed)
        run_state = opts.run_state
        vectorize = opts.vectorize == "on"

        def one(afc: AlignedFileChunkSet, st: IOStats):
            # filtering.apply adds the filtered row count to rows_output;
            # the delta recovers it even when the base plan materialises
            # no columns at all (pure COUNT(*)).  Safe: ``st`` is either
            # a per-job local or used strictly sequentially.
            before = st.rows_output
            selected = self._extract_one(
                plan, afc, needed_set, st, tracer, coalesce, run_state,
                vectorize,
            )
            if selected is None:
                return None
            num_rows = st.rows_output - before
            st.rows_aggregated += num_rows
            return partial_aggregate(spec, selected, num_rows, plan.dtypes)

        workers = min(max(1, opts.intra_node_workers), len(afcs) or 1)
        partials: List[VirtualTable] = []
        if workers > 1:

            def job(afc: AlignedFileChunkSet):
                local = IOStats()
                return one(afc, local), local

            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"intra-{self.node}"
            ) as pool:
                outcomes = list(pool.map(job, afcs))
            for frame, local in outcomes:
                stats.merge(local)
                if frame is not None:
                    partials.append(frame)
        else:
            for afc in afcs:
                frame = one(afc, stats)
                if frame is not None:
                    partials.append(frame)
        merged = merge_partials(spec, partials, plan.dtypes)
        stats.groups_emitted += merged.num_rows
        return merged

    def _extract_columns(
        self,
        plan: ExtractionPlan,
        afc: AlignedFileChunkSet,
        needed_set: Set[str],
        stats: IOStats,
        tracer,
        coalesce: Optional[CoalescePlan],
    ) -> Dict[str, np.ndarray]:
        """Extract one AFC's needed columns with full per-AFC accounting
        (chunk counts, remote bytes, extraction span) but no filtering."""
        stats.afcs_processed += 1
        for chunk in afc.chunks:
            if chunk.node != self.node and needed_set.intersection(
                chunk.strip.attrs
            ):
                stats.remote_bytes_read += chunk.total_bytes(afc.num_rows)
        if tracer.enabled:
            with tracer.span("extract_afc", node=self.node, rows=afc.num_rows):
                columns = self.extractor.extract_afc(
                    afc, plan.needed, stats, plan.dtypes, tracer, coalesce
                )
        else:
            columns = self.extractor.extract_afc(
                afc, plan.needed, stats, plan.dtypes, coalesce=coalesce
            )
        stats.rows_extracted += afc.num_rows
        return columns

    def _extract_one(
        self,
        plan: ExtractionPlan,
        afc: AlignedFileChunkSet,
        needed_set: Set[str],
        stats: IOStats,
        tracer,
        coalesce: Optional[CoalescePlan],
        run_state=None,
        vectorize: bool = False,
    ) -> Optional[Dict[str, np.ndarray]]:
        """Extract + filter one AFC; returns owned columns or None if empty.

        ``run_state`` is the scheduler's cooperative cancel/quota state
        (``ExecOptions.run_state``): checked before the read and charged
        with this AFC's row/byte deltas after the filter, so each AFC is
        one cooperative boundary — a trip raises here and the query
        overshoots its quota by at most one AFC.  The deltas are safe
        because ``stats`` is always owned by a single thread (a per-job
        local under ``intra_node_workers``, the per-attempt stats
        otherwise).  ``vectorize`` applies the WHERE through the
        filtering service's compiled kernel (still one evaluation per
        AFC on this path — the per-AFC quota/parallelism boundaries stay
        exactly where they were).
        """
        if run_state is not None:
            run_state.checkpoint()
        before_rows = stats.rows_output
        before_bytes = stats.bytes_read
        columns = self._extract_columns(
            plan, afc, needed_set, stats, tracer, coalesce
        )
        selected = self.filtering.apply(
            plan.where, columns, plan.output, afc.num_rows, stats, tracer,
            vectorize=vectorize,
        )
        if run_state is not None:
            run_state.charge(
                rows=stats.rows_output - before_rows,
                nbytes=stats.bytes_read - before_bytes,
            )
        if selected is None:
            return None
        return {name: own_column(selected[name]) for name in plan.output}

    def close(self) -> None:
        self.extractor.close()
