"""Filtering service: vectorised residual predicate evaluation.

STORM's filtering service "is responsible for execution of user-defined
filters" (paper Section 2.3).  Chunk- and file-level pruning uses only the
*necessary* range conditions; every extracted row still passes through the
full WHERE expression here, including user-defined filter functions, so
pruning can never change results.

Two evaluation paths produce bit-identical masks (see
docs/architecture.md, "Vectorized execution"):

* ``vectorize=True`` compiles the WHERE once per distinct predicate into
  a fused numpy batch kernel (:mod:`repro.core.kernels`, cached per
  service) — the default through ``ExecOptions.vectorize="on"``;
* ``vectorize=False`` walks the AST per block, the interpreted oracle
  retained for the ablation knob and the equivalence tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.kernels import KernelCache
from ..core.stats import IOStats
from ..core.table import VirtualTable, own_column
from ..obs.tracer import NULL_TRACER
from ..sql.ast import Node
from ..sql.functions import DEFAULT_REGISTRY, FunctionRegistry


class FilteringService:
    """Applies a query's residual predicate to extracted column blocks."""

    def __init__(self, functions: Optional[FunctionRegistry] = None):
        self.functions = functions or DEFAULT_REGISTRY
        self._kernels = KernelCache(self.functions)

    def kernel_for(self, where: Node, tracer=NULL_TRACER):
        """The compiled kernel for a WHERE node (cached per predicate)."""
        return self._kernels.get(where, tracer)

    def apply(
        self,
        where: Optional[Node],
        columns: Dict[str, np.ndarray],
        output: List[str],
        num_rows: int,
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
        vectorize: bool = False,
    ) -> Optional[Dict[str, np.ndarray]]:
        """Filter one block; returns projected columns or None if empty.

        ``columns`` may contain WHERE-only attributes beyond ``output``;
        the result contains exactly ``output``.
        """
        if tracer.enabled and where is not None:
            with tracer.span(
                "filter", rows=num_rows, vectorized=vectorize
            ) as span:
                selected = self._apply(
                    where, columns, output, num_rows, stats, tracer, vectorize
                )
                if selected is None:
                    span.tag(out=0)
                elif output:
                    span.tag(out=int(len(selected[output[0]])))
            return selected
        return self._apply(
            where, columns, output, num_rows, stats, tracer, vectorize
        )

    def refilter(
        self,
        where: Optional[Node],
        table: VirtualTable,
        output: List[str],
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
        vectorize: bool = False,
    ) -> VirtualTable:
        """Re-run a full WHERE over a cached superset table (subsumption).

        The cached table stores every column the original query needed,
        so the predicate has all its inputs; the result carries exactly
        ``output`` in order.  ``own_column`` inside :meth:`apply` copies
        the frozen cached arrays, so callers get writable columns and
        can never mutate the cache through the result.
        """
        columns = {name: table.column(name) for name in table.column_names}
        selected = self.apply(
            where, columns, output, table.num_rows, stats, tracer, vectorize
        )
        if selected is None:
            # Even the empty projection must go through own_column: a bare
            # ``columns[name][:0]`` is a zero-length *view* of the frozen
            # cached array, and callers are promised writable columns that
            # never alias the cache.
            return VirtualTable(
                {name: own_column(columns[name][:0]) for name in output},
                order=output,
            )
        return VirtualTable(selected, order=output)

    def _apply(
        self,
        where: Optional[Node],
        columns: Dict[str, np.ndarray],
        output: List[str],
        num_rows: int,
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
        vectorize: bool = False,
    ) -> Optional[Dict[str, np.ndarray]]:
        # own_column: extracted columns can be read-only zero-copy views
        # over segment-cache payloads; never emit those to callers.
        if where is None:
            selected = {name: own_column(columns[name]) for name in output}
            count = num_rows
        else:
            if vectorize:
                kernel = self._kernels.get(where, tracer)
                mask = np.asarray(
                    kernel.evaluate(columns, num_rows, tracer=tracer)
                )
                if stats is not None:
                    stats.rows_vectorized += num_rows
            else:
                mask = np.asarray(where.evaluate(columns, self.functions))
            if mask.ndim == 0:
                if not bool(mask):
                    return None
                selected = {name: own_column(columns[name]) for name in output}
                count = num_rows
            else:
                count = int(mask.sum())
                if count == 0:
                    return None
                selected = {
                    name: own_column(columns[name][mask])
                    for name in output
                }
        if stats is not None:
            stats.rows_output += count
        return selected
