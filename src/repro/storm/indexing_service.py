"""Indexing service: query ranges -> aligned file chunks, per node.

STORM's indexing service "encapsulates indexes for a dataset, using an
index function provided by the user" (paper Section 2.3).  Here the index
function is *automatically generated* (or the interpreted equivalent); the
service adds two things on top of the raw function:

* assignment of each AFC to the node that will process it (the node
  hosting its chunks — STORM processes data where it lives);
* a file-level :class:`~repro.index.range_index.MultiAttrRangeIndex` over
  implicit attribute hulls, used to answer "which files could this query
  touch" without walking the whole file list.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from ..core.afc import AlignedFileChunkSet
from ..core.planner import CompiledDataset
from ..core.strips import PhysicalFile
from ..index.range_index import MultiAttrRangeIndex
from ..obs.tracer import NULL_TRACER
from ..sql.ranges import RangeMap


class IndexingService:
    """Per-dataset index lookups and node assignment."""

    def __init__(self, dataset: CompiledDataset):
        self.dataset = dataset
        hulls = []
        for file in dataset.files:
            intervals = file.implicit_intervals()
            hulls.append({name: (iv.lo, iv.hi) for name, iv in intervals.items()})
        self.file_index: MultiAttrRangeIndex[PhysicalFile] = MultiAttrRangeIndex(
            dataset.files, hulls
        )

    def candidate_files(
        self, ranges: RangeMap, tracer=NULL_TRACER
    ) -> List[PhysicalFile]:
        """Files whose implicit attributes admit the query ranges."""
        with tracer.span("index_files") as span:
            files = self.file_index.select(ranges)
            span.tag(files=len(files))
        return files

    def lookup(self, ranges: RangeMap, tracer=NULL_TRACER) -> List[AlignedFileChunkSet]:
        """All matching AFCs (the generated/interpreted index function)."""
        with tracer.span("index") as span:
            afcs = self.dataset.index(ranges)
            span.tag(afcs=len(afcs))
        return afcs

    def lookup_by_node(
        self, ranges: RangeMap, tracer=NULL_TRACER
    ) -> Dict[str, List[AlignedFileChunkSet]]:
        """Matching AFCs grouped by the node that should process them.

        An AFC is processed on the node hosting its first chunk; chunks of
        the same AFC on other nodes are counted as remote reads by the
        data source service (rare — groups normally live on one node).
        """
        by_node: Dict[str, List[AlignedFileChunkSet]] = defaultdict(list)
        for afc in self.lookup(ranges, tracer):
            by_node[afc.chunks[0].node if afc.chunks else "local"].append(afc)
        return dict(by_node)
