"""Data mover service: shipping partitions to client processors.

STORM's data mover "is responsible for transferring selected data elements
to destination processors based on the partitioning description" (paper
Section 2.3).  Ours materialises each client's slice, counts the bytes and
messages that would cross the network, and charges them to the cost model;
the payloads are delivered in-process (the "network" of a virtual cluster
is a function call).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.stats import IOStats
from ..core.table import VirtualTable
from ..obs.tracer import NULL_TRACER
from .partition import Partitioner

#: Bytes of per-message framing (headers, tuple counts) per transfer.
MESSAGE_OVERHEAD = 64


@dataclass
class Delivery:
    """What one client receives."""

    client: int
    table: VirtualTable
    bytes_sent: int
    messages: int


class DataMoverService:
    """Moves partitioned results to clients, tracking transfer volume."""

    def __init__(self, message_bytes: int = 1 << 20, injector=None):
        #: Maximum payload bytes per message (transfer is chunked).
        self.message_bytes = message_bytes
        #: Optional repro.faults.FaultInjector; ``node-down`` rules
        #: matching the pseudo-node ``client:<i>`` fail that delivery.
        self.injector = injector

    def row_bytes(self, table: VirtualTable) -> int:
        """Wire size of one row (packed binary, as STORM ships tuples)."""
        return sum(table.column(n).dtype.itemsize for n in table.column_names)

    def move(
        self,
        table: VirtualTable,
        partitioner: Partitioner,
        num_clients: int,
        stats: Optional[IOStats] = None,
        tracer=NULL_TRACER,
    ) -> List[Delivery]:
        """Partition ``table`` and deliver one slice per client."""
        with tracer.span(
            "partition",
            scheme=type(partitioner).__name__,
            rows=table.num_rows,
            clients=num_clients,
        ):
            indices = partitioner.partition(table, num_clients, tracer)
        with tracer.span("mover", clients=num_clients) as span:
            row_size = self.row_bytes(table)
            deliveries: List[Delivery] = []
            for client, idx in enumerate(indices):
                if self.injector is not None:
                    self.injector.on_transfer(client)
                slice_table = VirtualTable(
                    {n: table.column(n)[idx] for n in table.column_names},
                    order=list(table.column_names),
                )
                payload = slice_table.num_rows * row_size
                messages = max(
                    1, -(-payload // self.message_bytes)
                ) if slice_table.num_rows else 0
                sent = payload + messages * MESSAGE_OVERHEAD
                if stats is not None:
                    stats.bytes_sent += sent
                deliveries.append(Delivery(client, slice_table, sent, messages))
            span.tag(
                bytes_sent=sum(d.bytes_sent for d in deliveries),
                messages=sum(d.messages for d in deliveries),
            )
        return deliveries
