"""Partition generation service: distributing result tuples to clients.

"The purpose of the partition generation service is to make it possible
for an application developer to implement the data distribution scheme
employed in the client program at the server" (paper Section 2.3).  A
partitioner maps a result table to ``num_clients`` row-index arrays; the
data mover then ships each slice to its destination processor.

Four schemes cover the client programs of the motivating applications:

* round-robin — default load balancing;
* block — contiguous row blocks (time-series clients);
* hash — co-location by key attributes (per-cell analysis);
* range — split on a partitioning attribute's value ranges (spatial
  decomposition of the composite-image client).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.table import VirtualTable
from ..errors import PartitionError
from ..obs.tracer import NULL_TRACER


class Partitioner:
    """Base class: subclasses implement :meth:`assign`."""

    def assign(self, table: VirtualTable, num_clients: int) -> np.ndarray:
        """Destination client id (0..num_clients-1) for every row."""
        raise NotImplementedError

    def partition(
        self, table: VirtualTable, num_clients: int, tracer=NULL_TRACER
    ) -> List[np.ndarray]:
        """Row indices per client, in table order."""
        if num_clients < 1:
            raise PartitionError("num_clients must be positive")
        if num_clients == 1:
            return [np.arange(table.num_rows)]
        with tracer.span(
            "partition_assign",
            scheme=type(self).__name__,
            rows=table.num_rows,
            clients=num_clients,
        ):
            dest = np.asarray(self.assign(table, num_clients))
        if dest.shape != (table.num_rows,):
            raise PartitionError(
                f"partitioner produced {dest.shape}, expected "
                f"({table.num_rows},)"
            )
        if table.num_rows and (dest.min() < 0 or dest.max() >= num_clients):
            raise PartitionError("destination ids out of range")
        return [np.nonzero(dest == c)[0] for c in range(num_clients)]


class RoundRobinPartitioner(Partitioner):
    """Row ``i`` goes to client ``i mod num_clients``."""

    def assign(self, table: VirtualTable, num_clients: int) -> np.ndarray:
        return np.arange(table.num_rows) % num_clients


class BlockPartitioner(Partitioner):
    """Contiguous equal-size blocks of rows, one per client."""

    def assign(self, table: VirtualTable, num_clients: int) -> np.ndarray:
        if table.num_rows == 0:
            return np.empty(0, dtype=np.int64)
        block = -(-table.num_rows // num_clients)  # ceil division
        return np.minimum(np.arange(table.num_rows) // block, num_clients - 1)


class HashPartitioner(Partitioner):
    """Co-locates rows with equal key attribute values."""

    def __init__(self, attrs: Sequence[str]):
        if not attrs:
            raise PartitionError("hash partitioner needs at least one attribute")
        self.attrs = list(attrs)

    def assign(self, table: VirtualTable, num_clients: int) -> np.ndarray:
        acc = np.zeros(table.num_rows, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for attr in self.attrs:
                col = table.column(attr)
                # Hash the float64 bit pattern so keys are stable across
                # layouts storing the same value at the same precision.
                as_int = col.astype(np.float64).view(np.uint64)
                acc = acc * np.uint64(1000003) + as_int
            # Finalize (splitmix64): without this, keys whose low mantissa
            # bits are zero (round coordinates) all land on client 0.
            acc = (acc ^ (acc >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            acc = (acc ^ (acc >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            acc = acc ^ (acc >> np.uint64(31))
        return (acc % np.uint64(num_clients)).astype(np.int64)


class RangePartitioner(Partitioner):
    """Splits on a partitioning attribute at given boundaries.

    ``boundaries`` of length k-1 produce k destinations:
    rows with value < boundaries[0] go to client 0, and so on.
    """

    def __init__(self, attr: str, boundaries: Sequence[float]):
        self.attr = attr
        self.boundaries = list(boundaries)
        if sorted(self.boundaries) != self.boundaries:
            raise PartitionError("range boundaries must be sorted")

    def assign(self, table: VirtualTable, num_clients: int) -> np.ndarray:
        if len(self.boundaries) != num_clients - 1:
            raise PartitionError(
                f"{len(self.boundaries)} boundaries cannot split into "
                f"{num_clients} clients (need num_clients - 1)"
            )
        col = table.column(self.attr)
        return np.searchsorted(
            np.asarray(self.boundaries), col, side="right"
        ).astype(np.int64)


_SCHEMES = {
    "round_robin": RoundRobinPartitioner,
    "block": BlockPartitioner,
}


def make_partitioner(scheme: str, **kwargs) -> Partitioner:
    """Construct a partitioner by scheme name.

    ``hash`` needs ``attrs=[...]``; ``range`` needs ``attr=`` and
    ``boundaries=[...]``.
    """
    if scheme in _SCHEMES:
        return _SCHEMES[scheme]()
    if scheme == "hash":
        return HashPartitioner(**kwargs)
    if scheme == "range":
        return RangePartitioner(**kwargs)
    raise PartitionError(
        f"unknown partition scheme {scheme!r}; "
        "have round_robin, block, hash, range"
    )
