"""Query service: the client entry point of the STORM runtime.

"The query service is the entry point for clients to submit queries to the
database middleware" (paper Section 2.3).  ``submit`` runs the full
pipeline: plan (generated or interpreted index function) -> per-node
parallel extraction (data source + filtering services) -> partition
generation -> data mover -> merged result, with per-node operation counts
and a deterministic simulated execution time from the cost model.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Union

from ..core.afc import AlignedFileChunkSet
from ..core.options import ExecOptions
from ..core.planner import CompiledDataset
from ..core.stats import IOStats
from ..core.table import VirtualTable, concat_tables
from ..obs.tracer import TraceContext, Tracer
from ..sql.ast import Query
from ..sql.functions import FunctionRegistry
from .cluster import VirtualCluster
from .cost import CostModel, STORM_COST
from .data_source import DataSourceService
from .filtering import FilteringService
from .indexing_service import IndexingService
from .mover import DataMoverService, Delivery
from .partition import Partitioner, RoundRobinPartitioner


@dataclass
class QueryResult:
    """Everything a submitted query produced."""

    table: VirtualTable
    deliveries: List[Delivery]
    per_node_stats: Dict[str, IOStats]
    simulated_seconds: float
    wall_seconds: float
    afc_count: int
    #: The span trace of this execution, when submitted with tracing on
    #: (``ExecOptions(trace=...)``); None otherwise.
    trace: Optional[Tracer] = None

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @cached_property
    def total_stats(self) -> IOStats:
        """Merged per-node counters, computed once and cached.

        ``summary()`` and the benchmarks read this in loops; per-node
        stats are fully written before the result is constructed, so the
        merge is safe to memoise.
        """
        total = IOStats()
        for stats in self.per_node_stats.values():
            total.merge(stats)
        return total

    def summary(self) -> str:
        stats = self.total_stats
        return (
            f"{self.num_rows} rows, {self.afc_count} AFCs, "
            f"{stats.bytes_read / 1e6:.1f} MB read, "
            f"{stats.bytes_sent / 1e6:.2f} MB sent, "
            f"sim {self.simulated_seconds:.2f}s, wall {self.wall_seconds:.3f}s"
        )


def _merge_legacy_kwargs(
    options: Optional[ExecOptions],
    **legacy,
) -> ExecOptions:
    """Fold deprecated per-call keywords into an :class:`ExecOptions`.

    Each keyword that is not None overrides the matching options field and
    emits a DeprecationWarning naming the replacement.
    """
    opts = options if options is not None else ExecOptions()
    overrides = {k: v for k, v in legacy.items() if v is not None}
    if overrides:
        names = ", ".join(f"{name}=..." for name in sorted(overrides))
        warnings.warn(
            f"passing {names} to QueryService.submit is deprecated; "
            f"use submit(sql, ExecOptions({names})) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        opts = opts.replace(**overrides)
    return opts


class QueryService:
    """Front door of the STORM middleware for one dataset on one cluster."""

    def __init__(
        self,
        dataset: CompiledDataset,
        cluster: VirtualCluster,
        functions: Optional[FunctionRegistry] = None,
        cost_model: CostModel = STORM_COST,
        max_workers: Optional[int] = None,
        segment_cache_bytes: int = 32 * 1024 * 1024,
        handle_cache: int = 64,
    ):
        self.dataset = dataset
        self.cluster = cluster
        self.cost_model = cost_model
        #: Built lazily: hand-written planners (duck-typed datasets with
        #: only a .plan()) can run through the same service pipeline.
        self._indexing: Optional[IndexingService] = None
        self.filtering = FilteringService(functions)
        self.mover = DataMoverService()
        self.sources: Dict[str, DataSourceService] = {}
        self.max_workers = max_workers
        self.segment_cache_bytes = segment_cache_bytes
        self.handle_cache = handle_cache

    @property
    def indexing(self) -> IndexingService:
        if self._indexing is None:
            self._indexing = IndexingService(self.dataset)
        return self._indexing

    def _source(self, node: str) -> DataSourceService:
        if node not in self.sources:
            self.sources[node] = DataSourceService(
                node,
                self.cluster.mount(),
                self.filtering,
                segment_cache_bytes=self.segment_cache_bytes,
                handle_cache=self.handle_cache,
            )
        return self.sources[node]

    def drop_caches(self) -> None:
        """Cold-cache mode: benchmarks call this between measured queries."""
        for source in self.sources.values():
            source.drop_caches()

    # -- execution ------------------------------------------------------------

    def submit(
        self,
        sql: Union[Query, str],
        options: Optional[ExecOptions] = None,
        *,
        num_clients: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
        remote: Optional[bool] = None,
        parallel: Optional[bool] = None,
    ) -> QueryResult:
        """Run a query end-to-end.

        Execution knobs come from ``options`` (an :class:`ExecOptions`).
        ``remote=False`` models a client co-located with the server (no
        network transfer is charged); the paper's Query 5 uses
        ``remote=True``.  The per-method keywords (``num_clients``,
        ``partitioner``, ``remote``, ``parallel``) are deprecated shims
        that override the corresponding ``options`` fields.
        """
        opts = _merge_legacy_kwargs(
            options,
            num_clients=num_clients,
            partitioner=partitioner,
            remote=remote,
            parallel=parallel,
        )
        tracer = opts.tracer()
        start = time.perf_counter()

        with tracer.span("query", sql=str(sql)[:200]) as query_span:
            if tracer.enabled and getattr(self.dataset, "supports_tracing", False):
                plan = self.dataset.plan(sql, tracer=tracer)
            else:
                plan = self.dataset.plan(sql)

            by_node: Dict[str, List[AlignedFileChunkSet]] = {}
            for afc in plan.afcs:
                node = afc.chunks[0].node if afc.chunks else "local"
                by_node.setdefault(node, []).append(afc)

            per_node_stats: Dict[str, IOStats] = {
                node: IOStats() for node in by_node
            }
            ctx = TraceContext(tracer, query_span)

            def run_node(node: str) -> VirtualTable:
                # Worker threads have an empty span stack; parent the
                # per-node span under the query root via the context.
                with ctx.span(
                    "extract", node=node, afcs=len(by_node[node])
                ) as span:
                    partial = self._source(node).execute(
                        plan, by_node[node], per_node_stats[node], tracer
                    )
                    span.tag(
                        rows=partial.num_rows,
                        bytes_read=per_node_stats[node].bytes_read,
                    )
                return partial

            nodes = list(by_node)
            if opts.parallel and len(nodes) > 1:
                with ThreadPoolExecutor(
                    max_workers=self.max_workers or len(nodes)
                ) as pool:
                    partials = list(pool.map(run_node, nodes))
            else:
                partials = [run_node(node) for node in nodes]

            if partials:
                table = concat_tables(partials)
            else:
                import numpy as np

                table = VirtualTable(
                    {
                        n: np.empty(0, dtype=plan.dtypes.get(n, np.float64))
                        for n in plan.output
                    },
                    order=plan.output,
                )

            transfer_stats = IOStats()
            if opts.remote:
                deliveries = self.mover.move(
                    table,
                    opts.partitioner or RoundRobinPartitioner(),
                    opts.num_clients,
                    transfer_stats,
                    tracer,
                )
                messages = sum(d.messages for d in deliveries)
            else:
                deliveries = []
                messages = 0

            simulated = self.cost_model.makespan(
                per_node_stats, transfer_stats.bytes_sent, messages
            )
            per_node_stats.setdefault("_transfer", IOStats()).merge(
                transfer_stats
            )
            query_span.tag(
                rows=table.num_rows,
                afcs=len(plan.afcs),
                simulated_seconds=round(simulated, 6),
            )
            if tracer.enabled:
                for node, stats in per_node_stats.items():
                    tracer.metrics.record_stats(stats, prefix=f"io.{node}.")

        wall = time.perf_counter() - start
        return QueryResult(
            table=table,
            deliveries=deliveries,
            per_node_stats=per_node_stats,
            simulated_seconds=simulated,
            wall_seconds=wall,
            afc_count=len(plan.afcs),
            trace=tracer if tracer.enabled else None,
        )

    def close(self) -> None:
        for source in self.sources.values():
            source.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
